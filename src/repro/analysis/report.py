"""Search-run reporting: convergence summaries and decision drift.

Production searches are monitored, not babysat; these helpers condense
a :class:`~repro.core.search.SearchResult` into the quantities an
operator checks — reward trend, entropy decay, the top candidates seen,
and which decisions the policy actually moved away from the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.search import CandidateRecord, SearchResult
from ..searchspace.base import Architecture, SearchSpace
from .tables import format_table


@dataclass(frozen=True)
class ConvergenceSummary:
    """Headline numbers of one search run."""

    steps: int
    batches_used: int
    initial_reward: float
    final_reward: float
    initial_entropy: float
    final_entropy: float

    @property
    def reward_gain(self) -> float:
        return self.final_reward - self.initial_reward

    @property
    def entropy_reduction(self) -> float:
        """Fraction of initial policy entropy resolved by the search."""
        if self.initial_entropy <= 0:
            return 0.0
        return 1.0 - self.final_entropy / self.initial_entropy

    @property
    def converged(self) -> bool:
        """Heuristic: some entropy resolved and reward did not regress."""
        return self.entropy_reduction > 0.05 and self.reward_gain > -1e-9


def summarize(result: SearchResult, window: int = 10) -> ConvergenceSummary:
    """Condense ``result`` using head/tail averaging windows."""
    if not result.history:
        raise ValueError("search result has no history")
    window = max(1, min(window, len(result.history)))
    rewards = result.rewards()
    entropies = result.entropies()
    return ConvergenceSummary(
        steps=len(result.history),
        batches_used=result.batches_used,
        initial_reward=float(rewards[:window].mean()),
        final_reward=float(rewards[-window:].mean()),
        initial_entropy=float(entropies[0]),
        final_entropy=float(entropies[-1]),
    )


def top_candidates(result: SearchResult, k: int = 5) -> List[CandidateRecord]:
    """The ``k`` best candidates evaluated anywhere in the search."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return sorted(result.all_candidates, key=lambda c: c.reward, reverse=True)[:k]


def decision_drift(
    space: SearchSpace,
    final: Architecture,
    baseline: Optional[Architecture] = None,
) -> Dict[str, tuple]:
    """Decisions where the searched architecture left the baseline.

    Returns ``{decision: (baseline_value, searched_value)}``.
    """
    baseline = baseline or space.default_architecture()
    return {
        name: (baseline[name], final[name])
        for name in (d.name for d in space.decisions)
        if final[name] != baseline[name]
    }


def format_report(
    space: SearchSpace, result: SearchResult, window: int = 10
) -> str:
    """Human-readable report for one search run."""
    summary = summarize(result, window)
    lines = [
        f"steps: {summary.steps}   fresh batches: {summary.batches_used}",
        f"reward: {summary.initial_reward:.4f} -> {summary.final_reward:.4f} "
        f"({summary.reward_gain:+.4f})",
        f"entropy: {summary.initial_entropy:.2f} -> {summary.final_entropy:.2f} "
        f"({summary.entropy_reduction:.0%} resolved)",
        f"converged: {summary.converged}",
    ]
    drift = decision_drift(space, result.final_architecture)
    if drift:
        lines.append("searched decisions (vs baseline):")
        lines.append(
            format_table(
                ["decision", "baseline", "searched"],
                [[name, str(a), str(b)] for name, (a, b) in sorted(drift.items())],
            )
        )
    else:
        lines.append("searched architecture equals the baseline")
    return "\n".join(lines)
