"""ASCII scatter plots for the benchmark harness.

The benchmarks regenerate the paper's *figures*; a terminal-friendly
scatter makes the Pareto fronts and crossovers visible directly in the
benchmark output and in ``benchmarks/results/*.txt``, with one marker
character per series.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]


def ascii_scatter(
    series: Dict[str, Sequence[Point]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named point series on one ASCII grid.

    Each series is drawn with the first character of its name (made
    unique across series); axis ranges span all points with a small
    margin.  Collisions draw ``*``.
    """
    if width < 10 or height < 4:
        raise ValueError("grid too small to draw")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    x_lo -= 0.05 * x_span
    x_hi += 0.05 * x_span
    y_lo -= 0.05 * y_span
    y_hi += 0.05 * y_span
    # All-positive data never shows a negative axis.
    if min(xs) >= 0:
        x_lo = max(0.0, x_lo)
    if min(ys) >= 0:
        y_lo = max(0.0, y_lo)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    markers = _unique_markers(list(series))
    for name, pts in series.items():
        marker = markers[name]
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            row = height - 1 - row  # y grows upward
            cell = grid[row][col]
            grid[row][col] = marker if cell in (" ", marker) else "*"

    lines = [f"{y_hi:12.4g} +" + "".join(grid[0])]
    lines += ["             |" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{y_lo:12.4g} +" + "".join(grid[-1]))
    lines.append("             " + "-" * (width + 1))
    lines.append(f"             {x_lo:<.4g}{' ' * max(1, width - 16)}{x_hi:>.4g}")
    legend = "  ".join(f"{markers[name]}={name}" for name in series)
    lines.append(f"{y_label} vs {x_label}   [{legend}]   (*=overlap)")
    return "\n".join(lines)


def _unique_markers(names: Sequence[str]) -> Dict[str, str]:
    markers: Dict[str, str] = {}
    used: set = set()
    fallback = iter("ox+#@%&=~^")
    for name in names:
        candidate = name[0].lower() if name else "o"
        while candidate in used:
            candidate = next(fallback)
        markers[name] = candidate
        used.add(candidate)
    return markers
