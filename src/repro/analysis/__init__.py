"""Analysis utilities: Pareto fronts, bucketing, table formatting."""

from .ascii_plot import ascii_scatter
from .fleet import FleetEntry, fleet_table, mark_pareto
from .correlation import ProxyErrorReport, proxy_relative_error, spearman_correlation
from .report import (
    ConvergenceSummary,
    decision_drift,
    format_report,
    summarize,
    top_candidates,
)
from .pareto import (
    BucketStat,
    bucketize,
    geometric_mean,
    hypervolume_2d,
    pareto_front,
)
from .tables import format_series, format_table

__all__ = [
    "BucketStat",
    "ConvergenceSummary",
    "FleetEntry",
    "fleet_table",
    "mark_pareto",
    "ProxyErrorReport",
    "ascii_scatter",
    "proxy_relative_error",
    "spearman_correlation",
    "decision_drift",
    "format_report",
    "summarize",
    "top_candidates",
    "bucketize",
    "format_series",
    "format_table",
    "geometric_mean",
    "hypervolume_2d",
    "pareto_front",
]
