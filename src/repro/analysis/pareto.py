"""Pareto-front utilities for quality/performance trade-off analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    quality: Callable[[T], float],
    cost: Callable[[T], float],
) -> List[T]:
    """Non-dominated subset: maximize ``quality``, minimize ``cost``.

    An item is dominated if another item has >= quality and <= cost
    with at least one strict inequality.
    """
    front: List[T] = []
    for candidate in items:
        q_c, c_c = quality(candidate), cost(candidate)
        dominated = False
        for other in items:
            if other is candidate:
                continue
            q_o, c_o = quality(other), cost(other)
            if q_o >= q_c and c_o <= c_c and (q_o > q_c or c_o < c_c):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front


def hypervolume_2d(
    points: Sequence[Tuple[float, float]],
    reference: Tuple[float, float],
) -> float:
    """Hypervolume of a 2-D front (maximize quality, minimize cost).

    ``points`` are ``(quality, cost)`` pairs; ``reference`` is a
    (low-quality, high-cost) corner every point must dominate.
    Larger is better; used to compare ReLU vs absolute reward fronts.
    """
    ref_q, ref_c = reference
    kept = [(q, c) for q, c in points if q > ref_q and c < ref_c]
    if not kept:
        return 0.0
    # Sort by cost ascending; sweep adding rectangles of new quality.
    kept.sort(key=lambda p: p[1])
    volume = 0.0
    best_q = ref_q
    costs = [c for _, c in kept] + [ref_c]
    for i, (q, c) in enumerate(kept):
        next_c = costs[i + 1]
        best_q = max(best_q, q)
        volume += max(0.0, next_c - c) * (best_q - ref_q)
    return volume


@dataclass(frozen=True)
class BucketStat:
    """Mean statistic of records falling into one bucket (Fig. 5b/5c)."""

    bucket_low: float
    bucket_high: float
    count: int
    mean_value: float


def bucketize(
    items: Sequence[T],
    key: Callable[[T], float],
    value: Callable[[T], float],
    num_buckets: int = 8,
) -> List[BucketStat]:
    """Bucket ``items`` by ``key`` and average ``value`` within buckets.

    This is the paper's Figure 5b/5c methodology: cluster searched
    models into quality (or step-time) buckets and compare the mean of
    the other axis within each bucket.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    if not items:
        return []
    keys = np.array([key(item) for item in items])
    lo, hi = float(keys.min()), float(keys.max())
    if hi == lo:
        values = [value(item) for item in items]
        return [BucketStat(lo, hi, len(items), float(np.mean(values)))]
    edges = np.linspace(lo, hi, num_buckets + 1)
    stats: List[BucketStat] = []
    for b in range(num_buckets):
        low, high = edges[b], edges[b + 1]
        if b == num_buckets - 1:
            mask = (keys >= low) & (keys <= high)
        else:
            mask = (keys >= low) & (keys < high)
        selected = [item for item, hit in zip(items, mask) if hit]
        if not selected:
            continue
        values = [value(item) for item in selected]
        stats.append(BucketStat(float(low), float(high), len(selected), float(np.mean(values))))
    return stats


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (speedup aggregation across a model family)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))
