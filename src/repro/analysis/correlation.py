"""Proxy-fidelity metrics: how well does a cheap signal track hardware?

Section 6.2 of the paper dismisses hardware-agnostic proxies: "FLOPs
have been demonstrated to be a poor performance objective for NAS
because of their high correlation error (>400%) to actual performance".
These metrics quantify exactly that comparison for any candidate proxy
(FLOPs, parameter bytes, the trained performance model, ...):

* :func:`spearman_correlation` — rank fidelity, what a Pareto search
  actually needs;
* :func:`proxy_relative_error` — the per-candidate relative error after
  granting the proxy its best global calibration (a single scale fitted
  in log space), i.e. the error that calibration cannot remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


def spearman_correlation(proxy: Sequence[float], truth: Sequence[float]) -> float:
    """Spearman rank correlation between proxy and measured values."""
    proxy = np.asarray(proxy, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if proxy.shape != truth.shape or proxy.size < 2:
        raise ValueError("need two equal-length sequences of at least 2 points")
    if np.ptp(proxy) == 0 or np.ptp(truth) == 0:
        # A constant signal carries no rank information.
        return 0.0
    result = stats.spearmanr(proxy, truth)
    return float(result.correlation)


@dataclass(frozen=True)
class ProxyErrorReport:
    """Calibrated relative-error statistics of one proxy."""

    mean_relative_error: float
    max_relative_error: float
    spearman: float


def proxy_relative_error(
    proxy: Sequence[float], truth: Sequence[float]
) -> ProxyErrorReport:
    """Best-case relative error of a proxy against measurements.

    The proxy is granted a single multiplicative calibration (fitted in
    log space, the optimum for relative error); what remains is the
    irreducible error the paper's ">400%" figure refers to.
    """
    proxy = np.asarray(proxy, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if proxy.shape != truth.shape or proxy.size < 2:
        raise ValueError("need two equal-length sequences of at least 2 points")
    if np.any(proxy <= 0) or np.any(truth <= 0):
        raise ValueError("proxy and truth must be positive")
    # Optimal log-space scale: exp(mean(log(truth) - log(proxy))).
    scale = float(np.exp(np.mean(np.log(truth) - np.log(proxy))))
    calibrated = proxy * scale
    relative = np.abs(calibrated - truth) / truth
    return ProxyErrorReport(
        mean_relative_error=float(relative.mean()),
        max_relative_error=float(relative.max()),
        spearman=spearman_correlation(proxy, truth),
    )
