"""Fleet-sweep presentation: per-device specialization results.

The once-for-all workflow (:mod:`repro.core.elastic`) specializes one
trained elastic supernet for every hardware target in the fleet; this
module renders that sweep — one row per platform with the specialized
architecture's quality, simulated timing on *that* platform, the
resource its scaling is most sensitive to, and data-parallel cluster
throughput — plus a Pareto marker over (quality, serving latency)
across the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from .pareto import pareto_front
from .tables import format_table

__all__ = ["FleetEntry", "fleet_table", "mark_pareto"]


@dataclass
class FleetEntry:
    """One platform's specialization outcome within a fleet sweep."""

    platform: str
    indices: List[int]
    architecture: Dict[str, Any]
    quality: float
    reward: float
    train_step_time: float
    serving_latency: float
    model_size: float
    #: the resource whose scaling helps this architecture most on this
    #: platform (:func:`repro.hardware.whatif.bottleneck`)
    bottleneck: str
    cluster_chips: int
    cluster_step_time_s: float
    examples_per_second: float
    communication_bound: bool
    #: non-dominated across the fleet on (quality up, serving latency
    #: down); set by :func:`mark_pareto`
    pareto: bool = field(default=False)


def mark_pareto(entries: Sequence[FleetEntry]) -> List[FleetEntry]:
    """Flag the fleet's non-dominated (quality, serving-latency) rows."""
    entries = list(entries)
    front = pareto_front(
        entries,
        quality=lambda e: e.quality,
        cost=lambda e: e.serving_latency,
    )
    on_front = {id(e) for e in front}
    for entry in entries:
        entry.pareto = id(entry) in on_front
    return entries


def fleet_table(entries: Sequence[FleetEntry]) -> str:
    """Aligned per-device table of a fleet sweep (Pareto rows starred)."""
    rows = [
        [
            entry.platform,
            f"{entry.quality:.4f}",
            f"{entry.reward:.4f}",
            f"{entry.serving_latency * 1e3:.3f}ms",
            f"{entry.train_step_time * 1e3:.3f}ms",
            f"{entry.model_size / 1e6:.1f}MB",
            entry.bottleneck,
            f"{entry.examples_per_second / 1e3:.1f}k/s@{entry.cluster_chips}",
            "comm" if entry.communication_bound else "compute",
            "*" if entry.pareto else "",
        ]
        for entry in entries
    ]
    return format_table(
        [
            "platform",
            "quality",
            "reward",
            "serve_lat",
            "train_step",
            "size",
            "bottleneck",
            "cluster",
            "bound",
            "pareto",
        ],
        rows,
    )
