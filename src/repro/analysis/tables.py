"""Plain-text table/series formatting for the benchmark harness.

Every benchmark prints the rows or series the corresponding paper table
or figure reports; these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned monospace table."""
    string_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, pairs: Iterable[Sequence[float]]) -> str:
    """Render an (x, y) series as one labelled line per point."""
    lines = [f"series: {name}"]
    for x, y in pairs:
        lines.append(f"  x={_cell(x)}  y={_cell(y)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
