"""Cooperative signal handling: turn SIGTERM/SIGINT into a stop flag.

A supervised run used to die mid-step when its process received
SIGTERM — half-scored shards, a stale newest snapshot, and a resume
that replays work the operator thought was done.  :class:`
GracefulShutdown` converts termination signals into a flag that
:func:`~repro.runtime.supervisor.run_with_checkpoints` polls at step
boundaries: the in-flight step finishes, a final checkpoint lands, and
the run exits cleanly via
:class:`~repro.runtime.errors.SearchInterrupted`.  The service daemon's
``drain`` verb is built on exactly this contract.

Signal handlers are process-global and only installable from the main
thread; constructed anywhere else the object degrades to an inert flag
that :meth:`request` can still set programmatically (which is how the
daemon wires its ``drain`` verb into the same code path).
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import Iterable, List, Optional, Tuple

#: Signals a graceful shutdown listens for by default.
DEFAULT_SIGNALS: Tuple[signal.Signals, ...] = (signal.SIGTERM, signal.SIGINT)


class GracefulShutdown:
    """Context manager exposing "has a shutdown been requested?".

    First signal: set the flag and keep running (the step loop notices
    at its next boundary).  The previous handlers are restored on exit
    — and also as soon as the first signal arrives, so a second signal
    behaves exactly as it would have without us (typically: kill the
    process).  An impatient operator's double Ctrl-C still works.
    """

    def __init__(self, signals: Iterable[signal.Signals] = DEFAULT_SIGNALS):
        self._signals = tuple(signals)
        self._event = threading.Event()
        self._previous: List[Tuple[signal.Signals, object]] = []
        self.received: Optional[int] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            for sig in self._signals:
                self._previous.append((sig, signal.getsignal(sig)))
                signal.signal(sig, self._handle)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._restore()

    def _restore(self) -> None:
        for sig, handler in self._previous:
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # non-main thread / closed loop
                pass
        self._previous = []

    def _handle(self, signum: int, _frame: Optional[FrameType]) -> None:
        self.received = signum
        self._event.set()
        # From here on the operator escalates past us.
        self._restore()

    # ------------------------------------------------------------------
    def request(self) -> None:
        """Programmatic shutdown request (the daemon's ``drain`` verb)."""
        self._event.set()

    def should_stop(self) -> bool:
        """Poll-style accessor, shaped for ``run_with_checkpoints``."""
        return self._event.is_set()

    @property
    def requested(self) -> bool:
        return self._event.is_set()
