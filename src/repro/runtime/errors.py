"""Crash classification: which failures are worth retrying?

The supervisor and the hardware testbed both used to retry on *any*
``Exception``.  That policy turns a programming error — a ``TypeError``
from a bad config, a ``KeyError`` from a malformed metrics mapping —
into ``max_restarts`` identical crashes and a misleading
"restart budget exhausted" failure, burning the whole backoff schedule
on an error that can never succeed.  This module centralizes the
classification both retry loops use:

* **non-retryable**: deterministic programming/configuration errors
  (:data:`NON_RETRYABLE_TYPES`) — re-raised immediately so the operator
  sees the real traceback on the first attempt;
* **retryable**: everything else, notably ``RuntimeError`` (the
  conventional type for transient environment failures in this repo)
  and every fault the injection harness raises
  (:class:`~repro.runtime.faults.InjectedFault` and subclasses), which
  exist precisely to exercise the retry machinery.

``MemoryError``/``OSError`` style resource exhaustion stays retryable:
on a real fleet those are preemptions and flaky filesystems, the
bread-and-butter restart case.
"""

from __future__ import annotations

from typing import Tuple, Type

from .faults import InjectedFault

#: Deterministic programming/configuration errors: retrying re-executes
#: the same broken code on the same inputs and fails identically.
NON_RETRYABLE_TYPES: Tuple[Type[BaseException], ...] = (
    TypeError,
    KeyError,
    ValueError,
    AttributeError,
    IndexError,
    NotImplementedError,
)


class SearchInterrupted(Exception):
    """A run stopped cooperatively at a step boundary, not a crash.

    Raised by :func:`~repro.runtime.supervisor.run_with_checkpoints`
    when its ``should_stop`` callback turns true: the in-flight step is
    finished, a final checkpoint is written (when a store is attached),
    and *then* this is raised.  Deliberately not a ``RuntimeError`` —
    the supervisor re-raises it untouched instead of burning a restart,
    and the service scheduler uses it to distinguish a drained or
    cancelled job (resumable from its checkpoint) from a failed one.
    """

    def __init__(self, step: int, checkpoint_written: bool):
        self.step = int(step)
        self.checkpoint_written = bool(checkpoint_written)
        detail = (
            f"search stopped after step {self.step}"
            + (
                "; final checkpoint written, rerun with resume to continue"
                if self.checkpoint_written
                else " (no checkpoint store attached)"
            )
        )
        super().__init__(detail)


class WorkerCrashError(RuntimeError):
    """A backend lost workers beyond its resubmission budget.

    Raised by :class:`~repro.core.engine.backends.ProcessPoolBackend`
    after a ``map`` survived ``max_map_retries`` broken pools and broke
    again, and by
    :class:`~repro.core.engine.distributed.DistributedBackend` when a
    task burned its per-task retries across lost hosts or the last
    connected worker vanished mid-map.  Deliberately a ``RuntimeError``
    subclass: losing workers is a transient infrastructure failure (OOM
    kills, preemptions, network partitions), so the supervisor's restart
    loop classifies it retryable and resumes the search from its last
    snapshot rather than giving up.
    """


def is_retryable(error: BaseException) -> bool:
    """Whether a retry loop should attempt ``error`` again.

    Injected faults are always retryable — the fault harness models
    transient infrastructure failures even when it raises a type that
    would otherwise classify as a bug.
    """
    if isinstance(error, InjectedFault):
        return True
    return not isinstance(error, NON_RETRYABLE_TYPES)


def classify_error(error: BaseException) -> str:
    """``"retryable"`` or ``"non_retryable"``, for logs and telemetry."""
    return "retryable" if is_retryable(error) else "non_retryable"
