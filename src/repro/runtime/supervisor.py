"""Supervised search execution: checkpoints, restarts, heartbeats.

Two layers:

* :func:`run_with_checkpoints` drives one attempt of a search step by
  step, snapshotting every ``checkpoint_every`` steps and resuming from
  the newest good snapshot when asked — the single-process equivalent of
  the paper's periodically-checkpointed controller job.
* :class:`SearchSupervisor` wraps that loop in a bounded-restart retry
  policy with exponential backoff, so a search survives injected (or
  real) crashes: each attempt rebuilds the search from a factory,
  resumes from the checkpoint store, and replays forward.  Heartbeat
  accounting tracks per-step liveness across attempts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Set

from .checkpoint import CheckpointStore, search_checkpoint_payload
from .errors import SearchInterrupted, is_retryable
from .faults import FaultInjector
from .recovery import ResumeReport, resume_search


@dataclass
class CheckpointedRun:
    """Outcome of one uninterrupted (or resumed) pass over the steps."""

    result: Any
    resume: ResumeReport
    snapshots_written: int


def run_with_checkpoints(
    search: Any,
    store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 10,
    resume: bool = True,
    injector: Optional[FaultInjector] = None,
    on_step: Optional[Callable[[int], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> CheckpointedRun:
    """Run ``search`` to completion, snapshotting periodically.

    ``search`` must expose the stepwise protocol (``config.steps``,
    ``step(i)``, ``build_result(history)``, ``state_dict()``).  With a
    ``store``, a snapshot is written after every ``checkpoint_every``
    completed steps; with ``resume=True`` the run first restores from
    the newest good snapshot.  ``on_step`` fires after each completed
    step (heartbeats), ``injector`` hooks in scheduled faults.

    ``should_stop`` is the graceful-shutdown hook (see
    :mod:`repro.runtime.signals`): polled after every completed step,
    and when it turns true the loop writes a final off-interval
    snapshot (when a ``store`` is attached) and raises
    :class:`~repro.runtime.errors.SearchInterrupted` — never killing a
    step midway, never losing completed work.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    telemetry = getattr(search, "telemetry", None)
    if telemetry is not None and store is not None:
        store.attach_telemetry(telemetry)
    if store is not None and resume:
        next_step, history, report = resume_search(store, search)
    else:
        # A deliberate from-scratch start: run-scoped metrics must not
        # carry counts from any earlier attempt sharing this registry.
        if telemetry is not None:
            telemetry.reset_run_metrics()
        next_step, history, report = 0, [], ResumeReport()
    written = 0
    total_steps = int(search.config.steps)
    for step in range(next_step, total_steps):
        if injector is not None:
            injector.before_step(step)
        history.append(search.step(step))
        # Run-scoped liveness: rolled back with the search state on
        # resume, so totals stay bit-identical across crash/resume
        # (the supervisor's raw heartbeat ints keep counting replays).
        if telemetry is not None:
            telemetry.counter("search.heartbeats").inc()
        if on_step is not None:
            on_step(step)
        if injector is not None:
            injector.after_step(step)
        done = step + 1
        snapshotted = False
        if store is not None and done % checkpoint_every == 0 and done < total_steps:
            store.save(done, search_checkpoint_payload(search, done, history))
            written += 1
            snapshotted = True
        if should_stop is not None and done < total_steps and should_stop():
            if store is not None and not snapshotted:
                store.save(done, search_checkpoint_payload(search, done, history))
                written += 1
            if telemetry is not None:
                telemetry.event("supervisor.interrupted", step=done)
                telemetry.flush()
            raise SearchInterrupted(step=done, checkpoint_written=store is not None)
    return CheckpointedRun(
        result=search.build_result(history), resume=report, snapshots_written=written
    )


class RestartBudgetExceeded(RuntimeError):
    """The supervisor ran out of restarts; the last crash is chained."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry policy for :class:`SearchSupervisor`."""

    checkpoint_every: int = 10
    max_restarts: int = 5
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0

    def backoff_for(self, restart_index: int) -> float:
        """Backoff before restart ``restart_index`` (1-based)."""
        delay = self.backoff_base_s * self.backoff_factor ** (restart_index - 1)
        return min(delay, self.backoff_max_s)


@dataclass
class AttemptRecord:
    """Health log for one attempt of the supervised search."""

    attempt: int
    start_step: Optional[int]
    steps_completed: int
    outcome: str  # "completed" | "crashed"
    error: Optional[str] = None
    backoff_s: float = 0.0
    #: whether the crash was classified worth restarting for (see
    #: :mod:`repro.runtime.errors`); non-retryable crashes re-raise
    #: immediately instead of burning the restart budget
    retryable: bool = True


@dataclass
class SupervisedResult:
    """Final result plus the full restart/heartbeat history."""

    result: Any
    attempts: List[AttemptRecord] = field(default_factory=list)
    #: total steps executed across every attempt, replays included
    heartbeats: int = 0
    #: steps executed more than once because a crash rolled them back
    steps_replayed: int = 0
    #: snapshots written by the final, successful attempt
    snapshots_written: int = 0

    @property
    def restarts(self) -> int:
        return max(0, len(self.attempts) - 1)


class SearchSupervisor:
    """Drives a search to completion across crashes with bounded restarts.

    ``search_factory`` must build a *fresh* search each call — after a
    crash the old in-process state is untrusted, exactly as a real
    restarted worker begins from nothing but the checkpoint store.
    """

    def __init__(
        self,
        search_factory: Callable[[], Any],
        store: Optional[CheckpointStore],
        config: Optional[SupervisorConfig] = None,
        injector: Optional[FaultInjector] = None,
        sleep_fn: Callable[[float], None] = time.sleep,
        should_stop: Optional[Callable[[], bool]] = None,
    ):
        self._factory = search_factory
        self._store = store
        self.config = config if config is not None else SupervisorConfig()
        self._injector = injector
        self._sleep = sleep_fn
        self._should_stop = should_stop

    def run(self) -> SupervisedResult:
        attempts: List[AttemptRecord] = []
        heartbeats = 0
        steps_seen: Set[int] = set()
        replayed = 0
        attempt_index = 0
        while True:
            attempt_index += 1
            search = self._factory()
            if self._injector is not None:
                self._injector.arm(search, self._store)
            first_step: List[int] = []
            completed = 0

            def beat(step: int) -> None:
                nonlocal heartbeats, completed, replayed
                if not first_step:
                    first_step.append(step)
                heartbeats += 1
                completed += 1
                if step in steps_seen:
                    replayed += 1
                else:
                    steps_seen.add(step)

            try:
                run = run_with_checkpoints(
                    search,
                    store=self._store,
                    checkpoint_every=self.config.checkpoint_every,
                    injector=self._injector,
                    on_step=beat,
                    should_stop=self._should_stop,
                )
            except SearchInterrupted:
                # A graceful shutdown is not a crash: the final
                # checkpoint is on disk, so surface it untouched
                # instead of burning a restart replaying the run.
                raise
            except Exception as error:  # noqa: BLE001 - classified below
                retryable = is_retryable(error)
                telemetry = getattr(search, "telemetry", None)
                if telemetry is not None:
                    telemetry.counter("supervisor.crashes").inc(
                        error=type(error).__name__,
                        retryable=str(retryable).lower(),
                    )
                attempts.append(
                    AttemptRecord(
                        attempt=attempt_index,
                        start_step=first_step[0] if first_step else None,
                        steps_completed=completed,
                        outcome="crashed",
                        error=f"{type(error).__name__}: {error}",
                        retryable=retryable,
                    )
                )
                if not retryable:
                    # A deterministic bug: every restart would crash the
                    # same way, so surface the real traceback now.
                    if telemetry is not None:
                        telemetry.event(
                            "supervisor.abort",
                            attempt=attempt_index,
                            error=f"{type(error).__name__}: {error}",
                        )
                        telemetry.flush()
                    raise
                restarts_used = attempt_index - 1
                if restarts_used >= self.config.max_restarts:
                    raise RestartBudgetExceeded(
                        f"search crashed {attempt_index} times; "
                        f"restart budget of {self.config.max_restarts} exhausted"
                    ) from error
                backoff = self.config.backoff_for(restarts_used + 1)
                attempts[-1].backoff_s = backoff
                if telemetry is not None:
                    telemetry.counter("supervisor.restarts").inc()
                    telemetry.event(
                        "supervisor.restart",
                        attempt=attempt_index,
                        error=f"{type(error).__name__}: {error}",
                        backoff_s=backoff,
                    )
                if backoff > 0:
                    self._sleep(backoff)
                continue
            attempts.append(
                AttemptRecord(
                    attempt=attempt_index,
                    start_step=first_step[0] if first_step else None,
                    steps_completed=completed,
                    outcome="completed",
                )
            )
            telemetry = getattr(search, "telemetry", None)
            if telemetry is not None:
                telemetry.event(
                    "supervisor.completed",
                    attempts=attempt_index,
                    heartbeats=heartbeats,
                    steps_replayed=replayed,
                )
            return SupervisedResult(
                result=run.result,
                attempts=attempts,
                heartbeats=heartbeats,
                steps_replayed=replayed,
                snapshots_written=run.snapshots_written,
            )
