"""Crash-safe filesystem primitives for the fault-tolerant runtime.

Every artifact the reproduction persists — policy/perf-model snapshots
(:mod:`repro.core.serialize`), checkpoint shards, the checkpoint
manifest — goes through the same write protocol: write the full payload
to a temporary file in the destination directory, flush it to stable
storage, then :func:`os.replace` it over the final name.  POSIX renames
within one filesystem are atomic, so a reader (including a recovering
process) only ever observes the old content or the new content, never a
truncated mix — the failure mode a plain ``write_text`` leaves behind
when a worker is preempted mid-write.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Union

PathLike = Union[str, pathlib.Path]


def atomic_write_bytes(path: PathLike, payload: bytes) -> pathlib.Path:
    """Atomically replace ``path`` with ``payload`` (temp file + rename)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: PathLike, text: str) -> pathlib.Path:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: PathLike, payload: Any, **dumps_kwargs: Any) -> pathlib.Path:
    """Atomically replace ``path`` with ``payload`` serialized as JSON."""
    return atomic_write_text(path, json.dumps(payload, **dumps_kwargs))


def file_sha256(path: PathLike) -> str:
    """Hex SHA-256 digest of a file's content (checkpoint checksums)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
