"""Fault-tolerant search runtime: checkpointing, recovery, fault injection.

The paper's search jobs run for days across thousands of accelerator
cores; surviving preemption and hardware failure without losing (or
perturbing) the search is part of the system design.  This package
reproduces that layer at benchmark scale:

* :mod:`repro.runtime.atomic` — crash-safe write primitives shared with
  :mod:`repro.core.serialize`;
* :mod:`repro.runtime.checkpoint` — versioned, checksummed snapshots of
  the *complete* search state (policy + optimizer moments, supernet
  weights, eval-cache contents, rng bit-generator streams, counters);
* :mod:`repro.runtime.recovery` — resume-from-latest with corruption
  fallback; resumed runs are bit-identical to uninterrupted ones;
* :mod:`repro.runtime.faults` — deterministic seeded fault injection
  (crashes, stragglers, corrupted snapshots, exhausted pipelines);
* :mod:`repro.runtime.supervisor` — bounded-restart retry loop with
  backoff and heartbeat accounting that drives a search to completion
  across injected crashes.
"""

from .artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_KIND,
    ElasticArtifact,
    load_elastic_artifact,
    restore_elastic_supernet,
    save_elastic_artifact,
)
from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_text, file_sha256
from .checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    SnapshotInfo,
    decode_history,
    encode_history,
    pack_state,
    restore_search,
    restore_supernet_state,
    search_checkpoint_payload,
    supernet_state,
    unpack_state,
)
from .errors import (
    NON_RETRYABLE_TYPES,
    SearchInterrupted,
    WorkerCrashError,
    classify_error,
    is_retryable,
)
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    FiredFault,
    InjectedCrash,
    InjectedFault,
)
from .recovery import LoadedSnapshot, ResumeReport, resume_latest, resume_search
from .signals import GracefulShutdown
from .supervisor import (
    AttemptRecord,
    CheckpointedRun,
    RestartBudgetExceeded,
    SearchSupervisor,
    SupervisedResult,
    SupervisorConfig,
    run_with_checkpoints,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_KIND",
    "CHECKPOINT_FORMAT",
    "ElasticArtifact",
    "load_elastic_artifact",
    "restore_elastic_supernet",
    "save_elastic_artifact",
    "FAULT_KINDS",
    "NON_RETRYABLE_TYPES",
    "WorkerCrashError",
    "classify_error",
    "is_retryable",
    "AttemptRecord",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointStore",
    "CheckpointedRun",
    "FaultInjector",
    "FaultSpec",
    "FiredFault",
    "GracefulShutdown",
    "InjectedCrash",
    "InjectedFault",
    "LoadedSnapshot",
    "SearchInterrupted",
    "RestartBudgetExceeded",
    "ResumeReport",
    "SearchSupervisor",
    "SnapshotInfo",
    "SupervisedResult",
    "SupervisorConfig",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "decode_history",
    "encode_history",
    "file_sha256",
    "pack_state",
    "restore_search",
    "restore_supernet_state",
    "resume_latest",
    "resume_search",
    "run_with_checkpoints",
    "search_checkpoint_payload",
    "supernet_state",
    "unpack_state",
]
