"""Versioned elastic-supernet artifacts (the train-once half of OFA).

An artifact is the durable product of one :class:`~repro.core.elastic.
ElasticTraining` run: the trained elastic weights plus everything a
later :class:`~repro.core.elastic.SpecializationSearch` needs to trust
them — the search-space identity, the progressive-shrinking schedule the
weights were trained under, and content checksums.  Layout::

    <dir>/
      ARTIFACT.json                 # manifest; written atomically, last
      weights/                      # a CheckpointStore (keep_last=1)
        MANIFEST.json
        snap-000000-step-XXXXXX/
          state.json
          arrays.bin                # the weight arrays (SHA-256 pinned)

The weight payload rides the existing :class:`~repro.runtime.checkpoint.
CheckpointStore` machinery, inheriting its staging + ``os.replace`` +
manifest-last atomicity and per-file SHA-256 verification; the artifact
manifest is only written once the weights are durably in place, so a
crash mid-save can never present a half-written artifact as valid.
Loading into a mismatched search space is an error, not a warning —
specializing against weights trained for different decisions would be
silently wrong.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..searchspace.base import SearchSpace
from .atomic import atomic_write_json
from .checkpoint import (
    CheckpointError,
    CheckpointStore,
    restore_supernet_state,
    supernet_state,
)

PathLike = Union[str, pathlib.Path]

#: Version of the on-disk artifact layout.
ARTIFACT_FORMAT = 1
ARTIFACT_KIND = "elastic_supernet"
ARTIFACT_NAME = "ARTIFACT.json"
WEIGHTS_DIR = "weights"

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_KIND",
    "ARTIFACT_NAME",
    "ElasticArtifact",
    "load_elastic_artifact",
    "restore_elastic_supernet",
    "save_elastic_artifact",
]


@dataclass(frozen=True)
class ElasticArtifact:
    """Manifest view of one saved elastic-supernet artifact."""

    directory: pathlib.Path
    space_name: str
    decision_names: Tuple[str, ...]
    schedule: Dict[str, Any]
    trained_steps: int
    seed: int
    #: SHA-256 of the weight arrays file — the artifact's content
    #: identity; bit-identical trainings produce equal digests.
    weights_sha: str
    snapshot_id: str
    created_at: float
    metadata: Dict[str, Any] = field(default_factory=dict)


def _weights_store(directory: pathlib.Path) -> CheckpointStore:
    return CheckpointStore(directory / WEIGHTS_DIR, keep_last=1)


def save_elastic_artifact(
    directory: PathLike,
    supernet: Any,
    space: SearchSpace,
    schedule: Any,
    *,
    trained_steps: int,
    seed: int,
    metadata: Optional[Mapping[str, Any]] = None,
) -> ElasticArtifact:
    """Persist trained elastic weights as a versioned artifact.

    Saving into an existing artifact directory replaces it (the weight
    store retires the old snapshot; the manifest is rewritten
    atomically) — re-training to more steps is an in-place upgrade.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    store = _weights_store(directory)
    info = store.save(
        int(trained_steps),
        {
            "format": ARTIFACT_FORMAT,
            "kind": ARTIFACT_KIND,
            "weights": supernet_state(supernet),
        },
    )
    manifest = {
        "format": ARTIFACT_FORMAT,
        "kind": ARTIFACT_KIND,
        "space": {
            "name": space.name,
            "decisions": [d.name for d in space.decisions],
        },
        "schedule": schedule.describe(),
        "trained_steps": int(trained_steps),
        "seed": int(seed),
        "weights_sha": info.files[CheckpointStore.ARRAYS_NAME],
        "snapshot_id": info.snapshot_id,
        "created_at": time.time(),
        "metadata": dict(metadata or {}),
    }
    atomic_write_json(directory / ARTIFACT_NAME, manifest, indent=2, sort_keys=True)
    return _artifact_from_manifest(directory, manifest)


def _artifact_from_manifest(
    directory: pathlib.Path, manifest: Mapping[str, Any]
) -> ElasticArtifact:
    return ElasticArtifact(
        directory=directory,
        space_name=str(manifest["space"]["name"]),
        decision_names=tuple(str(n) for n in manifest["space"]["decisions"]),
        schedule=dict(manifest["schedule"]),
        trained_steps=int(manifest["trained_steps"]),
        seed=int(manifest["seed"]),
        weights_sha=str(manifest["weights_sha"]),
        snapshot_id=str(manifest["snapshot_id"]),
        created_at=float(manifest["created_at"]),
        metadata=dict(manifest.get("metadata", {})),
    )


def load_elastic_artifact(directory: PathLike) -> ElasticArtifact:
    """Read and validate an artifact manifest (weights stay on disk)."""
    directory = pathlib.Path(directory)
    path = directory / ARTIFACT_NAME
    if not path.exists():
        raise CheckpointError(f"no elastic artifact at {directory} ({ARTIFACT_NAME} missing)")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(f"unreadable artifact manifest {path}: {error}") from error
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise CheckpointError(
            f"unsupported artifact format {manifest.get('format')!r} "
            f"(expected {ARTIFACT_FORMAT})"
        )
    if manifest.get("kind") != ARTIFACT_KIND:
        raise CheckpointError(
            f"not an elastic-supernet artifact (kind={manifest.get('kind')!r})"
        )
    return _artifact_from_manifest(directory, manifest)


def restore_elastic_supernet(
    directory: PathLike,
    supernet: Any,
    space: Optional[SearchSpace] = None,
) -> ElasticArtifact:
    """Load an artifact's trained weights into ``supernet``.

    When ``space`` is given, its identity (name + ordered decision
    names) must match the space the artifact was trained for; the
    weight payload is checksum-verified by the underlying store before
    any state is touched.
    """
    directory = pathlib.Path(directory)
    artifact = load_elastic_artifact(directory)
    if space is not None:
        names = tuple(d.name for d in space.decisions)
        if space.name != artifact.space_name or names != artifact.decision_names:
            raise CheckpointError(
                f"artifact {directory} was trained for space "
                f"{artifact.space_name!r} ({len(artifact.decision_names)} "
                f"decisions); cannot specialize space {space.name!r} "
                f"({len(names)} decisions)"
            )
    store = _weights_store(directory)
    info = store.latest()
    if info is None or info.snapshot_id != artifact.snapshot_id:
        raise CheckpointError(
            f"artifact {directory}: weight snapshot "
            f"{artifact.snapshot_id!r} is not the store's latest "
            f"({info.snapshot_id if info else None!r})"
        )
    payload = store.load(info)
    if payload.get("format") != ARTIFACT_FORMAT or payload.get("kind") != ARTIFACT_KIND:
        raise CheckpointError(
            f"artifact {directory}: unexpected weight payload "
            f"(format={payload.get('format')!r}, kind={payload.get('kind')!r})"
        )
    restore_supernet_state(supernet, payload["weights"])
    return artifact
