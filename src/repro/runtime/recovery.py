"""Crash recovery: resume from the newest verifiable snapshot.

Recovery walks the manifest newest-to-oldest, checksum-verifying each
snapshot and falling back when one is corrupt (a preempted writer, a
bad disk, an injected fault from :mod:`repro.runtime.faults`).  Because
a snapshot captures every rng bit-generator state the search consumes,
a run restored from snapshot ``k`` replays steps ``k..`` with the same
draws an uninterrupted run would have made — crash-resumed searches are
bit-identical, which the crash/resume property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from .checkpoint import (
    CheckpointCorruptError,
    CheckpointStore,
    SnapshotInfo,
    restore_search,
)


@dataclass
class LoadedSnapshot:
    """A successfully verified snapshot plus what recovery skipped."""

    info: SnapshotInfo
    state: Any
    #: snapshot ids that failed verification, newest first
    corrupt_skipped: List[str] = field(default_factory=list)


def resume_latest(store: CheckpointStore) -> Optional[LoadedSnapshot]:
    """Load the newest snapshot that passes verification.

    Returns ``None`` when the store has no usable snapshot (fresh run).
    Raises :class:`CheckpointCorruptError` only when snapshots exist but
    *every* one of them is corrupt — starting silently from scratch
    would discard work the operator believes is checkpointed.
    """
    entries = store.snapshots()
    corrupt: List[str] = []
    for info in reversed(entries):
        try:
            state = store.load(info)
        except CheckpointCorruptError:
            corrupt.append(info.snapshot_id)
            continue
        return LoadedSnapshot(info=info, state=state, corrupt_skipped=corrupt)
    if corrupt:
        raise CheckpointCorruptError(
            f"all {len(corrupt)} snapshots failed verification: {corrupt}"
        )
    return None


@dataclass
class ResumeReport:
    """How a search run started: fresh, or restored from which snapshot."""

    resumed_from_step: Optional[int] = None
    snapshot_id: Optional[str] = None
    corrupt_skipped: List[str] = field(default_factory=list)

    @property
    def resumed(self) -> bool:
        return self.resumed_from_step is not None


def resume_search(store: CheckpointStore, search: Any):
    """Restore ``search`` from the newest good snapshot, if one exists.

    Returns ``(next_step, history, report)``; ``next_step`` is 0 with an
    empty history for a fresh start.  When the search carries a
    telemetry handle, a fresh start resets its run-scoped metrics (a
    restarted process with no usable snapshot must not report counts
    from rolled-back steps), while churn metrics (``recovery.*`` etc.)
    always survive.
    """
    telemetry = getattr(search, "telemetry", None)
    loaded = resume_latest(store)
    if loaded is None:
        if telemetry is not None:
            telemetry.reset_run_metrics()
            telemetry.event("recovery.fresh_start")
        return 0, [], ResumeReport()
    next_step, history = restore_search(search, loaded.state)
    report = ResumeReport(
        resumed_from_step=next_step,
        snapshot_id=loaded.info.snapshot_id,
        corrupt_skipped=loaded.corrupt_skipped,
    )
    if telemetry is not None:
        if loaded.corrupt_skipped:
            telemetry.counter("recovery.corrupt_snapshots").inc(
                len(loaded.corrupt_skipped)
            )
            telemetry.event(
                "recovery.corrupt_fallback",
                skipped=list(loaded.corrupt_skipped),
                used_snapshot_id=loaded.info.snapshot_id,
            )
        telemetry.counter("recovery.resumes").inc()
        telemetry.event(
            "recovery.resumed",
            step=next_step,
            snapshot_id=loaded.info.snapshot_id,
            corrupt_skipped=len(loaded.corrupt_skipped),
        )
    return next_step, history, report
