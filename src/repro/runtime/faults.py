"""Deterministic fault injection for the fault-tolerant runtime.

Hyperscale fleets fail in a handful of characteristic ways; each gets a
first-class, *seeded* injection so tests and benchmarks can replay the
exact same failure schedule run after run:

* ``crash`` — the worker process dies, either between steps or mid-shard
  (while cores are still scoring candidates);
* ``straggler`` — one shard stalls, delaying the step;
* ``corrupt_checkpoint`` — a snapshot file is silently damaged (bad
  disk, torn write on non-atomic storage), exercising the recovery
  fallback path;
* ``exhaust_pipeline`` — the data feed dries up mid-search.

A :class:`FaultInjector` is armed with the live search and checkpoint
store by the supervisor at the start of every attempt; each spec fires
exactly once, so a restarted attempt replays the step that killed its
predecessor without re-tripping the same fault.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

#: The supported fault kinds.
FAULT_KINDS = ("crash", "straggler", "corrupt_checkpoint", "exhaust_pipeline")


class InjectedFault(RuntimeError):
    """Base class of all injected failures."""


class InjectedCrash(InjectedFault):
    """A simulated worker death (the process would be gone)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``step`` is the search step index the fault fires at.  ``phase``
    selects where within the step a crash lands: ``"before"`` kills the
    worker between steps, ``"mid"`` kills it mid-shard — after
    ``mid_after_calls`` supernet scoring calls of that step — and
    ``"after"`` kills it once the step completed but before the next
    checkpoint.
    """

    kind: str
    step: int
    phase: str = "before"
    #: straggler only: how long the slow shard stalls
    delay_s: float = 0.0
    #: corrupt_checkpoint only: which snapshot file to damage
    file_name: str = "arrays.bin"
    #: crash/phase="mid" only: scoring calls that succeed before death
    mid_after_calls: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {FAULT_KINDS}")
        if self.phase not in ("before", "mid", "after"):
            raise ValueError(f"phase must be before/mid/after, got {self.phase!r}")
        if self.phase == "mid" and self.kind != "crash":
            raise ValueError("phase='mid' is only meaningful for crash faults")
        if self.step < 0:
            raise ValueError("step must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.mid_after_calls < 1:
            raise ValueError("mid_after_calls must be >= 1")


@dataclass
class FiredFault:
    """Log entry: which fault fired, at which step, on which attempt."""

    spec: FaultSpec
    step: int
    attempt: int


class _MidShardCrash:
    """Supernet proxy that dies after a set number of scoring calls."""

    def __init__(self, supernet: Any, after_calls: int, on_fire: Callable[[], None]):
        self._supernet = supernet
        self._remaining = after_calls
        self._on_fire = on_fire

    def _tick(self) -> None:
        self._remaining -= 1
        if self._remaining < 0:
            self._on_fire()
            raise InjectedCrash("injected mid-shard crash during scoring")

    def quality(self, *args: Any, **kwargs: Any):
        self._tick()
        return self._supernet.quality(*args, **kwargs)

    def quality_many(self, *args: Any, **kwargs: Any):
        if not hasattr(self._supernet, "quality_many"):
            raise AttributeError("quality_many")
        self._tick()
        return self._supernet.quality_many(*args, **kwargs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._supernet, name)


class FaultInjector:
    """Fires a schedule of :class:`FaultSpec` against a supervised search.

    Deterministic by construction: the schedule is explicit, and the
    only randomness (which bytes of a checkpoint file get damaged) comes
    from a seeded generator, so a given (schedule, seed) pair produces
    the same failure trace every run.
    """

    def __init__(
        self,
        faults: Sequence[FaultSpec],
        seed: int = 0,
        sleep_fn: Optional[Callable[[float], None]] = None,
    ):
        self._pending: List[FaultSpec] = sorted(faults, key=lambda f: (f.step, f.kind))
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep_fn if sleep_fn is not None else time.sleep
        self.fired: List[FiredFault] = []
        self.attempt = 0
        self._search: Any = None
        self._store: Any = None

    # -- wiring --------------------------------------------------------
    def arm(self, search: Any, store: Any) -> None:
        """Attach the injector to one attempt's live search and store."""
        self._search = search
        self._store = store
        self.attempt += 1

    @property
    def pending(self) -> List[FaultSpec]:
        return list(self._pending)

    def _take(self, step: int, phases: Sequence[str]) -> List[FaultSpec]:
        due = [f for f in self._pending if f.step == step and f.phase in phases]
        for spec in due:
            self._pending.remove(spec)
        return due

    def _record(self, spec: FaultSpec, step: int) -> None:
        self.fired.append(FiredFault(spec=spec, step=step, attempt=self.attempt))

    # -- hooks called by the step driver -------------------------------
    def before_step(self, step: int) -> None:
        """Fire all faults scheduled before/within ``step``."""
        for spec in self._take(step, ("before", "mid")):
            if spec.kind == "crash" and spec.phase == "mid":
                self._search.supernet = _MidShardCrash(
                    self._search.supernet,
                    spec.mid_after_calls,
                    on_fire=lambda spec=spec: self._record(spec, step),
                )
            elif spec.kind == "crash":
                self._record(spec, step)
                raise InjectedCrash(f"injected crash before step {step}")
            elif spec.kind == "straggler":
                self._record(spec, step)
                self._sleep(spec.delay_s)
            elif spec.kind == "corrupt_checkpoint":
                self._record(spec, step)
                self._corrupt_latest(spec)
            elif spec.kind == "exhaust_pipeline":
                self._record(spec, step)
                pipeline = getattr(self._search, "pipeline", None)
                if pipeline is None or not hasattr(pipeline, "force_exhaust"):
                    raise InjectedFault(
                        "exhaust_pipeline fault needs a search with a "
                        "force_exhaust-capable pipeline"
                    )
                pipeline.force_exhaust()

    def after_step(self, step: int) -> None:
        """Fire crash faults scheduled for after ``step`` completed."""
        for spec in self._take(step, ("after",)):
            if spec.kind == "crash":
                self._record(spec, step)
                raise InjectedCrash(f"injected crash after step {step}")

    # -- fault implementations ----------------------------------------
    def _corrupt_latest(self, spec: FaultSpec) -> None:
        """Damage bytes of the newest snapshot's ``spec.file_name``.

        A no-op when no snapshot exists yet (nothing to damage), like a
        disk fault on an empty directory.
        """
        if self._store is None:
            return
        info = self._store.latest()
        if info is None:
            return
        path = self._store.snapshot_dir(info) / spec.file_name
        if not path.exists():
            return
        data = bytearray(path.read_bytes())
        if not data:
            return
        positions = self._rng.integers(0, len(data), size=min(8, len(data)))
        for position in positions:
            data[int(position)] ^= 0xFF
        path.write_bytes(bytes(data))
