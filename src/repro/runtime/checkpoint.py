"""Versioned, checksummed snapshots of full search state.

A production search loses a worker every few hours, not every few
months; the checkpoint layer makes that loss cost at most
``checkpoint_every`` steps of replay instead of the whole run.  One
snapshot captures *everything* the search algorithms mutate:

* policy logits and the REINFORCE baseline;
* super-network weights and optimizer moments;
* the eval-runtime cache (contents and hit/miss counters);
* every rng bit-generator state (controller, warmup sampler, batch
  source, surrogate noise), so a resumed run draws the same streams;
* pipeline counters and the step history recorded so far.

Snapshots live in a manifest-indexed directory::

    <root>/
      MANIFEST.json                 # index; updated atomically, last
      snap-000003-step-000020/      # one directory per snapshot
        state.json                  # scalars, rng states, array index
        arrays.bin                  # one concatenated buffer per dtype

Search state holds hundreds of small parameter arrays; writing each as
its own archive member costs more in bookkeeping than in data.  The
store therefore concatenates all arrays of one dtype into a single
buffer, streams each buffer as a raw ``.npy`` segment into
``arrays.bin``, and keeps the (buffer, offset, shape) index in
``state.json``.

A snapshot becomes visible only when the manifest names it, and the
manifest itself is replaced atomically (see :mod:`repro.runtime.atomic`),
so a crash mid-snapshot can never present a half-written checkpoint as
valid.  Every file's SHA-256 is recorded in the manifest; recovery
(:mod:`repro.runtime.recovery`) verifies it before trusting a snapshot
and falls back to the previous one on mismatch.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.search import CandidateRecord, StepRecord
from ..searchspace.base import SearchSpace
from .atomic import atomic_write_json, file_sha256

PathLike = Union[str, pathlib.Path]

#: Version of the on-disk snapshot payload layout.
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """Base error of the checkpoint subsystem."""


class CheckpointCorruptError(CheckpointError):
    """A snapshot failed checksum or structural verification."""


# ----------------------------------------------------------------------
# State tree <-> (JSON tree, array table)
# ----------------------------------------------------------------------

_ARRAY_MARKER = "__ndarray__"


def pack_state(state: Any) -> Tuple[Any, List[np.ndarray]]:
    """Split a nested state tree into a JSON-safe tree plus its arrays.

    Every ``np.ndarray`` leaf is replaced by ``{"__ndarray__": i}`` and
    collected into the returned array table (persisted as NPZ, which
    round-trips dtype and shape exactly).  Numpy scalars collapse to
    Python scalars — an exact conversion for int64/float64, the only
    scalar types search state contains.
    """
    arrays: List[np.ndarray] = []

    def walk(node: Any) -> Any:
        if isinstance(node, np.ndarray):
            arrays.append(node)
            return {_ARRAY_MARKER: len(arrays) - 1}
        if isinstance(node, np.generic):
            return node.item()
        if isinstance(node, Mapping):
            packed = {}
            for key, value in node.items():
                if not isinstance(key, str):
                    raise CheckpointError(
                        f"state keys must be strings, got {key!r} "
                        f"({type(key).__name__})"
                    )
                if key == _ARRAY_MARKER:
                    raise CheckpointError(
                        f"state key {_ARRAY_MARKER!r} is reserved"
                    )
                packed[key] = walk(value)
            return packed
        if isinstance(node, (list, tuple)):
            return [walk(item) for item in node]
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        raise CheckpointError(
            f"cannot checkpoint value of type {type(node).__name__}: {node!r}"
        )

    return walk(state), arrays


def unpack_state(tree: Any, arrays: Sequence[np.ndarray]) -> Any:
    """Inverse of :func:`pack_state`."""

    def walk(node: Any) -> Any:
        if isinstance(node, dict):
            if set(node) == {_ARRAY_MARKER}:
                return arrays[int(node[_ARRAY_MARKER])]
            return {key: walk(value) for key, value in node.items()}
        if isinstance(node, list):
            return [walk(item) for item in node]
        return node

    return walk(tree)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SnapshotInfo:
    """One manifest entry: where a snapshot lives and what it must hash to."""

    snapshot_id: str
    step: int  #: number of completed search steps the snapshot captures
    seq: int  #: monotone sequence number (manifest order)
    files: Mapping[str, str]  #: file name -> expected SHA-256 hex digest
    created_at: float


class CheckpointStore:
    """Atomic, manifest-indexed snapshot directory with retention.

    ``keep_last`` bounds disk use: after each save, only the newest
    ``keep_last`` snapshots stay in the manifest and on disk.  Keeping
    more than one matters — corruption recovery falls back to the
    previous snapshot when the latest fails its checksum.
    """

    MANIFEST_NAME = "MANIFEST.json"
    STATE_NAME = "state.json"
    ARRAYS_NAME = "arrays.bin"
    _MANIFEST_VERSION = 1

    def __init__(
        self, root: PathLike, keep_last: int = 3, telemetry: Optional[Any] = None
    ):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.root = pathlib.Path(root)
        self.keep_last = keep_last
        self.root.mkdir(parents=True, exist_ok=True)
        #: optional shared telemetry; ``checkpoint.*`` metrics are churn
        #: scoped (never rolled back on resume — the saves really happened)
        self.telemetry = telemetry

    def attach_telemetry(self, telemetry: Any) -> None:
        """Attach a telemetry handle unless one is already set."""
        if self.telemetry is None:
            self.telemetry = telemetry

    # -- manifest ------------------------------------------------------
    @property
    def _manifest_path(self) -> pathlib.Path:
        return self.root / self.MANIFEST_NAME

    def _read_manifest(self) -> dict:
        if not self._manifest_path.exists():
            return {"version": self._MANIFEST_VERSION, "next_seq": 0, "snapshots": []}
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointCorruptError(
                f"unreadable checkpoint manifest {self._manifest_path}: {error}"
            ) from error
        if manifest.get("version") != self._MANIFEST_VERSION:
            raise CheckpointError(
                f"unsupported manifest version {manifest.get('version')!r}"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_json(self._manifest_path, manifest, indent=2, sort_keys=True)

    @staticmethod
    def _info_from_entry(entry: dict) -> SnapshotInfo:
        return SnapshotInfo(
            snapshot_id=entry["id"],
            step=int(entry["step"]),
            seq=int(entry["seq"]),
            files=dict(entry["files"]),
            created_at=float(entry["created_at"]),
        )

    def snapshots(self) -> List[SnapshotInfo]:
        """All manifest-visible snapshots, oldest first."""
        return [self._info_from_entry(e) for e in self._read_manifest()["snapshots"]]

    def latest(self) -> Optional[SnapshotInfo]:
        """The newest manifest-visible snapshot, if any."""
        entries = self.snapshots()
        return entries[-1] if entries else None

    def snapshot_dir(self, info: SnapshotInfo) -> pathlib.Path:
        return self.root / info.snapshot_id

    # -- save ----------------------------------------------------------
    def save(self, step: int, state: Any) -> SnapshotInfo:
        """Persist ``state`` as the snapshot for ``step`` completed steps.

        The snapshot directory is staged under a temporary name, renamed
        into place, and only then referenced from the manifest — each
        transition atomic, so readers never observe a partial snapshot.
        """
        save_started = time.perf_counter()
        manifest = self._read_manifest()
        seq = int(manifest["next_seq"])
        snapshot_id = f"snap-{seq:06d}-step-{step:06d}"
        final_dir = self.root / snapshot_id
        staging = self.root / f".tmp-{snapshot_id}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)

        tree, arrays = pack_state(state)
        buffer_names: List[str] = []
        buffer_ids: Dict[str, int] = {}
        buffer_chunks: Dict[str, List[np.ndarray]] = {}
        buffer_sizes: Dict[str, int] = {}
        index: List[dict] = []
        for array in arrays:
            dtype_name = array.dtype.str
            if dtype_name not in buffer_ids:
                buffer_ids[dtype_name] = len(buffer_names)
                buffer_names.append(dtype_name)
                buffer_chunks[dtype_name] = []
                buffer_sizes[dtype_name] = 0
            index.append(
                {
                    "buffer": buffer_ids[dtype_name],
                    "offset": buffer_sizes[dtype_name],
                    "shape": list(array.shape),
                }
            )
            buffer_chunks[dtype_name].append(np.ascontiguousarray(array).ravel())
            buffer_sizes[dtype_name] += array.size
        document = {"tree": tree, "buffers": buffer_names, "arrays": index}
        state_path = staging / self.STATE_NAME
        arrays_path = staging / self.ARRAYS_NAME
        with open(state_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        with open(arrays_path, "wb") as handle:
            for name in buffer_names:
                chunks = buffer_chunks[name]
                merged = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                np.lib.format.write_array(handle, merged, allow_pickle=False)
            handle.flush()
            os.fsync(handle.fileno())

        files = {
            self.STATE_NAME: file_sha256(state_path),
            self.ARRAYS_NAME: file_sha256(arrays_path),
        }
        if final_dir.exists():  # stray dir from a dead run; never manifest-visible
            shutil.rmtree(final_dir)
        os.replace(staging, final_dir)

        entry = {
            "id": snapshot_id,
            "step": int(step),
            "seq": seq,
            "files": files,
            # Wall clock for humans; monotonic anchor so age/ordering
            # math within one process survives clock steps.
            "created_at": time.time(),
            "created_monotonic": time.monotonic(),
        }
        manifest["snapshots"].append(entry)
        manifest["next_seq"] = seq + 1
        retired = manifest["snapshots"][: -self.keep_last]
        manifest["snapshots"] = manifest["snapshots"][-self.keep_last :]
        self._write_manifest(manifest)
        # Old snapshot dirs are deleted only after the manifest stopped
        # naming them, so a crash here at worst leaks a directory.
        for old in retired:
            shutil.rmtree(self.root / old["id"], ignore_errors=True)
        self._sweep_staging()
        if self.telemetry is not None:
            self.telemetry.counter("checkpoint.saves").inc()
            self.telemetry.registry.histogram("checkpoint.save_seconds").observe(
                time.perf_counter() - save_started
            )
            self.telemetry.event(
                "checkpoint.save", step=int(step), snapshot_id=snapshot_id, seq=seq
            )
        return self._info_from_entry(entry)

    def _sweep_staging(self) -> None:
        """Remove staging directories a crashed writer left behind."""
        for path in self.root.glob(".tmp-*"):
            if path.is_dir():
                shutil.rmtree(path, ignore_errors=True)

    # -- load ----------------------------------------------------------
    def load(self, info: SnapshotInfo) -> Any:
        """Read and verify one snapshot, returning the restored state tree.

        Raises :class:`CheckpointCorruptError` if any file is missing,
        fails its manifest checksum, or does not parse.
        """
        try:
            state = self._load_verified(info)
        except CheckpointCorruptError as error:
            if self.telemetry is not None:
                self.telemetry.counter("checkpoint.corrupt").inc()
                self.telemetry.event(
                    "checkpoint.corrupt",
                    snapshot_id=info.snapshot_id,
                    error=str(error),
                )
            raise
        if self.telemetry is not None:
            self.telemetry.counter("checkpoint.loads").inc()
            self.telemetry.event(
                "checkpoint.load", step=info.step, snapshot_id=info.snapshot_id
            )
        return state

    def _load_verified(self, info: SnapshotInfo) -> Any:
        directory = self.snapshot_dir(info)
        for name, expected in info.files.items():
            path = directory / name
            if not path.exists():
                raise CheckpointCorruptError(
                    f"snapshot {info.snapshot_id}: missing file {name}"
                )
            actual = file_sha256(path)
            if actual != expected:
                raise CheckpointCorruptError(
                    f"snapshot {info.snapshot_id}: checksum mismatch on {name} "
                    f"(expected {expected[:12]}…, got {actual[:12]}…)"
                )
        try:
            document = json.loads((directory / self.STATE_NAME).read_text())
            with open(directory / self.ARRAYS_NAME, "rb") as handle:
                buffers = [
                    np.lib.format.read_array(handle, allow_pickle=False)
                    for _ in document["buffers"]
                ]
            arrays = []
            for entry in document["arrays"]:
                shape = tuple(int(n) for n in entry["shape"])
                size = int(np.prod(shape)) if shape else 1
                offset = int(entry["offset"])
                flat = buffers[int(entry["buffer"])][offset : offset + size]
                arrays.append(flat.reshape(shape))
            tree = document["tree"]
        except Exception as error:
            raise CheckpointCorruptError(
                f"snapshot {info.snapshot_id}: unreadable payload: {error}"
            ) from error
        return unpack_state(tree, arrays)


# ----------------------------------------------------------------------
# Search-state payloads
# ----------------------------------------------------------------------


def encode_history(space: SearchSpace, history: Sequence[StepRecord]) -> list:
    """History records as plain data (architectures become index vectors)."""
    return [
        {
            "step": record.step,
            "mean_reward": float(record.mean_reward),
            "mean_quality": float(record.mean_quality),
            "policy_entropy": float(record.policy_entropy),
            "candidates": [
                {
                    "indices": [int(i) for i in space.indices_of(c.architecture)],
                    "quality": float(c.quality),
                    "metrics": {k: float(v) for k, v in c.metrics.items()},
                    "reward": float(c.reward),
                }
                for c in record.candidates
            ],
        }
        for record in history
    ]


def decode_history(space: SearchSpace, payload: Sequence[dict]) -> List[StepRecord]:
    """Inverse of :func:`encode_history`."""
    return [
        StepRecord(
            step=int(entry["step"]),
            mean_reward=float(entry["mean_reward"]),
            mean_quality=float(entry["mean_quality"]),
            policy_entropy=float(entry["policy_entropy"]),
            candidates=[
                CandidateRecord(
                    architecture=space.architecture_from_indices(c["indices"]),
                    quality=float(c["quality"]),
                    metrics={k: float(v) for k, v in c["metrics"].items()},
                    reward=float(c["reward"]),
                )
                for c in entry["candidates"]
            ],
        )
        for entry in payload
    ]


def search_checkpoint_payload(
    search: Any, next_step: int, history: Sequence[StepRecord]
) -> dict:
    """The full snapshot payload for a (single-step or TuNAS) search."""
    return {
        "format": CHECKPOINT_FORMAT,
        "algorithm": type(search).__name__,
        "next_step": int(next_step),
        "history": encode_history(search.space, history),
        "search": search.state_dict(),
    }


def restore_search(search: Any, payload: Mapping[str, Any]) -> Tuple[int, List[StepRecord]]:
    """Load a :func:`search_checkpoint_payload` back into ``search``.

    Returns ``(next_step, history)``: the step index to resume from and
    the step records completed before the snapshot.
    """
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {payload.get('format')!r}"
        )
    algorithm = payload.get("algorithm")
    if algorithm != type(search).__name__:
        raise CheckpointError(
            f"checkpoint was taken by {algorithm!r}, cannot restore into "
            f"{type(search).__name__}"
        )
    search.load_state_dict(payload["search"])
    return int(payload["next_step"]), decode_history(search.space, payload["history"])


def supernet_state(supernet: Any) -> dict:
    """Weight snapshot of any SuperNetwork-protocol object.

    Supernets exposing ``state_dict`` (every :class:`repro.nn.Module`,
    plus :class:`repro.core.SurrogateSuperNetwork`) round-trip through
    it; anything else falls back to a positional parameter dump.
    """
    state_dict = getattr(supernet, "state_dict", None)
    if callable(state_dict):
        return {"kind": "state_dict", "state": dict(state_dict())}
    return {
        "kind": "params",
        "params": [param.data.copy() for param in supernet.parameters()],
    }


def restore_supernet_state(supernet: Any, state: Mapping[str, Any]) -> None:
    """Inverse of :func:`supernet_state`."""
    if state["kind"] == "state_dict":
        supernet.load_state_dict(state["state"])
        return
    params = supernet.parameters()
    saved = state["params"]
    if len(saved) != len(params):
        raise CheckpointError(
            f"checkpoint has {len(saved)} parameters, supernet has {len(params)}"
        )
    for param, value in zip(params, saved):
        value = np.asarray(value)
        if value.shape != param.data.shape:
            raise CheckpointError(
                f"parameter shape {value.shape} does not match supernet "
                f"{param.data.shape}"
            )
        param.data[:] = value
