"""Analytical ML performance simulator.

This is the reproduction's stand-in for the paper's in-house simulator
(Section 6.2.3): it walks an :class:`~repro.graph.ir.OpGraph`, computes
each operator's run-time from the hardware roofline (matrix unit,
vector unit, HBM, on-chip CMEM, and interconnect), and sums the
critical path.  It also keeps the counters the paper's hardware
analysis uses (Figure 7): total FLOPs, achieved FLOP/s, HBM traffic,
CMEM traffic, and per-unit busy time.

Memory placement model: parameters always stream from HBM; activation
tensors stay in CMEM when they fit in half the scratchpad (the
compiler double-buffers), otherwise they spill to HBM.  Embedding
gathers always hit HBM (tables are far larger than CMEM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..graph.ir import OpGraph, OpNode, UNIT_MEMORY, UNIT_MXU, UNIT_NETWORK
from .config import HardwareConfig
from .roofline import peak_compute_rate

#: Fraction of CMEM usable for activations (rest is double-buffering slack).
CMEM_USABLE_FRACTION = 0.5


@dataclass
class OpTiming:
    """Per-operator simulation outcome."""

    name: str
    op_type: str
    time_s: float
    compute_time_s: float
    memory_time_s: float
    network_time_s: float
    flops: float
    hbm_bytes: float
    cmem_bytes: float
    bound: str  # "compute" | "memory" | "network" | "overhead"


@dataclass
class SimulationResult:
    """Whole-graph simulation outcome with hardware counters."""

    graph_name: str
    hardware: str
    total_time_s: float
    serial_time_s: float
    total_flops: float
    hbm_bytes: float
    cmem_bytes: float
    network_bytes: float
    param_bytes: float
    mxu_busy_s: float
    vpu_busy_s: float
    critical_path: List[str] = field(default_factory=list)
    op_timings: Dict[str, OpTiming] = field(default_factory=dict)

    @property
    def achieved_flops(self) -> float:
        """End-to-end FLOP/s (the paper's "compute rate")."""
        return self.total_flops / self.total_time_s if self.total_time_s > 0 else 0.0

    @property
    def achieved_tflops(self) -> float:
        return self.achieved_flops / 1e12

    @property
    def hbm_bandwidth_used(self) -> float:
        """Average HBM bytes/s over the run."""
        return self.hbm_bytes / self.total_time_s if self.total_time_s > 0 else 0.0

    @property
    def cmem_bandwidth_used(self) -> float:
        return self.cmem_bytes / self.total_time_s if self.total_time_s > 0 else 0.0

    @property
    def total_memory_bytes(self) -> float:
        return self.hbm_bytes + self.cmem_bytes

    @property
    def operational_intensity(self) -> float:
        total = self.total_memory_bytes
        return self.total_flops / total if total > 0 else 0.0

    def bound_fraction(self, bound: str) -> float:
        """Fraction of serial time spent in ops limited by ``bound``."""
        if self.serial_time_s <= 0:
            return 0.0
        limited = sum(
            t.time_s for t in self.op_timings.values() if t.bound == bound
        )
        return limited / self.serial_time_s


class PerformanceSimulator:
    """Roofline-based operator-graph simulator for one accelerator.

    With ``run_compiler_passes=True`` the simulator first applies the
    XLA-style optimization passes of :mod:`repro.graph.passes`
    (elementwise fusion, dead-op elimination), mirroring the paper's
    simulator behaviour on unoptimized TensorFlow graphs; HLO-style
    pre-optimized graphs should be timed as-is (the default).
    """

    def __init__(self, hw: HardwareConfig, run_compiler_passes: bool = False):
        self.hw = hw
        self.run_compiler_passes = run_compiler_passes

    # ------------------------------------------------------------------
    def _memory_split(self, op: OpNode) -> Dict[str, float]:
        """Split an op's traffic between CMEM and HBM."""
        hw = self.hw
        cmem_budget = hw.cmem_capacity_bytes * CMEM_USABLE_FRACTION
        hbm = op.param_bytes
        cmem = 0.0
        if op.op_type == "embedding_lookup":
            # Tables exceed CMEM by orders of magnitude: all HBM.
            hbm += op.bytes_in + op.bytes_out
        elif op.attrs.get("cmem_resident"):
            # Compiler-fused intermediates (e.g. attention scores) are
            # blocked through the on-chip scratchpad and never touch HBM.
            cmem += op.bytes_in + op.bytes_out
        else:
            for chunk in (op.bytes_in, op.bytes_out):
                if chunk <= cmem_budget:
                    cmem += chunk
                else:
                    hbm += chunk
        return {"hbm": hbm, "cmem": cmem}

    def time_op(self, op: OpNode) -> OpTiming:
        """Roofline time for a single operator."""
        hw = self.hw
        compute_time = 0.0
        if op.flops > 0:
            rate = peak_compute_rate(op, hw)
            compute_time = op.flops / rate if rate > 0 else float("inf")
        split = self._memory_split(op)
        memory_time = split["hbm"] / hw.hbm_bandwidth + split["cmem"] / hw.cmem_bandwidth
        network_time = op.network_bytes / hw.ici_bandwidth if op.network_bytes else 0.0
        body = max(compute_time, memory_time, network_time)
        total = body + hw.op_overhead_s
        if body <= hw.op_overhead_s:
            bound = "overhead"
        elif body == compute_time:
            bound = "compute"
        elif body == memory_time:
            bound = "memory"
        else:
            bound = "network"
        return OpTiming(
            name=op.name,
            op_type=op.op_type,
            time_s=total,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            network_time_s=network_time,
            flops=op.flops,
            hbm_bytes=split["hbm"],
            cmem_bytes=split["cmem"],
            bound=bound,
        )

    def simulate(self, graph: OpGraph) -> SimulationResult:
        """Simulate ``graph`` end to end.

        ``total_time_s`` is the critical-path time (parallel branches
        overlap — e.g. a DLRM's embedding pipeline vs. its bottom MLP);
        ``serial_time_s`` is the sum of all op times, an upper bound
        used for utilization bookkeeping.
        """
        if self.run_compiler_passes:
            from ..graph.passes import optimize

            graph = optimize(graph)
        timings: Dict[str, OpTiming] = {}
        mxu_busy = vpu_busy = 0.0
        for op in graph.nodes():
            timing = self.time_op(op)
            timings[op.name] = timing
            if op.unit == UNIT_MXU:
                mxu_busy += timing.compute_time_s
            elif op.unit not in (UNIT_MEMORY, UNIT_NETWORK):
                vpu_busy += timing.compute_time_s
        weights = {name: t.time_s for name, t in timings.items()}
        path = graph.critical_path(weights)
        total_time = sum(weights[name] for name in path)
        return SimulationResult(
            graph_name=graph.name,
            hardware=self.hw.name,
            total_time_s=total_time,
            serial_time_s=sum(weights.values()),
            total_flops=sum(t.flops for t in timings.values()),
            hbm_bytes=sum(t.hbm_bytes for t in timings.values()),
            cmem_bytes=sum(t.cmem_bytes for t in timings.values()),
            network_bytes=sum(op.network_bytes for op in graph.nodes()),
            param_bytes=graph.total_param_bytes,
            mxu_busy_s=mxu_busy,
            vpu_busy_s=vpu_busy,
            critical_path=path,
            op_timings=timings,
        )


def simulate(graph: OpGraph, hw: HardwareConfig) -> SimulationResult:
    """Convenience wrapper: simulate ``graph`` on ``hw``."""
    return PerformanceSimulator(hw).simulate(graph)
