"""Multi-chip cluster model: data-parallel training at pod scale.

The paper's targets train on 128 TPUv4 chips (Table 2) and the search
itself fans out over "hundreds of accelerators".  This module models
the data-parallel step time of a model on an ``N``-chip slice:

``step(N) = max(compute_step(per-chip batch), allreduce(gradients))``

with a ring all-reduce moving ``2 (N-1)/N`` of the gradient bytes over
each chip's interconnect.  Compute and communication overlap (gradient
buckets reduce while later layers still compute), hence the ``max``.
The resulting scaling curves expose the usual cliff: small per-chip
batches stop amortizing the all-reduce and scaling efficiency decays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..graph.ir import OpGraph
from .config import HardwareConfig
from .simulator import PerformanceSimulator

#: Builds the per-chip graph for a given per-chip batch size.
GraphBuilder = Callable[[int], OpGraph]


@dataclass(frozen=True)
class ClusterStep:
    """Data-parallel step accounting on one cluster size."""

    num_chips: int
    per_chip_batch: int
    compute_time_s: float
    allreduce_time_s: float

    @property
    def step_time_s(self) -> float:
        """Compute and gradient all-reduce overlap: the slower governs."""
        return max(self.compute_time_s, self.allreduce_time_s)

    @property
    def examples_per_second(self) -> float:
        return self.num_chips * self.per_chip_batch / self.step_time_s

    @property
    def communication_bound(self) -> bool:
        return self.allreduce_time_s > self.compute_time_s


def allreduce_time(param_bytes: float, num_chips: int, hw: HardwareConfig) -> float:
    """Ring all-reduce time for ``param_bytes`` of gradients."""
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    if num_chips == 1:
        return 0.0
    moved = 2.0 * (num_chips - 1) / num_chips * param_bytes
    return moved / hw.ici_bandwidth


class ClusterModel:
    """Times data-parallel training of one model on N-chip slices."""

    def __init__(self, hw: HardwareConfig, build_graph: GraphBuilder):
        self.hw = hw
        self.build_graph = build_graph
        self._simulator = PerformanceSimulator(hw)

    def step(self, num_chips: int, global_batch: int) -> ClusterStep:
        """One training step of ``global_batch`` split over ``num_chips``."""
        if num_chips < 1 or global_batch < num_chips:
            raise ValueError("need at least one example per chip")
        per_chip = global_batch // num_chips
        graph = self.build_graph(per_chip)
        result = self._simulator.simulate(graph)
        # Backward pass ~ 2x the forward compute (activations + weights).
        compute = 3.0 * result.total_time_s
        comm = allreduce_time(result.param_bytes, num_chips, self.hw)
        return ClusterStep(
            num_chips=num_chips,
            per_chip_batch=per_chip,
            compute_time_s=compute,
            allreduce_time_s=comm,
        )

    def scaling_curve(
        self, chip_counts: Sequence[int], global_batch: int
    ) -> List[ClusterStep]:
        """Weak-scaling sweep at a fixed global batch."""
        return [self.step(chips, global_batch) for chips in chip_counts]

    def scaling_efficiency(
        self, chip_counts: Sequence[int], global_batch: int
    ) -> List[float]:
        """Throughput relative to perfect linear scaling from the
        smallest slice in ``chip_counts``."""
        counts = sorted(set(chip_counts))
        if not counts:
            raise ValueError("chip_counts must be non-empty")
        steps = {c: self.step(c, global_batch) for c in counts}
        base = steps[counts[0]]
        base_rate = base.examples_per_second / base.num_chips
        return [
            steps[c].examples_per_second / (c * base_rate) for c in counts
        ]
