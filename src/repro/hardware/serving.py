"""Serving performance under a P99 latency target (Section 6.2.2).

The paper's serving metric is "the serving throughput under P99 target
latency": production serving batches requests, and larger batches raise
throughput until tail latency breaks the SLO.  This module measures
that trade-off on the hardware testbed — whose run-to-run noise gives
tail latency real meaning — and finds the largest batch (hence highest
throughput) that still meets the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..graph.ir import OpGraph
from .testbed import HardwareTestbed

#: Builds the serving graph for a given batch size.
GraphBuilder = Callable[[int], OpGraph]

DEFAULT_BATCH_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class ServingPoint:
    """Serving behaviour at one batch size."""

    batch_size: int
    p50_latency_s: float
    p99_latency_s: float

    @property
    def throughput(self) -> float:
        """Sustained queries/second at this batch size."""
        return self.batch_size / self.p50_latency_s


@dataclass(frozen=True)
class ServingReport:
    """Outcome of a serving-throughput optimization."""

    target_latency_s: float
    best: Optional[ServingPoint]
    points: tuple

    @property
    def feasible(self) -> bool:
        return self.best is not None

    @property
    def throughput_under_target(self) -> float:
        """QPS at the chosen operating point (0 when infeasible)."""
        return self.best.throughput if self.best else 0.0


def measure_serving_point(
    testbed: HardwareTestbed,
    build_graph: GraphBuilder,
    batch_size: int,
    num_measurements: int = 50,
) -> ServingPoint:
    """Latency percentiles at ``batch_size`` from repeated measurement."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if num_measurements < 2:
        raise ValueError("need at least two measurements for percentiles")
    graph = build_graph(batch_size)
    samples = np.array([testbed.measure_time(graph) for _ in range(num_measurements)])
    return ServingPoint(
        batch_size=batch_size,
        p50_latency_s=float(np.percentile(samples, 50)),
        p99_latency_s=float(np.percentile(samples, 99)),
    )


def optimize_serving_throughput(
    testbed: HardwareTestbed,
    build_graph: GraphBuilder,
    target_latency_s: float,
    batch_candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES,
    num_measurements: int = 50,
) -> ServingReport:
    """Highest-throughput batch size whose P99 latency meets the target.

    Batch candidates are probed in increasing order; the sweep stops at
    the first infeasible size (latency grows monotonically with batch).
    """
    if target_latency_s <= 0:
        raise ValueError("target latency must be positive")
    points = []
    best: Optional[ServingPoint] = None
    for batch in sorted(set(batch_candidates)):
        point = measure_serving_point(testbed, build_graph, batch, num_measurements)
        points.append(point)
        if point.p99_latency_s <= target_latency_s:
            if best is None or point.throughput > best.throughput:
                best = point
        else:
            break
    return ServingReport(
        target_latency_s=target_latency_s, best=best, points=tuple(points)
    )
