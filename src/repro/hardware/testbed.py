"""Hardware testbed — the stand-in for real-accelerator measurement.

The paper fine-tunes its performance model on ~20 measurements taken on
real TPUs/GPUs (Section 6.2.2).  We have no TPUs, so the testbed wraps
the analytical simulator and layers on the effects a real machine shows
but a clean roofline model misses:

* a systematic calibration scale (real runtimes are slower than the
  analytic bound — compiler inefficiencies, pipeline bubbles);
* a mild super-linear term (large models suffer more from memory
  pressure and scheduling);
* per-op launch/fusion overhead beyond the simulator's constant;
* run-to-run measurement noise.

Because the gap is systematic-plus-smooth, a handful of measurements is
enough to fine-tune the pretrained performance model onto it — exactly
the property Table 1 of the paper demonstrates (NRMSE 14.7%–42.9%
before fine-tuning, 1.05%–3.08% after).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph.ir import OpGraph
from .config import HardwareConfig
from .simulator import PerformanceSimulator, SimulationResult


@dataclass(frozen=True)
class TestbedCalibration:
    """Systematic simulator-vs-hardware gap parameters."""

    __test__ = False  # not a pytest test class despite the name

    scale: float = 1.22  # multiplicative optimism of the simulator
    exponent: float = 1.03  # super-linear growth with runtime
    per_op_overhead_s: float = 2.5e-6  # extra launch overhead per op
    noise_sigma: float = 0.01  # lognormal run-to-run noise


class HardwareTestbed:
    """Measures graphs "on hardware" (simulator + systematic gap + noise)."""

    def __init__(
        self,
        hw: HardwareConfig,
        calibration: Optional[TestbedCalibration] = None,
        seed: int = 0,
    ):
        self.hw = hw
        self.calibration = calibration or TestbedCalibration()
        self._rng = np.random.default_rng(seed)
        self._simulator = PerformanceSimulator(hw)

    def simulate(self, graph: OpGraph) -> SimulationResult:
        """Clean simulator result (what pretraining data is made from)."""
        return self._simulator.simulate(graph)

    def deterministic_time(self, graph: OpGraph) -> float:
        """Hardware time without measurement noise (for analysis)."""
        result = self._simulator.simulate(graph)
        return self._systematic(result, len(graph))

    def measure_time(self, graph: OpGraph) -> float:
        """One noisy wall-clock measurement, seconds."""
        noise = float(np.exp(self._rng.normal(0.0, self.calibration.noise_sigma)))
        return self.deterministic_time(graph) * noise

    def measure_throughput(self, graph: OpGraph, examples_per_step: int) -> float:
        """Examples/second under one measurement."""
        return examples_per_step / self.measure_time(graph)

    # ------------------------------------------------------------------
    def _systematic(self, result: SimulationResult, num_ops: int) -> float:
        cal = self.calibration
        base = result.total_time_s
        # Express the super-linear term relative to a 1 ms anchor so the
        # exponent is scale-free across model sizes.
        anchor = 1e-3
        shaped = anchor * (base / anchor) ** cal.exponent
        return cal.scale * shaped + num_ops * cal.per_op_overhead_s
