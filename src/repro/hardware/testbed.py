"""Hardware testbed — the stand-in for real-accelerator measurement.

The paper fine-tunes its performance model on ~20 measurements taken on
real TPUs/GPUs (Section 6.2.2).  We have no TPUs, so the testbed wraps
the analytical simulator and layers on the effects a real machine shows
but a clean roofline model misses:

* a systematic calibration scale (real runtimes are slower than the
  analytic bound — compiler inefficiencies, pipeline bubbles);
* a mild super-linear term (large models suffer more from memory
  pressure and scheduling);
* per-op launch/fusion overhead beyond the simulator's constant;
* run-to-run measurement noise.

Because the gap is systematic-plus-smooth, a handful of measurements is
enough to fine-tune the pretrained performance model onto it — exactly
the property Table 1 of the paper demonstrates (NRMSE 14.7%–42.9%
before fine-tuning, 1.05%–3.08% after).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..graph.ir import OpGraph
from .config import HardwareConfig
from .simulator import PerformanceSimulator, SimulationResult


class MeasurementError(RuntimeError):
    """A hardware measurement failed after exhausting its retries."""


class MeasurementTimeout(MeasurementError):
    """One measurement attempt exceeded its per-attempt deadline."""


@dataclass(frozen=True)
class MeasurementPolicy:
    """Retry/timeout policy for on-hardware measurements.

    Real fleets lose measurements to preempted machines and hung
    runs; a measurement is retried up to ``max_attempts`` times, each
    attempt bounded by ``timeout_s`` wall clock (None = unbounded),
    with exponential backoff between attempts.
    """

    max_attempts: int = 3
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class Measurement:
    """One successful measurement plus how hard it was to obtain."""

    time_s: float
    attempts: int  #: attempts consumed, including the successful one
    timed_out: int  #: attempts discarded for exceeding the deadline

    @property
    def retries(self) -> int:
        return self.attempts - 1


@dataclass(frozen=True)
class TestbedCalibration:
    """Systematic simulator-vs-hardware gap parameters."""

    __test__ = False  # not a pytest test class despite the name

    scale: float = 1.22  # multiplicative optimism of the simulator
    exponent: float = 1.03  # super-linear growth with runtime
    per_op_overhead_s: float = 2.5e-6  # extra launch overhead per op
    noise_sigma: float = 0.01  # lognormal run-to-run noise


class HardwareTestbed:
    """Measures graphs "on hardware" (simulator + systematic gap + noise)."""

    def __init__(
        self,
        hw: HardwareConfig,
        calibration: Optional[TestbedCalibration] = None,
        seed: int = 0,
        policy: Optional[MeasurementPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
        sleep_fn: Callable[[float], None] = time.sleep,
        telemetry: Optional[object] = None,
    ):
        self.hw = hw
        self.calibration = calibration or TestbedCalibration()
        self.policy = policy or MeasurementPolicy()
        self._rng = np.random.default_rng(seed)
        self._simulator = PerformanceSimulator(hw)
        self._clock = clock
        self._sleep = sleep_fn
        #: lifetime retry/timeout counters across all measure() calls
        self.total_retries = 0
        self.total_timeouts = 0
        #: optional shared telemetry; ``testbed.*`` counters are churn
        #: scoped (measurement churn is real work, never rolled back)
        self.telemetry = telemetry

    def attach_telemetry(self, telemetry: object) -> None:
        """Attach a telemetry handle unless one is already set."""
        if self.telemetry is None:
            self.telemetry = telemetry

    def simulate(self, graph: OpGraph) -> SimulationResult:
        """Clean simulator result (what pretraining data is made from)."""
        return self._simulator.simulate(graph)

    def deterministic_time(self, graph: OpGraph) -> float:
        """Hardware time without measurement noise (for analysis)."""
        result = self._simulator.simulate(graph)
        return self._systematic(result, len(graph))

    def measure_time(self, graph: OpGraph) -> float:
        """One noisy wall-clock measurement, seconds."""
        noise = float(np.exp(self._rng.normal(0.0, self.calibration.noise_sigma)))
        return self.deterministic_time(graph) * noise

    def measure_throughput(self, graph: OpGraph, examples_per_step: int) -> float:
        """Examples/second under one measurement."""
        return examples_per_step / self.measure_time(graph)

    def measure(self, graph: OpGraph) -> Measurement:
        """One measurement under the retry/timeout policy.

        Each attempt is timed against ``policy.timeout_s``; transient
        attempt failures and timeouts are discarded and retried (with
        backoff) up to ``policy.max_attempts``, after which
        :class:`MeasurementError` carries the last failure.  An attempt
        that raises a *non-retryable* error — a deterministic bug such
        as a ``TypeError`` from a bad config (see
        :mod:`repro.runtime.errors`) — re-raises immediately instead of
        failing identically ``max_attempts`` times.  The result surfaces
        how many attempts and timeouts the measurement cost.
        """
        # Deferred import: hardware must stay importable without the
        # runtime package's transitive (core/search) dependencies.
        from ..runtime.errors import is_retryable

        policy = self.policy
        telemetry = self.telemetry
        timed_out = 0
        last_error: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self.total_retries += 1
                if telemetry is not None:
                    telemetry.counter("testbed.retries").inc()
                backoff = policy.backoff_for(attempt - 1)
                if backoff > 0:
                    self._sleep(backoff)
            started = self._clock()
            try:
                value = self.measure_time(graph)
            except Exception as error:  # noqa: BLE001 - classified below
                retryable = is_retryable(error)
                if telemetry is not None:
                    telemetry.counter("testbed.failures").inc(
                        error=type(error).__name__,
                        retryable=str(retryable).lower(),
                    )
                if not retryable:
                    raise
                last_error = error
                continue
            elapsed = self._clock() - started
            if policy.timeout_s is not None and elapsed > policy.timeout_s:
                timed_out += 1
                self.total_timeouts += 1
                if telemetry is not None:
                    telemetry.counter("testbed.timeouts").inc()
                last_error = MeasurementTimeout(
                    f"measurement attempt {attempt} took {elapsed:.3f}s "
                    f"(deadline {policy.timeout_s:.3f}s)"
                )
                continue
            if telemetry is not None:
                telemetry.counter("testbed.measurements").inc()
            return Measurement(time_s=value, attempts=attempt, timed_out=timed_out)
        if telemetry is not None:
            telemetry.counter("testbed.exhausted").inc()
        raise MeasurementError(
            f"measurement failed after {policy.max_attempts} attempts "
            f"({timed_out} timed out)"
        ) from last_error

    # ------------------------------------------------------------------
    def _systematic(self, result: SimulationResult, num_ops: int) -> float:
        cal = self.calibration
        base = result.total_time_s
        # Express the super-linear term relative to a 1 ms anchor so the
        # exponent is scale-free across model sizes.
        anchor = 1e-3
        shaped = anchor * (base / anchor) ** cal.exponent
        return cal.scale * shaped + num_ops * cal.per_op_overhead_s
