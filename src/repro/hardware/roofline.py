"""Roofline-model helpers (Figure 4b of the paper).

The roofline model bounds an op's attainable compute rate by
``min(peak_flops, operational_intensity * memory_bandwidth)``.  These
helpers evaluate that bound for an :class:`~repro.graph.ir.OpNode` on a
:class:`~repro.hardware.config.HardwareConfig`, including the
matrix-unit padding efficiency that creates the performance cliffs the
paper's search spaces are designed around.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..graph.ir import OpNode, UNIT_MXU
from .config import HardwareConfig


def tile_efficiency(dim: int, tile: int) -> float:
    """Fraction of a ``tile``-wide unit kept busy by a ``dim``-long axis.

    A systolic array processes axes in multiples of its tile edge; a
    dimension of 100 on a 128-wide MXU wastes 28/128 of the lanes.
    """
    if dim <= 0:
        raise ValueError("dimension must be positive")
    padded = math.ceil(dim / tile) * tile
    return dim / padded


def mxu_efficiency(dims: Sequence[int], hw: HardwareConfig) -> float:
    """Combined padding efficiency of an (m, k, n) matmul view."""
    if not dims:
        return 1.0
    tiles = (hw.batch_tile,) + (hw.mxu_tile,) * (len(dims) - 1)
    eff = 1.0
    for dim, tile in zip(dims, tiles):
        eff *= tile_efficiency(dim, tile)
    return eff


def peak_compute_rate(op: OpNode, hw: HardwareConfig) -> float:
    """Attainable FLOP/s for ``op`` ignoring memory (the flat roof)."""
    if op.unit == UNIT_MXU:
        return hw.peak_matrix_flops * mxu_efficiency(op.dims, hw)
    return hw.peak_vector_flops


@dataclass(frozen=True)
class RooflinePoint:
    """One op placed on the roofline chart."""

    name: str
    operational_intensity: float  # FLOPs / byte
    attained_flops: float  # FLOP/s under the roofline bound
    compute_bound: bool

    @property
    def attained_tflops(self) -> float:
        return self.attained_flops / 1e12


def roofline_point(op: OpNode, hw: HardwareConfig) -> RooflinePoint:
    """Place ``op`` on the HBM roofline of ``hw``."""
    intensity = op.operational_intensity
    roof = peak_compute_rate(op, hw)
    memory_rate = intensity * hw.hbm_bandwidth
    attained = min(roof, memory_rate) if intensity > 0 else 0.0
    return RooflinePoint(
        name=op.name,
        operational_intensity=intensity,
        attained_flops=attained,
        compute_bound=bool(intensity > 0 and roof <= memory_rate),
    )


def graph_roofline(
    flops: float, total_bytes: float, hw: HardwareConfig
) -> Tuple[float, bool]:
    """Roofline bound for an aggregate (whole-model) workload.

    Returns ``(attained_flops, compute_bound)``.
    """
    if total_bytes <= 0:
        return (hw.peak_matrix_flops, True)
    intensity = flops / total_bytes
    memory_rate = intensity * hw.hbm_bandwidth
    if memory_rate >= hw.peak_matrix_flops:
        return (hw.peak_matrix_flops, True)
    return (memory_rate, False)
