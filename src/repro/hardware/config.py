"""Hardware configurations for the accelerators the paper targets.

The numbers follow the public sources the paper cites — the TPUv4
system-architecture documentation, the TPUv4i ISCA'21 paper, and the
NVIDIA V100 whitepaper — rounded where only ranges are public.  The
simulator consumes these as the roofline and power parameters; the NAS
itself only ever sees the resulting performance numbers, so moderate
inaccuracies shift absolute latencies without changing which
architectural trade-offs win (the property the reproduction preserves).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class HardwareConfig:
    """Roofline + power description of one accelerator chip."""

    name: str
    #: Peak matrix-unit throughput in TFLOP/s (bf16 / fp16 tensor math).
    peak_matrix_tflops: float
    #: Peak vector-unit throughput in TFLOP/s.
    peak_vector_tflops: float
    #: Off-chip (HBM) bandwidth in GB/s.
    hbm_bandwidth_gbs: float
    #: HBM capacity in GB.
    hbm_capacity_gb: float
    #: On-chip scratchpad (CMEM / L2) bandwidth in GB/s.
    cmem_bandwidth_gbs: float
    #: On-chip scratchpad capacity in MB.
    cmem_capacity_mb: float
    #: Per-chip interconnect (ICI / NVLink) bandwidth in GB/s.
    ici_bandwidth_gbs: float
    #: Matrix-unit native tile edge (128 for TPU MXUs).
    mxu_tile: int = 128
    #: Granularity of the streaming (batch) dimension.
    batch_tile: int = 8
    #: Fixed dispatch overhead per op, seconds.
    op_overhead_s: float = 1.0e-6
    #: Chip idle power in watts.
    idle_power_w: float = 60.0
    #: Chip maximum power in watts.
    max_power_w: float = 200.0

    def __post_init__(self) -> None:
        positive = (
            "peak_matrix_tflops",
            "peak_vector_tflops",
            "hbm_bandwidth_gbs",
            "hbm_capacity_gb",
            "cmem_bandwidth_gbs",
            "cmem_capacity_mb",
            "ici_bandwidth_gbs",
        )
        for label in positive:
            if getattr(self, label) <= 0:
                raise ValueError(f"{label} must be positive")
        if self.max_power_w <= self.idle_power_w:
            raise ValueError("max power must exceed idle power")

    # Derived quantities -------------------------------------------------
    @property
    def peak_matrix_flops(self) -> float:
        return self.peak_matrix_tflops * 1e12

    @property
    def peak_vector_flops(self) -> float:
        return self.peak_vector_tflops * 1e12

    @property
    def hbm_bandwidth(self) -> float:
        return self.hbm_bandwidth_gbs * 1e9

    @property
    def cmem_bandwidth(self) -> float:
        return self.cmem_bandwidth_gbs * 1e9

    @property
    def ici_bandwidth(self) -> float:
        return self.ici_bandwidth_gbs * 1e9

    @property
    def cmem_capacity_bytes(self) -> float:
        return self.cmem_capacity_mb * 1e6

    @property
    def ridge_intensity(self) -> float:
        """Operational intensity (FLOPs/byte) at the HBM roofline ridge."""
        return self.peak_matrix_flops / self.hbm_bandwidth

    def with_overrides(self, **kwargs) -> "HardwareConfig":
        """A copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)

    def fits_memory(self, resident_bytes: float) -> bool:
        """Whether a model's resident state fits this chip's HBM.

        Memory capacity is one of the paper's launch constraints; a
        model whose parameters exceed HBM cannot be served on a single
        chip regardless of its speed.
        """
        return resident_bytes <= self.hbm_capacity_gb * 1e9


#: TPUv4 training chip: 275 TFLOP/s bf16, 1.2 TB/s HBM, 128 MB CMEM.
TPU_V4 = HardwareConfig(
    name="tpu_v4",
    peak_matrix_tflops=275.0,
    peak_vector_tflops=8.6,
    hbm_bandwidth_gbs=1228.0,
    hbm_capacity_gb=32.0,
    cmem_bandwidth_gbs=6140.0,
    cmem_capacity_mb=128.0,
    ici_bandwidth_gbs=268.0,
    idle_power_w=90.0,
    max_power_w=275.0,
)

#: TPUv4i inference chip (ISCA'21): 138 TFLOP/s bf16, 614 GB/s HBM, 144 MB CMEM.
TPU_V4I = HardwareConfig(
    name="tpu_v4i",
    peak_matrix_tflops=138.0,
    peak_vector_tflops=4.3,
    hbm_bandwidth_gbs=614.0,
    hbm_capacity_gb=8.0,
    cmem_bandwidth_gbs=3070.0,
    cmem_capacity_mb=144.0,
    ici_bandwidth_gbs=100.0,
    idle_power_w=55.0,
    max_power_w=175.0,
)

#: NVIDIA V100: 125 TFLOP/s fp16 tensor cores, 900 GB/s HBM2, 6 MB L2.
GPU_V100 = HardwareConfig(
    name="gpu_v100",
    peak_matrix_tflops=125.0,
    peak_vector_tflops=15.7,
    hbm_bandwidth_gbs=900.0,
    hbm_capacity_gb=16.0,
    cmem_bandwidth_gbs=2500.0,
    cmem_capacity_mb=6.0,
    ici_bandwidth_gbs=150.0,
    mxu_tile=16,
    idle_power_w=70.0,
    max_power_w=300.0,
)

PLATFORMS: Dict[str, HardwareConfig] = {
    cfg.name: cfg for cfg in (TPU_V4, TPU_V4I, GPU_V100)
}

#: Registry-derived canonical names (what error messages enumerate).
PLATFORM_NAMES = tuple(PLATFORMS)

#: Common shorthands accepted by :func:`platform`, normalized lowercase.
PLATFORM_ALIASES: Dict[str, str] = {
    "tpuv4": "tpu_v4",
    "v4": "tpu_v4",
    "tpuv4i": "tpu_v4i",
    "v4i": "tpu_v4i",
    "v100": "gpu_v100",
    "gpuv100": "gpu_v100",
    "volta": "gpu_v100",
}


def platform(name) -> HardwareConfig:
    """Look up a built-in platform by name.

    Accepts canonical registry names, case-insensitive spellings, the
    aliases in :data:`PLATFORM_ALIASES`, or a :class:`HardwareConfig`
    passed through unchanged (so call sites can take either).  Unknown
    names enumerate the registered platforms, mirroring the
    ``resolve_backend`` error contract.
    """
    if isinstance(name, HardwareConfig):
        return name
    key = str(name).strip().lower()
    key = PLATFORM_ALIASES.get(key, key)
    try:
        return PLATFORMS[key]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; expected one of {PLATFORM_NAMES} "
            f"(aliases: {sorted(PLATFORM_ALIASES)})"
        ) from None
