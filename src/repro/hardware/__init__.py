"""Hardware substrate: configs, roofline, simulator, power, testbed."""

from .cluster import ClusterModel, ClusterStep, allreduce_time
from .config import (
    GPU_V100,
    HardwareConfig,
    PLATFORM_ALIASES,
    PLATFORM_NAMES,
    PLATFORMS,
    TPU_V4,
    TPU_V4I,
    platform,
)
from .power import PowerReport, power_report, utilizations
from .roofline import (
    RooflinePoint,
    graph_roofline,
    mxu_efficiency,
    peak_compute_rate,
    roofline_point,
    tile_efficiency,
)
from .serving import (
    ServingPoint,
    ServingReport,
    measure_serving_point,
    optimize_serving_throughput,
)
from .simulator import OpTiming, PerformanceSimulator, SimulationResult, simulate
from .testbed import (
    HardwareTestbed,
    Measurement,
    MeasurementError,
    MeasurementPolicy,
    MeasurementTimeout,
    TestbedCalibration,
)
from .whatif import (
    ResourceSensitivity,
    bottleneck,
    resource_sensitivity,
    sensitivity_profile,
)

__all__ = [
    "ClusterModel",
    "ClusterStep",
    "GPU_V100",
    "allreduce_time",
    "HardwareConfig",
    "HardwareTestbed",
    "Measurement",
    "MeasurementError",
    "MeasurementPolicy",
    "MeasurementTimeout",
    "OpTiming",
    "PLATFORM_ALIASES",
    "PLATFORM_NAMES",
    "PLATFORMS",
    "PerformanceSimulator",
    "PowerReport",
    "ResourceSensitivity",
    "RooflinePoint",
    "ServingPoint",
    "ServingReport",
    "SimulationResult",
    "TPU_V4",
    "TPU_V4I",
    "TestbedCalibration",
    "graph_roofline",
    "measure_serving_point",
    "mxu_efficiency",
    "optimize_serving_throughput",
    "peak_compute_rate",
    "platform",
    "power_report",
    "roofline_point",
    "bottleneck",
    "resource_sensitivity",
    "sensitivity_profile",
    "simulate",
    "tile_efficiency",
    "utilizations",
]
