"""Accelerator power and energy model (Section 7.2 / Figure 9).

The model splits chip power into an idle floor plus dynamic components
proportional to the utilization of each subsystem:

``P = idle + u_mxu*B_mxu + u_vpu*B_vpu + u_hbm*B_hbm + u_cmem*B_cmem + u_net*B_net``

where ``u_x`` is the fraction-of-peak utilization of subsystem ``x``
over the run and ``B_x`` its share of the dynamic power budget
(``max_power - idle``).  HBM's budget share is much larger than CMEM's
(off-chip DRAM I/O costs far more energy per byte than on-chip SRAM),
which is what reproduces the paper's counter-intuitive Figure 9 result:
CoAtNet-H5 raises total memory bandwidth by moving traffic *into* CMEM
while cutting HBM traffic and MXU occupancy, so the faster model draws
*less* power.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import HardwareConfig
from .simulator import SimulationResult

#: Dynamic-power budget split across subsystems (fractions sum to 1).
MXU_BUDGET = 0.52
VPU_BUDGET = 0.08
HBM_BUDGET = 0.28
CMEM_BUDGET = 0.06
NETWORK_BUDGET = 0.06


@dataclass(frozen=True)
class PowerReport:
    """Power/energy outcome of one simulated run."""

    hardware: str
    time_s: float
    power_w: float
    energy_j: float
    mxu_utilization: float
    hbm_utilization: float
    cmem_utilization: float

    @property
    def average_power_fraction(self) -> float:
        return self.power_w  # kept for symmetry; watts already absolute


def utilizations(result: SimulationResult, hw: HardwareConfig) -> dict:
    """Fraction-of-peak utilization of each subsystem over the run."""
    t = result.total_time_s
    if t <= 0:
        return {"mxu": 0.0, "vpu": 0.0, "hbm": 0.0, "cmem": 0.0, "network": 0.0}
    return {
        "mxu": min(1.0, result.achieved_flops / hw.peak_matrix_flops),
        "vpu": min(1.0, result.vpu_busy_s / t),
        "hbm": min(1.0, result.hbm_bandwidth_used / hw.hbm_bandwidth),
        "cmem": min(1.0, result.cmem_bandwidth_used / hw.cmem_bandwidth),
        "network": min(1.0, (result.network_bytes / t) / hw.ici_bandwidth),
    }


def power_report(result: SimulationResult, hw: HardwareConfig) -> PowerReport:
    """Average power and total energy for one simulated execution."""
    util = utilizations(result, hw)
    dynamic_budget = hw.max_power_w - hw.idle_power_w
    dynamic = dynamic_budget * (
        util["mxu"] * MXU_BUDGET
        + util["vpu"] * VPU_BUDGET
        + util["hbm"] * HBM_BUDGET
        + util["cmem"] * CMEM_BUDGET
        + util["network"] * NETWORK_BUDGET
    )
    power = hw.idle_power_w + dynamic
    return PowerReport(
        hardware=hw.name,
        time_s=result.total_time_s,
        power_w=power,
        energy_j=power * result.total_time_s,
        mxu_utilization=util["mxu"],
        hbm_utilization=util["hbm"],
        cmem_utilization=util["cmem"],
    )
