"""Hardware what-if analysis: late binding of models to future chips.

The paper's conclusion (Section 9) pitches H2O-NAS as an architect's
tool: hardware is committed years before the models that will run on
it, so architects want to know *which resources a workload actually
leans on* and re-search models once silicon lands.  This module
answers the first question analytically: scale one hardware resource
at a time and report the step-time elasticity of a model — near 1 for
the bottleneck resource, near 0 for slack ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..graph.ir import OpGraph
from .config import HardwareConfig
from .simulator import PerformanceSimulator

#: Scalable resources and the HardwareConfig field backing each.
RESOURCE_FIELDS: Dict[str, str] = {
    "matrix_unit": "peak_matrix_tflops",
    "vector_unit": "peak_vector_tflops",
    "hbm_bandwidth": "hbm_bandwidth_gbs",
    "cmem_bandwidth": "cmem_bandwidth_gbs",
    "interconnect": "ici_bandwidth_gbs",
}


@dataclass(frozen=True)
class ResourceSensitivity:
    """Step-time response of one model to one resource."""

    resource: str
    scale: float  # resource multiplier applied
    baseline_time_s: float
    scaled_time_s: float

    @property
    def speedup(self) -> float:
        return self.baseline_time_s / self.scaled_time_s

    @property
    def elasticity(self) -> float:
        """Fractional speedup per fractional resource increase.

        1.0 means the model rides this resource (its bottleneck);
        0.0 means the resource is slack.
        """
        if self.scale == 1.0:
            return 0.0
        return (self.speedup - 1.0) / (self.scale - 1.0)


def resource_sensitivity(
    graph: OpGraph,
    hw: HardwareConfig,
    resource: str,
    scale: float = 2.0,
) -> ResourceSensitivity:
    """Step-time response of ``graph`` to scaling one ``resource``."""
    try:
        field = RESOURCE_FIELDS[resource]
    except KeyError:
        raise ValueError(
            f"unknown resource {resource!r}; expected {sorted(RESOURCE_FIELDS)}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    baseline_time = PerformanceSimulator(hw).simulate(graph).total_time_s
    scaled_hw = hw.with_overrides(**{field: getattr(hw, field) * scale})
    scaled_time = PerformanceSimulator(scaled_hw).simulate(graph).total_time_s
    return ResourceSensitivity(
        resource=resource,
        scale=scale,
        baseline_time_s=baseline_time,
        scaled_time_s=scaled_time,
    )


def sensitivity_profile(
    graph: OpGraph,
    hw: HardwareConfig,
    resources: Sequence[str] = tuple(RESOURCE_FIELDS),
    scale: float = 2.0,
) -> Dict[str, ResourceSensitivity]:
    """Elasticity of every resource for one model (its bottleneck map)."""
    return {
        resource: resource_sensitivity(graph, hw, resource, scale)
        for resource in resources
    }


def bottleneck(graph: OpGraph, hw: HardwareConfig, scale: float = 2.0) -> str:
    """The resource whose scaling helps the model most."""
    profile = sensitivity_profile(graph, hw, scale=scale)
    return max(profile.values(), key=lambda s: s.elasticity).resource
