"""Operator-graph intermediate representation.

The paper's in-house performance simulator consumes a TensorFlow/HLO
graph of the target model.  Our equivalent is :class:`OpGraph` — a DAG
of :class:`OpNode` objects, each carrying the quantities a roofline
simulator needs: FLOPs, activation bytes in/out, parameter bytes, and
which hardware unit executes the op (matrix unit, vector unit, memory
system, or chip-to-chip network).

Model builders in :mod:`repro.models` lower architecture configurations
to these graphs; :mod:`repro.hardware.simulator` walks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

#: Execution units an op can be bound to.
UNIT_MXU = "mxu"  # matrix/tensor unit (systolic array / tensor cores)
UNIT_VPU = "vpu"  # vector processing unit
UNIT_MEMORY = "memory"  # pure data movement (e.g. embedding gather)
UNIT_NETWORK = "network"  # inter-chip communication (all-to-all etc.)

VALID_UNITS = frozenset({UNIT_MXU, UNIT_VPU, UNIT_MEMORY, UNIT_NETWORK})


@dataclass
class OpNode:
    """One operator with its resource footprint.

    Attributes:
        name: unique node id within its graph.
        op_type: semantic kind (``conv2d``, ``matmul``, ...), used for
            reporting and for unit-specific simulator behaviour.
        flops: total floating-point operations (multiply-add counted
            as two FLOPs, matching the paper's convention).
        bytes_in: activation bytes read.
        bytes_out: activation bytes written.
        param_bytes: parameter bytes streamed from off-chip memory.
        unit: execution unit (one of :data:`VALID_UNITS`).
        dims: characteristic tensor dimensions used for matrix-unit
            padding-efficiency modelling (e.g. ``(m, k, n)``).
        network_bytes: bytes crossing the chip interconnect.
    """

    name: str
    op_type: str
    flops: float = 0.0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    param_bytes: float = 0.0
    unit: str = UNIT_VPU
    dims: Tuple[int, ...] = ()
    network_bytes: float = 0.0
    attrs: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.unit not in VALID_UNITS:
            raise ValueError(f"unknown unit {self.unit!r} for op {self.name!r}")
        for label in ("flops", "bytes_in", "bytes_out", "param_bytes", "network_bytes"):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} of op {self.name!r} must be non-negative")

    @property
    def total_bytes(self) -> float:
        """All bytes moved by this op (activations + parameters)."""
        return self.bytes_in + self.bytes_out + self.param_bytes

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte moved — the roofline x-axis."""
        total = self.total_bytes
        return self.flops / total if total > 0 else 0.0


class OpGraph:
    """A DAG of :class:`OpNode` with explicit dependency edges."""

    def __init__(self, name: str = "model"):
        self.name = name
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, node: OpNode, deps: Iterable[str] = ()) -> OpNode:
        """Add ``node``, depending on the named predecessor ops."""
        if node.name in self._graph:
            raise ValueError(f"duplicate op name {node.name!r}")
        self._graph.add_node(node.name, op=node)
        for dep in deps:
            if dep not in self._graph:
                raise KeyError(f"dependency {dep!r} not in graph")
            self._graph.add_edge(dep, node.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_node(node.name)
            raise ValueError(f"adding op {node.name!r} would create a cycle")
        return node

    def chain(self, nodes: Iterable[OpNode], after: Optional[str] = None) -> Optional[str]:
        """Add ``nodes`` in sequence, each depending on the previous.

        Returns the name of the last node added (or ``after`` when
        ``nodes`` is empty), convenient for threading builders.
        """
        last = after
        for node in nodes:
            self.add(node, deps=[last] if last is not None else [])
            last = node.name
        return last

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def node(self, name: str) -> OpNode:
        return self._graph.nodes[name]["op"]

    def nodes(self) -> List[OpNode]:
        """All ops in a topological order."""
        return [self._graph.nodes[n]["op"] for n in nx.topological_sort(self._graph)]

    def successors(self, name: str) -> List[str]:
        return list(self._graph.successors(name))

    def predecessors(self, name: str) -> List[str]:
        return list(self._graph.predecessors(name))

    def networkx(self) -> nx.DiGraph:
        """The underlying networkx graph (treat as read-only)."""
        return self._graph

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def total_flops(self) -> float:
        return sum(op.flops for op in self.nodes())

    @property
    def total_param_bytes(self) -> float:
        return sum(op.param_bytes for op in self.nodes())

    @property
    def total_bytes(self) -> float:
        return sum(op.total_bytes for op in self.nodes())

    def critical_path(self, weights: Dict[str, float]) -> List[str]:
        """Longest path through the DAG under per-node ``weights``.

        ``weights`` maps op name -> execution time.  Parallel branches
        (e.g. the embedding pipeline vs. the bottom MLP of a DLRM)
        contribute only their slower arm, matching the paper's
        ``MAX(embedding time, DNN time)`` step-time accounting.
        """
        best_cost: Dict[str, float] = {}
        best_pred: Dict[str, Optional[str]] = {}
        order = list(nx.topological_sort(self._graph))
        for name in order:
            preds = list(self._graph.predecessors(name))
            if preds:
                pred = max(preds, key=lambda p: best_cost[p])
                base = best_cost[pred]
            else:
                pred, base = None, 0.0
            best_cost[name] = base + weights[name]
            best_pred[name] = pred
        if not order:
            return []
        tail = max(order, key=lambda n: best_cost[n])
        path = [tail]
        while best_pred[path[-1]] is not None:
            path.append(best_pred[path[-1]])
        return list(reversed(path))
