"""Compiler-style optimization passes over operator graphs.

The paper's performance simulator "simulates compiler optimizations
such as op/layer fusion" when fed an unoptimized TensorFlow graph
(Section 6.2.3).  These passes replicate the two XLA behaviours that
matter for roofline timing:

* **elementwise fusion** — a pointwise op (activation, add, mul,
  batch-norm apply, ...) with a single producer and a single consumer
  of the same tensor never materializes its operand: its input read
  and the producer's output write cancel, and its output write merges
  into the producer.  This removes the dominant memory traffic of
  activation functions.
* **dead-op elimination** — ops with zero cost (no FLOPs, no bytes)
  that can appear after other rewrites are dropped, splicing their
  edges.

Passes return a *new* graph; inputs are never mutated.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Set

from .ir import OpGraph, OpNode, UNIT_VPU

#: Pointwise op types eligible for producer fusion.
FUSABLE_OP_TYPES = frozenset(
    {"elementwise", "activation", "add", "mul", "sigmoid", "pooling_sum"}
)


def _rebuild(graph: OpGraph, drop: Set[str], rewrite: Dict[str, OpNode]) -> OpGraph:
    """Copy ``graph`` without ``drop`` nodes, applying node ``rewrite``s.

    Edges through dropped nodes are spliced (predecessors connect to
    successors).
    """
    out = OpGraph(graph.name)
    # Map every node to its surviving ancestor set.
    resolved: Dict[str, List[str]] = {}

    def surviving_deps(name: str) -> List[str]:
        deps: List[str] = []
        for pred in graph.predecessors(name):
            if pred in drop:
                deps.extend(resolved[pred])
            else:
                deps.append(pred)
        # Preserve order, drop duplicates.
        seen: Set[str] = set()
        unique = []
        for dep in deps:
            if dep not in seen:
                seen.add(dep)
                unique.append(dep)
        return unique

    for op in graph.nodes():
        deps = surviving_deps(op.name)
        if op.name in drop:
            resolved[op.name] = deps
            continue
        node = rewrite.get(op.name, op)
        out.add(node, deps=deps)
    return out


def fuse_elementwise(graph: OpGraph) -> OpGraph:
    """Fuse single-consumer pointwise ops into their producers.

    The fused producer absorbs the pointwise FLOPs (they run on the
    vector unit concurrently with the producer's epilogue) and keeps
    only the final output write: the intermediate tensor's write+read
    round-trip disappears.
    """
    drop: Set[str] = set()
    rewrite: Dict[str, OpNode] = {}
    for op in graph.nodes():
        if op.op_type not in FUSABLE_OP_TYPES:
            continue
        preds = graph.predecessors(op.name)
        if len(preds) != 1:
            continue
        producer_name = preds[0]
        if producer_name in drop:
            continue  # one fusion per producer per pass
        if len(graph.successors(producer_name)) != 1:
            continue  # producer output is reused elsewhere: must materialize
        producer = rewrite.get(producer_name, graph.node(producer_name))
        if producer.op_type in ("embedding_lookup",):
            continue  # gathers keep their own memory model
        fused = replace(
            producer,
            flops=producer.flops + op.flops,
            bytes_out=op.bytes_out,
            attrs={**producer.attrs, "fused_ops": producer.attrs.get("fused_ops", 0) + 1},
        )
        rewrite[producer_name] = fused
        drop.add(op.name)
    if not drop:
        return graph
    return _rebuild(graph, drop, rewrite)


def eliminate_dead_ops(graph: OpGraph) -> OpGraph:
    """Drop zero-cost ops (no FLOPs, no bytes, no network traffic)."""
    drop = {
        op.name
        for op in graph.nodes()
        if op.flops == 0
        and op.total_bytes == 0
        and op.network_bytes == 0
        and (graph.predecessors(op.name) or graph.successors(op.name))
    }
    # Never drop every node.
    if len(drop) == len(graph):
        drop.pop()
    if not drop:
        return graph
    return _rebuild(graph, drop, {})


def optimize(graph: OpGraph, max_iterations: int = 4) -> OpGraph:
    """Run all passes to a fixed point (bounded by ``max_iterations``)."""
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    current = graph
    for _ in range(max_iterations):
        fused = eliminate_dead_ops(fuse_elementwise(current))
        if len(fused) == len(current):
            return fused
        current = fused
    return current
