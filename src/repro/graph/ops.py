"""Constructors for common ML operators with their resource footprints.

FLOP and byte accounting conventions:

* one multiply-accumulate = 2 FLOPs (the paper's convention — e.g. the
  MBConv FLOP counts in Figure 4 follow it);
* activations and weights default to 2 bytes (bf16 on TPUs); embedding
  tables default to 4 bytes (fp32), matching production DLRM practice;
* convolutions are counted in their im2col matmul view, which is also
  how the matrix-unit padding efficiency is estimated.
"""

from __future__ import annotations

import math

from .ir import OpNode, UNIT_MEMORY, UNIT_MXU, UNIT_NETWORK, UNIT_VPU

DEFAULT_DTYPE_BYTES = 2.0
EMBEDDING_DTYPE_BYTES = 4.0


def _out_hw(size: int, stride: int) -> int:
    return max(1, math.ceil(size / stride))


def conv2d(
    name: str,
    height: int,
    width: int,
    cin: int,
    cout: int,
    kernel: int,
    stride: int = 1,
    batch: int = 1,
    dtype_bytes: float = DEFAULT_DTYPE_BYTES,
) -> OpNode:
    """A standard 2-D convolution executed on the matrix unit."""
    out_h, out_w = _out_hw(height, stride), _out_hw(width, stride)
    flops = 2.0 * batch * out_h * out_w * cin * cout * kernel * kernel
    return OpNode(
        name=name,
        op_type="conv2d",
        flops=flops,
        bytes_in=batch * height * width * cin * dtype_bytes,
        bytes_out=batch * out_h * out_w * cout * dtype_bytes,
        param_bytes=kernel * kernel * cin * cout * dtype_bytes,
        unit=UNIT_MXU,
        dims=(batch * out_h * out_w, kernel * kernel * cin, cout),
    )


def depthwise_conv2d(
    name: str,
    height: int,
    width: int,
    channels: int,
    kernel: int,
    stride: int = 1,
    batch: int = 1,
    dtype_bytes: float = DEFAULT_DTYPE_BYTES,
) -> OpNode:
    """Depthwise convolution: cheap in FLOPs but runs on the vector unit.

    Depthwise convolutions cannot fill a systolic matrix unit (each
    output channel touches one input channel), which is exactly why the
    paper's fused MBConv — replacing depthwise + 1x1 with one dense
    convolution — can be *faster* despite more FLOPs (Figure 4).
    """
    out_h, out_w = _out_hw(height, stride), _out_hw(width, stride)
    flops = 2.0 * batch * out_h * out_w * channels * kernel * kernel
    return OpNode(
        name=name,
        op_type="depthwise_conv2d",
        flops=flops,
        bytes_in=batch * height * width * channels * dtype_bytes,
        bytes_out=batch * out_h * out_w * channels * dtype_bytes,
        param_bytes=kernel * kernel * channels * dtype_bytes,
        unit=UNIT_VPU,
        dims=(batch * out_h * out_w, kernel * kernel, channels),
    )


def dense(
    name: str,
    batch: int,
    nin: int,
    nout: int,
    dtype_bytes: float = DEFAULT_DTYPE_BYTES,
) -> OpNode:
    """Fully-connected layer ``(batch, nin) @ (nin, nout)``."""
    return OpNode(
        name=name,
        op_type="dense",
        flops=2.0 * batch * nin * nout,
        bytes_in=batch * nin * dtype_bytes,
        bytes_out=batch * nout * dtype_bytes,
        param_bytes=nin * nout * dtype_bytes,
        unit=UNIT_MXU,
        dims=(batch, nin, nout),
    )


def matmul(
    name: str,
    m: int,
    k: int,
    n: int,
    batch: int = 1,
    dtype_bytes: float = DEFAULT_DTYPE_BYTES,
    cmem_resident: bool = False,
) -> OpNode:
    """Activation-by-activation matmul (no parameters), e.g. QK^T / AV.

    ``cmem_resident`` marks intermediates the compiler keeps on-chip via
    fusion/blocking (attention score matrices never round-trip to HBM);
    the simulator then charges their traffic to CMEM bandwidth.
    """
    return OpNode(
        name=name,
        op_type="matmul",
        flops=2.0 * batch * m * k * n,
        bytes_in=batch * (m * k + k * n) * dtype_bytes,
        bytes_out=batch * m * n * dtype_bytes,
        param_bytes=0.0,
        unit=UNIT_MXU,
        dims=(batch * m, k, n),
        attrs={"cmem_resident": 1.0} if cmem_resident else {},
    )


def embedding_lookup(
    name: str,
    lookups: int,
    width: int,
    distributed: bool = True,
    dtype_bytes: float = EMBEDDING_DTYPE_BYTES,
) -> OpNode:
    """Sparse embedding gather (+ all-to-all when sharded across chips).

    Embedding layers never touch the matrix unit: they are memory-bound
    gathers and, when tables are sharded across accelerators, also
    network-bound (Section 5.1 of the paper).
    """
    moved = lookups * width * dtype_bytes
    return OpNode(
        name=name,
        op_type="embedding_lookup",
        flops=0.0,
        bytes_in=moved,
        bytes_out=moved,
        param_bytes=0.0,
        unit=UNIT_MEMORY,
        network_bytes=moved if distributed else 0.0,
    )


def elementwise(
    name: str,
    elements: float,
    flops_per_element: float = 1.0,
    op_type: str = "elementwise",
    dtype_bytes: float = DEFAULT_DTYPE_BYTES,
) -> OpNode:
    """Pointwise op (activation, add, batch-norm apply, ...)."""
    return OpNode(
        name=name,
        op_type=op_type,
        flops=elements * flops_per_element,
        bytes_in=elements * dtype_bytes,
        bytes_out=elements * dtype_bytes,
        unit=UNIT_VPU,
    )


def softmax(
    name: str,
    rows: int,
    row_length: int,
    dtype_bytes: float = DEFAULT_DTYPE_BYTES,
    cmem_resident: bool = False,
) -> OpNode:
    """Row-wise softmax: ~5 vector FLOPs per element (max/sub/exp/sum/div)."""
    elements = rows * row_length
    return OpNode(
        name=name,
        op_type="softmax",
        flops=5.0 * elements,
        bytes_in=elements * dtype_bytes,
        bytes_out=elements * dtype_bytes,
        unit=UNIT_VPU,
        attrs={"cmem_resident": 1.0} if cmem_resident else {},
    )


def pooling(
    name: str,
    height: int,
    width: int,
    channels: int,
    window: int,
    batch: int = 1,
    dtype_bytes: float = DEFAULT_DTYPE_BYTES,
) -> OpNode:
    """Average/max pooling over ``window x window``."""
    out_elems = batch * _out_hw(height, window) * _out_hw(width, window) * channels
    return OpNode(
        name=name,
        op_type="pooling",
        flops=batch * height * width * channels,
        bytes_in=batch * height * width * channels * dtype_bytes,
        bytes_out=out_elems * dtype_bytes,
        unit=UNIT_VPU,
    )


def concat(name: str, total_elements: float, dtype_bytes: float = DEFAULT_DTYPE_BYTES) -> OpNode:
    """Concatenation — pure data movement."""
    moved = total_elements * dtype_bytes
    return OpNode(
        name=name,
        op_type="concat",
        flops=0.0,
        bytes_in=moved,
        bytes_out=moved,
        unit=UNIT_MEMORY,
    )


def all_to_all(name: str, payload_bytes: float) -> OpNode:
    """Cross-chip shuffle of ``payload_bytes`` over the interconnect."""
    return OpNode(
        name=name,
        op_type="all_to_all",
        bytes_in=payload_bytes,
        bytes_out=payload_bytes,
        network_bytes=payload_bytes,
        unit=UNIT_NETWORK,
    )
