"""Operator-graph IR consumed by the hardware performance simulator."""

from .ir import (
    OpGraph,
    OpNode,
    UNIT_MEMORY,
    UNIT_MXU,
    UNIT_NETWORK,
    UNIT_VPU,
    VALID_UNITS,
)
from . import ops, passes

__all__ = [
    "OpGraph",
    "OpNode",
    "UNIT_MEMORY",
    "UNIT_MXU",
    "UNIT_NETWORK",
    "UNIT_VPU",
    "VALID_UNITS",
    "ops",
    "passes",
]
