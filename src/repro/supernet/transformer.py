"""Transformer proxy super-network for the ViT search space.

Exercises the Table 5 transformer decisions through a scaled-down but
real attention network over synthetic sequence traffic:

* ``hidden_size`` — fine-grained width masking of every projection
  (one weight matrix at the maximum width, smaller candidates use the
  upper-left block), at a configurable scale-down factor;
* ``low_rank`` — the attention query/key/value projections share
  low-rank factor matrices whose active rank is masked per candidate;
* ``activation`` — the FFN activation (ReLU / swish / GELU / squared
  ReLU, the option H2O-NAS selects for CoAtNet-H);
* ``seq_pooling`` — funnel-style halving of the sequence after the
  block (the performance-aware option from Funnel Transformer);
* ``primer`` — an extra learnable gating layer standing in for
  Primer's post-projection depthwise convolution (capacity-relevant
  proxy; the hardware cost is priced by the simulator instead);
* ``depth_delta`` — the number of layers per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn import (
    Dense,
    LayerNorm,
    LowRankDense,
    MaskedDense,
    Module,
    Tensor,
    accuracy,
    activation as activation_fn,
    softmax_cross_entropy,
)
from ..searchspace.base import Architecture
from ..searchspace.vit import DEPTH_DELTAS, HIDDEN_SIZES
from .batching import StackedScoringMixin
from .elastic import ElasticLayerStack


@dataclass(frozen=True)
class TransformerSupernetConfig:
    """Baseline transformer proxy the super-network is built around."""

    num_blocks: int = 1
    num_features: int = 8
    num_classes: int = 4
    #: The search space's hidden sizes (64..1024) divide by this factor
    #: to give the proxy's actual widths (8..128 by default).
    width_divisor: int = 8
    base_depth: int = 2
    ffn_ratio: int = 2
    #: "classification" pools over the sequence; "lm" predicts a label
    #: per position (the NLP use of the transformer space the paper
    #: mentions).  LM mode requires ``seq_pooling`` decisions to be
    #: False — pooling would misalign positions with their labels.
    task: str = "classification"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width_divisor < 1:
            raise ValueError("width_divisor must be >= 1")
        if self.base_depth < 1:
            raise ValueError("base_depth must be >= 1")
        if self.task not in ("classification", "lm"):
            raise ValueError("task must be 'classification' or 'lm'")

    @property
    def max_width(self) -> int:
        return max(HIDDEN_SIZES) // self.width_divisor

    @property
    def max_depth(self) -> int:
        return self.base_depth + max(DEPTH_DELTAS)

    def proxy_width(self, hidden_size: int) -> int:
        return max(1, hidden_size // self.width_divisor)

    def block_depth(self, delta: int) -> int:
        return min(self.max_depth, max(1, self.base_depth + delta))


class _TransformerLayer(Module):
    """One attention + FFN layer with maskable width and rank."""

    def __init__(self, max_width: int, ffn_ratio: int, rng: np.random.Generator):
        self.max_width = max_width
        self.attn_norm = LayerNorm(max_width)
        self.ffn_norm = LayerNorm(max_width)
        self.qkv = LowRankDense(max_width, 3 * max_width, max_width, rng, activation_name="linear")
        self.out_proj = MaskedDense(max_width, max_width, rng, activation_name="linear")
        self.primer_gate = MaskedDense(max_width, max_width, rng, activation_name="sigmoid")
        self.ffn_up = MaskedDense(max_width, ffn_ratio * max_width, rng, activation_name="linear")
        self.ffn_down = MaskedDense(ffn_ratio * max_width, max_width, rng, activation_name="linear")
        self._ffn_ratio = ffn_ratio

    def forward(
        self,
        x: Tensor,
        width: int,
        rank: int,
        act_name: str,
        primer: bool,
    ) -> Tensor:
        act = activation_fn(act_name)
        normed = self.attn_norm(x, active_width=width)
        qkv = self.qkv(
            normed, active_in=width, active_out=3 * self.max_width, active_rank=rank
        )
        # Split the fused projection: each third is masked to ``width``.
        q = _slice_last(qkv, 0, self.max_width, width)
        k = _slice_last(qkv, self.max_width, 2 * self.max_width, width)
        v = _slice_last(qkv, 2 * self.max_width, 3 * self.max_width, width)
        scale = 1.0 / np.sqrt(max(width, 1))
        scores = (q @ k.transpose(0, 2, 1)) * scale
        attn = scores.softmax(axis=-1)
        context = attn @ v
        out = self.out_proj(context, active_in=width, active_out=width)
        if primer:
            gate = self.primer_gate(out, active_in=width, active_out=width)
            out = out * gate
        x = x + out
        hidden = self._ffn_ratio * width
        normed = self.ffn_norm(x, active_width=width)
        up = act(self.ffn_up(normed, active_in=width, active_out=hidden))
        down = self.ffn_down(up, active_in=hidden, active_out=width)
        return x + down


def _slice_last(tensor: Tensor, start: int, stop: int, active: int) -> Tensor:
    """Select ``[start:start+active]`` of the last axis, keep full width.

    Implemented as a constant mask-and-shift free of fancy indexing:
    the projection weights already route each head's channels into its
    own third, so a mask over ``[start, start+active)`` followed by a
    fixed permutation back to ``[0, width)`` suffices.  Since the mask
    zeroes everything else, a matmul with a constant 0/1 matrix
    performs the shift with full gradient support.
    """
    total = tensor.shape[-1]
    shift = np.zeros((total, stop - start))
    for i in range(start, min(stop, start + active)):
        shift[i, i - start] = 1.0
    return tensor @ Tensor(shift)


class TransformerSuperNetwork(StackedScoringMixin, Module):
    """Proxy super-network consuming ViT-space architectures."""

    #: Decision-dependent control flow only (widths/depths/pooling come
    #: from the architecture, shapes from the shape signature), so
    #: compiled-graph replay is safe — the transformer rides the same
    #: grouped batching and tape reuse as the DLRM/vision spaces.
    tape_compatible = True

    def __init__(self, config: Optional[TransformerSupernetConfig] = None):
        self.config = config = config or TransformerSupernetConfig()
        rng = np.random.default_rng(config.seed)
        width = config.max_width
        self.embed = Dense(config.num_features, width, rng, activation_name="linear")
        self.blocks: List[ElasticLayerStack] = [
            ElasticLayerStack(
                [
                    _TransformerLayer(width, config.ffn_ratio, rng)
                    for _ in range(config.max_depth)
                ]
            )
            for _ in range(config.num_blocks)
        ]
        self.head = Dense(width, config.num_classes, rng, activation_name="linear")

    def forward(self, arch: Architecture, inputs: Dict[str, np.ndarray]) -> Tensor:
        cfg = self.config
        x = self.embed(Tensor(inputs["x"]))
        for b, stack in enumerate(self.blocks):
            hidden_size = int(arch[f"tfm{b}/hidden_size"])
            width = cfg.proxy_width(hidden_size)
            rank_fraction = float(arch[f"tfm{b}/low_rank"])
            rank = max(1, int(round(rank_fraction * width)))
            depth = cfg.block_depth(int(arch[f"tfm{b}/depth_delta"]))
            act_name = str(arch[f"tfm{b}/activation"])
            primer = bool(arch[f"tfm{b}/primer"])
            # Mask the residual stream down to this block's width.
            mask = np.zeros(cfg.max_width)
            mask[:width] = 1.0
            x = x.mask(mask)
            for layer in stack.active(depth):
                x = layer(x, width=width, rank=rank, act_name=act_name, primer=primer)
            if bool(arch[f"tfm{b}/seq_pooling"]) and x.shape[1] >= 2:
                if cfg.task == "lm":
                    raise ValueError(
                        "sequence pooling is incompatible with per-position "
                        "LM prediction; constrain seq_pooling to False"
                    )
                batch, seq, feat = x.shape
                half = seq // 2
                trimmed = _slice_seq(x, 2 * half)
                x = trimmed.reshape(batch, half, 2, feat).mean(axis=2)
        if cfg.task == "lm":
            return self.head(x)  # (batch, seq, classes)
        pooled = x.mean(axis=1)
        return self.head(pooled)

    def _flatten_lm(self, logits: Tensor, labels: np.ndarray):
        batch, seq, classes = logits.shape
        return logits.reshape(batch * seq, classes), np.asarray(labels).reshape(-1)

    def loss_from_logits(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        if self.config.task == "lm":
            logits, labels = self._flatten_lm(logits, labels)
        return softmax_cross_entropy(logits, labels)

    def quality_from_logits(self, logits: Tensor, labels: np.ndarray) -> float:
        """Top-1 (per-position for LM) accuracy from logits."""
        if self.config.task == "lm":
            logits, labels = self._flatten_lm(logits, labels)
        return accuracy(logits, labels)


def _slice_seq(tensor: Tensor, keep: int) -> Tensor:
    """Keep the first ``keep`` sequence positions (drop an odd tail)."""
    if tensor.shape[1] == keep:
        return tensor
    selector = np.zeros((tensor.shape[1], keep))
    for i in range(keep):
        selector[i, i] = 1.0
    narrowed = tensor.transpose(0, 2, 1) @ Tensor(selector)
    return narrowed.transpose(0, 2, 1)
