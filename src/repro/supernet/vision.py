"""Vision proxy super-network for the CNN/ViT search spaces.

The paper trains its vision super-networks at full scale on TPU pods;
on CPU we exercise the same one-shot machinery with a *proxy*
super-network over feature vectors.  The proxy honours the
capacity-relevant decisions of the convolutional search space —
width delta, depth delta, expansion ratio, activation, squeeze-and-
excite ratio, and skip connections — through the same masking-based
fine-grained weight sharing the real super-network uses.  Decisions
that only matter for hardware performance (kernel size, stride, tensor
reshaping, MBConv vs fused MBConv) do not change the proxy's quality
path; they flow to the performance model instead, exactly as in the
paper where performance comes from the perf model rather than the
super-network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn import (
    Dense,
    MaskedDense,
    Module,
    Tensor,
    accuracy,
    activation as activation_fn,
    softmax_cross_entropy,
)
from ..searchspace.base import Architecture
from ..searchspace.cnn import DEPTH_DELTAS, EXPANSION_RATIOS, WIDTH_DELTAS
from .batching import StackedScoringMixin
from .elastic import ElasticLayerStack, elastic_width

#: Width quantum of the proxy (channels per width-delta unit).
WIDTH_INCREMENT = 4


@dataclass(frozen=True)
class VisionSupernetConfig:
    """Baseline proxy model the super-network is built around."""

    num_blocks: int = 2
    num_features: int = 16
    num_classes: int = 4
    base_width: int = 24
    base_depth: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_width + min(WIDTH_DELTAS) * WIDTH_INCREMENT < WIDTH_INCREMENT:
            raise ValueError("base_width must leave room for the -5 width delta")
        if self.base_depth < 1:
            raise ValueError("base_depth must be >= 1")

    @property
    def max_width(self) -> int:
        return self.base_width + max(WIDTH_DELTAS) * WIDTH_INCREMENT

    @property
    def max_depth(self) -> int:
        return self.base_depth + max(DEPTH_DELTAS)

    @property
    def max_expansion(self) -> int:
        return max(EXPANSION_RATIOS)

    def block_width(self, delta: int) -> int:
        return elastic_width(self.base_width, delta, WIDTH_INCREMENT)

    def block_depth(self, delta: int) -> int:
        return min(self.max_depth, max(1, self.base_depth + delta))


class _ProxyBlock(Module):
    """One searchable block: expand -> project with optional SE and skip."""

    def __init__(self, max_width: int, max_expansion: int, rng: np.random.Generator, max_depth: int):
        self.max_width = max_width
        hidden = max_width * max_expansion
        self.expands = ElasticLayerStack(
            [
                MaskedDense(max_width, hidden, rng, activation_name="linear")
                for _ in range(max_depth)
            ]
        )
        self.projects = ElasticLayerStack(
            [
                MaskedDense(hidden, max_width, rng, activation_name="linear")
                for _ in range(max_depth)
            ]
        )
        self.se_reduce = ElasticLayerStack(
            [
                MaskedDense(max_width, max_width, rng, activation_name="relu")
                for _ in range(max_depth)
            ]
        )
        self.se_expand = ElasticLayerStack(
            [
                MaskedDense(max_width, max_width, rng, activation_name="sigmoid")
                for _ in range(max_depth)
            ]
        )

    def forward(
        self,
        x: Tensor,
        in_width: int,
        width: int,
        depth: int,
        expansion: int,
        act_name: str,
        se_ratio: float,
        skip: str,
    ) -> Tensor:
        act = activation_fn(act_name)
        expands = self.expands.active(depth)
        projects = self.projects.active(depth)
        se_reduce = self.se_reduce.active(depth)
        se_expand = self.se_expand.active(depth)
        for i in range(depth):
            layer_in = in_width if i == 0 else width
            hidden = width * expansion
            h = act(expands[i](x, active_in=layer_in, active_out=hidden))
            h = projects[i](h, active_in=hidden, active_out=width)
            if se_ratio > 0:
                se_width = max(1, int(round(width * se_ratio)))
                gate = se_expand[i](
                    se_reduce[i](h, active_in=width, active_out=se_width),
                    active_in=se_width,
                    active_out=width,
                )
                h = h * gate
            if skip == "identity" and layer_in == width:
                h = h + x
            x = h
        return x


class VisionSuperNetwork(StackedScoringMixin, Module):
    """Proxy super-network consuming CNN-space architectures."""

    #: Per-architecture data flow only (no input-value control flow), so
    #: compiled-graph replay is safe.
    tape_compatible = True

    def __init__(self, config: Optional[VisionSupernetConfig] = None):
        self.config = config = config or VisionSupernetConfig()
        rng = np.random.default_rng(config.seed)
        self.stem = Dense(config.num_features, config.max_width, rng, activation_name="relu")
        self.blocks = [
            _ProxyBlock(config.max_width, config.max_expansion, rng, config.max_depth)
            for _ in range(config.num_blocks)
        ]
        self.head = Dense(config.max_width, config.num_classes, rng, activation_name="linear")

    def forward(self, arch: Architecture, inputs: Dict[str, np.ndarray]) -> Tensor:
        cfg = self.config
        x = self.stem(Tensor(inputs["x"]))
        in_width = cfg.max_width  # stem emits full width
        for b, block in enumerate(self.blocks):
            width = cfg.block_width(int(arch[f"block{b}/width_delta"]))
            depth = cfg.block_depth(int(arch[f"block{b}/depth_delta"]))
            x = block(
                x,
                in_width=in_width,
                width=width,
                depth=depth,
                expansion=int(arch[f"block{b}/expansion"]),
                act_name=str(arch[f"block{b}/activation"]),
                se_ratio=float(arch[f"block{b}/se_ratio"]),
                skip=str(arch[f"block{b}/skip"]),
            )
            in_width = width
        return self.head(x)

    def loss_from_logits(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return softmax_cross_entropy(logits, labels)

    def quality_from_logits(self, logits: Tensor, labels: np.ndarray) -> float:
        """Top-1 accuracy from logits (the quality signal Q)."""
        return accuracy(logits, labels)
