"""Stacked scoring: one supernet pass over several same-arch batches.

In the single-step search every parallel core draws its own fresh batch
and samples its own candidate.  Once the policy converges, most cores
sample the *same* architecture, yet the sequential path still runs one
forward (and one backward) per core.  Since a forward pass is row-wise
in the batch dimension, cores that share an architecture can stack
their batches and run **one** pass over the concatenation:

* per-core qualities are recovered by slicing the stacked logits back
  into per-batch spans — exactly the per-batch metric;
* the stacked mean loss equals the mean of the per-batch mean losses
  whenever the batches are the same size (the single-step pipeline's
  normal case), so one backward scaled by the group size reproduces the
  per-core accumulation.

:class:`StackedScoringMixin` adds this capability to any supernet whose
``forward(arch, inputs)`` consumes a dict of equally-indexed input
arrays; the subnet supplies its per-batch quality metric through
:meth:`StackedScoringMixin.quality_from_logits`.  Supernets without the
mixin simply keep the per-core path — the search falls back
transparently.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, runtime_checkable

import numpy as np

from ..nn import Tensor
from ..searchspace.base import Architecture

NamedInputs = Dict[str, np.ndarray]


@runtime_checkable
class StackedScoring(Protocol):
    """The stacked-scoring capability, as a checkable contract.

    The search engine used to sniff for ``quality_many`` with
    ``getattr`` duck-typing; this Protocol makes the contract explicit
    and ``isinstance``-checkable: a supernet that can score *and* train
    over several same-architecture batches in one stacked pass.
    :class:`StackedScoringMixin` is the stock implementation; any
    structurally-conforming supernet qualifies.

    ``runtime_checkable`` Protocols check method *presence*, not
    signatures — which is exactly right for proxy wrappers (e.g. the
    fault injector's mid-shard crash shim) that forward attribute
    lookups to an inner supernet: the isinstance check follows whatever
    the wrapped supernet actually offers.
    """

    def quality_many(
        self,
        arch: Architecture,
        inputs_seq: Sequence[NamedInputs],
        labels_seq: Sequence[np.ndarray],
    ) -> List[float]: ...

    def loss_many(
        self,
        arch: Architecture,
        inputs_seq: Sequence[NamedInputs],
        labels_seq: Sequence[np.ndarray],
    ) -> Tensor: ...


def stack_named_inputs(inputs_seq: Sequence[NamedInputs]) -> NamedInputs:
    """Concatenate same-keyed input dicts along the example axis."""
    if not inputs_seq:
        raise ValueError("need at least one batch to stack")
    keys = inputs_seq[0].keys()
    for inputs in inputs_seq[1:]:
        if inputs.keys() != keys:
            raise ValueError("all stacked batches must share input names")
    return {
        key: np.concatenate([inputs[key] for inputs in inputs_seq], axis=0)
        for key in keys
    }


class StackedScoringMixin:
    """Batched ``quality_many`` / ``loss_many`` over one architecture.

    Hosts must provide ``forward(arch, inputs) -> Tensor`` of per-example
    logits, ``loss(arch, inputs, labels) -> Tensor`` (a *mean* over the
    batch), and :meth:`quality_from_logits`.
    """

    def quality_from_logits(self, logits: Tensor, labels: np.ndarray) -> float:
        """Per-batch quality metric from already-computed logits."""
        raise NotImplementedError

    def quality_many(
        self,
        arch: Architecture,
        inputs_seq: Sequence[NamedInputs],
        labels_seq: Sequence[np.ndarray],
    ) -> List[float]:
        """Per-batch qualities of ``arch`` from one stacked forward."""
        if len(inputs_seq) != len(labels_seq):
            raise ValueError("inputs and labels sequences must align")
        if len(inputs_seq) == 1:
            return [self.quality(arch, inputs_seq[0], labels_seq[0])]
        logits = self.forward(arch, stack_named_inputs(inputs_seq))
        qualities: List[float] = []
        start = 0
        for labels in labels_seq:
            end = start + int(np.asarray(labels).shape[0])
            qualities.append(
                self.quality_from_logits(Tensor(logits.data[start:end]), labels)
            )
            start = end
        return qualities

    def loss_many(
        self,
        arch: Architecture,
        inputs_seq: Sequence[NamedInputs],
        labels_seq: Sequence[np.ndarray],
    ) -> Tensor:
        """Mean of the per-batch mean losses, as one stacked pass.

        Batches of unequal size cannot share a stacked mean (it would
        weight examples, not batches), so they fall back to per-batch
        passes combined into the same mean.
        """
        if len(inputs_seq) != len(labels_seq):
            raise ValueError("inputs and labels sequences must align")
        if len(inputs_seq) == 1:
            return self.loss(arch, inputs_seq[0], labels_seq[0])
        sizes = {int(np.asarray(labels).shape[0]) for labels in labels_seq}
        if len(sizes) == 1:
            stacked_labels = np.concatenate(
                [np.asarray(labels) for labels in labels_seq], axis=0
            )
            return self.loss(arch, stack_named_inputs(inputs_seq), stacked_labels)
        total = self.loss(arch, inputs_seq[0], labels_seq[0])
        for inputs, labels in zip(inputs_seq[1:], labels_seq[1:]):
            total = total + self.loss(arch, inputs, labels)
        return total * (1.0 / len(inputs_seq))
