"""Stacked scoring: one supernet pass over several same-arch batches.

In the single-step search every parallel core draws its own fresh batch
and samples its own candidate.  Once the policy converges, most cores
sample the *same* architecture, yet the sequential path still runs one
forward (and one backward) per core.  Since a forward pass is row-wise
in the batch dimension, cores that share an architecture can stack
their batches and run **one** pass over the concatenation:

* per-core qualities are recovered by slicing the stacked logits back
  into per-batch spans — exactly the per-batch metric;
* the stacked mean loss equals the mean of the per-batch mean losses
  whenever the batches are the same size (the single-step pipeline's
  normal case), so one backward scaled by the group size reproduces the
  per-core accumulation.

:class:`StackedScoringMixin` adds this capability to any supernet whose
``forward(arch, inputs)`` consumes a dict of equally-indexed input
arrays; the subnet supplies its per-batch quality metric through
:meth:`StackedScoringMixin.quality_from_logits`.  Supernets without the
mixin simply keep the per-core path — the search falls back
transparently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from ..nn import Tensor, stack_mean
from ..nn import layers as nn_layers
from ..nn.tape import CompiledGraph, TapeCache, compile_graph, tape_enabled
from ..searchspace.base import Architecture

NamedInputs = Dict[str, np.ndarray]

#: Key under which labels ride in a compiled graph's input buffers.
_LABELS_KEY = "__labels__"


@runtime_checkable
class StackedScoring(Protocol):
    """The stacked-scoring capability, as a checkable contract.

    The search engine used to sniff for ``quality_many`` with
    ``getattr`` duck-typing; this Protocol makes the contract explicit
    and ``isinstance``-checkable: a supernet that can score *and* train
    over several same-architecture batches in one stacked pass.
    :class:`StackedScoringMixin` is the stock implementation; any
    structurally-conforming supernet qualifies.

    ``runtime_checkable`` Protocols check method *presence*, not
    signatures — which is exactly right for proxy wrappers (e.g. the
    fault injector's mid-shard crash shim) that forward attribute
    lookups to an inner supernet: the isinstance check follows whatever
    the wrapped supernet actually offers.
    """

    def quality_many(
        self,
        arch: Architecture,
        inputs_seq: Sequence[NamedInputs],
        labels_seq: Sequence[np.ndarray],
    ) -> List[float]: ...

    def loss_many(
        self,
        arch: Architecture,
        inputs_seq: Sequence[NamedInputs],
        labels_seq: Sequence[np.ndarray],
    ) -> Tensor: ...


def stack_named_inputs(inputs_seq: Sequence[NamedInputs]) -> NamedInputs:
    """Concatenate same-keyed input dicts along the example axis."""
    if not inputs_seq:
        raise ValueError("need at least one batch to stack")
    keys = inputs_seq[0].keys()
    for inputs in inputs_seq[1:]:
        if inputs.keys() != keys:
            raise ValueError("all stacked batches must share input names")
    return {
        key: np.concatenate([inputs[key] for inputs in inputs_seq], axis=0)
        for key in keys
    }


class StackedScoringMixin:
    """Batched ``quality_many`` / ``loss_many`` over one architecture.

    Hosts must provide ``forward(arch, inputs) -> Tensor`` of per-example
    logits plus :meth:`quality_from_logits` and :meth:`loss_from_logits`;
    the mixin derives ``loss`` / ``quality`` from them and routes both
    through per-``(kind, arch, shapes)`` compiled graphs (see
    :mod:`repro.nn.tape`) when the host opts in via ``tape_compatible``.
    Replay is bit-identical to the eager build, so the search trajectory
    does not depend on cache hits.
    """

    #: Hosts whose ``forward`` is replay-safe (fused layers only, no
    #: Python control flow on input *values*) flip this on to get tape
    #: reuse.  Defaults off so unknown subclasses stay eager.
    tape_compatible: bool = False

    #: LRU capacity of the per-instance graph cache.  Sized like the
    #: engine's ``ArchMetricsCache``: a converged single-step search
    #: revisits a handful of architectures per generation.
    tape_capacity: int = 64

    def quality_from_logits(self, logits: Tensor, labels: np.ndarray) -> float:
        """Per-batch quality metric from already-computed logits."""
        raise NotImplementedError

    def loss_from_logits(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        """Mean training loss from already-computed logits."""
        raise NotImplementedError

    # -- compiled-graph plumbing ---------------------------------------
    def _tape_cache(self) -> TapeCache:
        cache = self.__dict__.get("_tapes")
        if cache is None:
            cache = self.__dict__["_tapes"] = TapeCache(self.tape_capacity)
        return cache

    def _tape_active(self) -> bool:
        return (
            self.tape_compatible and nn_layers.FUSED_KERNELS and tape_enabled()
        )

    def _compiled(
        self,
        kind: str,
        arch: Architecture,
        inputs: NamedInputs,
        labels: Optional[np.ndarray] = None,
    ) -> Optional[Tuple[CompiledGraph, Dict[str, np.ndarray]]]:
        """Compiled graph for ``(kind, arch, shapes)`` plus bound arrays.

        Returns ``None`` when tape reuse is off — callers then run the
        eager path.  Labels travel through the graph's input buffers
        (under :data:`_LABELS_KEY`) so loss graphs replay against fresh
        targets, not the targets seen at trace time.
        """
        if not self._tape_active():
            return None
        arrays: Dict[str, np.ndarray] = {
            name: np.asarray(value) for name, value in inputs.items()
        }
        if labels is not None:
            arrays[_LABELS_KEY] = np.asarray(labels)
        signature = tuple(
            sorted((name, value.shape) for name, value in arrays.items())
        )
        key = (kind, arch, signature)
        input_names = [name for name in arrays if name != _LABELS_KEY]

        def factory() -> CompiledGraph:
            def build(buffers: Dict[str, np.ndarray]) -> Tensor:
                feed = {name: buffers[name] for name in input_names}
                logits = self.forward(arch, feed)
                if kind == "loss":
                    return self.loss_from_logits(logits, buffers[_LABELS_KEY])
                return logits

            return compile_graph(build, arrays)

        return self._tape_cache().get_or_build(key, factory), arrays

    def worker_spec(self) -> Tuple:
        """How a process-pool worker rebuilds this supernet.

        Returns a ``("factory", cls, args, kwargs)`` spec when the host
        follows the ``cls(config)`` constructor convention — workers
        reconstruct the module graph from the (tiny) config and then
        overwrite every parameter from the shared-weights segment, so
        the instance itself never needs to pickle.  That matters here:
        a populated tape cache holds per-graph locks, which makes
        whole-object pickling of a warmed-up supernet impossible.
        Hosts without a ``config`` fall back to whole-object pickling,
        and hosts with richer constructors should override this hook.
        """
        config = getattr(self, "config", None)
        if config is not None:
            return ("factory", type(self), (config,), {})
        return ("pickle", self)

    def tape_stats(self) -> Dict[str, int]:
        """Process-lifetime counters of the instance's graph cache."""
        cache = self.__dict__.get("_tapes")
        if cache is None:
            return {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        return cache.stats()

    # -- single-batch scoring ------------------------------------------
    def loss(
        self, arch: Architecture, inputs: NamedInputs, labels: np.ndarray
    ) -> Tensor:
        """Mean training loss of ``arch`` on one batch (compiled when
        the host is tape-compatible)."""
        bound = self._compiled("loss", arch, inputs, labels)
        if bound is None:
            return self.loss_from_logits(self.forward(arch, inputs), labels)
        graph, arrays = bound
        return graph.run(arrays)

    def quality(
        self, arch: Architecture, inputs: NamedInputs, labels: np.ndarray
    ) -> float:
        """Per-batch quality of ``arch`` on one batch.

        The metric is extracted under the graph lock: the engine's
        score stage fans duplicate candidates out across workers, and
        two workers replaying one graph must not interleave bind /
        read."""
        bound = self._compiled("forward", arch, inputs)
        if bound is None:
            return self.quality_from_logits(self.forward(arch, inputs), labels)
        graph, arrays = bound
        return graph.call(
            arrays, lambda logits: self.quality_from_logits(logits, labels)
        )

    def _loss_uncompiled(
        self, arch: Architecture, inputs: NamedInputs, labels: np.ndarray
    ) -> Tensor:
        """Per-batch loss that never shares a compiled graph.

        The unequal-size ``loss_many`` fallback keeps several loss
        tensors alive at once; replaying one compiled graph for two
        batches would alias them onto a single output node.  Hosts that
        override ``loss`` keep their override."""
        if type(self).loss is not StackedScoringMixin.loss:
            return self.loss(arch, inputs, labels)
        return self.loss_from_logits(self.forward(arch, inputs), labels)

    def quality_many(
        self,
        arch: Architecture,
        inputs_seq: Sequence[NamedInputs],
        labels_seq: Sequence[np.ndarray],
    ) -> List[float]:
        """Per-batch qualities of ``arch`` from one stacked forward."""
        if len(inputs_seq) != len(labels_seq):
            raise ValueError("inputs and labels sequences must align")
        if len(inputs_seq) == 1:
            return [self.quality(arch, inputs_seq[0], labels_seq[0])]
        stacked = stack_named_inputs(inputs_seq)

        def slice_qualities(logits: Tensor) -> List[float]:
            qualities: List[float] = []
            start = 0
            for labels in labels_seq:
                end = start + int(np.asarray(labels).shape[0])
                qualities.append(
                    self.quality_from_logits(Tensor(logits.data[start:end]), labels)
                )
                start = end
            return qualities

        bound = self._compiled("forward", arch, stacked)
        if bound is None:
            return slice_qualities(self.forward(arch, stacked))
        graph, arrays = bound
        return graph.call(arrays, slice_qualities)

    def loss_many(
        self,
        arch: Architecture,
        inputs_seq: Sequence[NamedInputs],
        labels_seq: Sequence[np.ndarray],
    ) -> Tensor:
        """Mean of the per-batch mean losses, as one stacked pass.

        Batches of unequal size cannot share a stacked mean (it would
        weight examples, not batches), so they fall back to per-batch
        passes combined into the same mean.  The fallback builds each
        per-batch loss eagerly — replaying one compiled graph would
        alias the live loss tensors — and combines them with the
        single-node :func:`repro.nn.stack_mean`, whose left-fold
        accumulation matches the old ``(a + b + ...) * (1/n)`` chain
        bit-for-bit.
        """
        if len(inputs_seq) != len(labels_seq):
            raise ValueError("inputs and labels sequences must align")
        if len(inputs_seq) == 1:
            return self.loss(arch, inputs_seq[0], labels_seq[0])
        sizes = {int(np.asarray(labels).shape[0]) for labels in labels_seq}
        if len(sizes) == 1:
            stacked_labels = np.concatenate(
                [np.asarray(labels) for labels in labels_seq], axis=0
            )
            return self.loss(arch, stack_named_inputs(inputs_seq), stacked_labels)
        losses = [
            self._loss_uncompiled(arch, inputs, labels)
            for inputs, labels in zip(inputs_seq, labels_seq)
        ]
        return stack_mean(losses)
