"""Shared elastic substrate for the masking-based super-networks.

Every super-network in this package (DLRM, vision proxy, transformer
proxy) is built from the same two elastic primitives, extracted here so
the once-for-all workflow (train one elastic supernet, specialize per
hardware target — see :mod:`repro.core.elastic`) has a single substrate
to train:

* **dynamic channels** — :class:`ElasticMlp` holds one weight matrix at
  the maximum width per layer and *slices* the active sub-matrix per
  candidate.  Slicing rides the fused masked/low-rank kernels of
  :mod:`repro.nn.layers` (prefix masks become sliced BLAS calls), so a
  half-width candidate really pays ~quarter the FLOPs, not a masked
  full-width pass;
* **dynamic depth** — :class:`ElasticLayerStack` owns a maximal list of
  per-depth layers and activates a validated prefix per candidate.

On top sits the **progressive-shrinking** training schedule
(:class:`ShrinkSchedule`): elastic training starts from the baseline
sub-network only and widens the sampled sub-space on a step schedule —
first the width-like decisions (channels, vocabularies, ranks), then
depth — by progressively *unfreezing* tagged decision groups of the
search space.  Restriction is expressed with
:meth:`repro.searchspace.base.SearchSpace.frozen`, so every phase's
space keeps the full decision set (architectures stay compatible with
the supernet, the controller, and the encoders) while pinned decisions
have a single admissible value.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..nn import LowRankDense, MaskedDense, Module, Tensor
from ..searchspace.base import SearchSpace

__all__ = [
    "ElasticLayerStack",
    "ElasticMlp",
    "ShrinkPhase",
    "ShrinkSchedule",
    "elastic_rank",
    "elastic_width",
]

#: Decision tags the default progressive-shrinking schedule manages, in
#: unfreeze order: width-like decisions first (channel widths, vocabulary
#: sizes, low-rank fractions, transformer hidden sizes), depth last —
#: the OFA ordering, adapted to this repo's tag taxonomy.
WIDTH_LIKE_TAGS = ("width", "vocab", "low_rank", "hidden_size")
DEPTH_LIKE_TAGS = ("depth",)


def elastic_width(base: int, delta: int, increment: int, minimum: Optional[int] = None) -> int:
    """Active width of a ``base + delta * increment`` elastic dimension.

    The shared width arithmetic of every masking supernet: deltas move
    in quanta of ``increment`` channels and the result never drops below
    ``minimum`` (one quantum by default), so a maximally-negative delta
    still leaves a usable layer.
    """
    if minimum is None:
        minimum = increment
    return max(minimum, base + delta * increment)


def elastic_rank(fraction: float, width: int, increment: int = 1) -> int:
    """Active rank of a factorized layer at ``fraction`` of ``width``.

    Quantized to ``increment`` (the fused kernels' slicing quantum) and
    clamped to ``[increment, width]`` so a tiny fraction still yields a
    trainable factor and the rank never exceeds the full-rank width.
    """
    rank = max(increment, int(round(fraction * width / increment)) * increment)
    return min(rank, width)


class ElasticLayerStack(Module):
    """A depth-elastic sequence of per-depth submodules.

    Owns the *maximal* list of layers; candidates activate a validated
    prefix via :meth:`active`.  Used directly by the transformer blocks
    and (as parallel per-role stacks) by the vision proxy blocks; the
    DLRM MLP stacks use it through :class:`ElasticMlp`.
    """

    def __init__(self, layers: Sequence[Module]):
        if not layers:
            raise ValueError("an elastic stack needs at least one layer")
        self.layers: List[Module] = list(layers)

    @property
    def max_depth(self) -> int:
        return len(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def active(self, depth: int) -> List[Module]:
        """The first ``depth`` layers, validating the elastic range."""
        if not (1 <= depth <= len(self.layers)):
            raise ValueError(
                f"active depth {depth} outside [1, {len(self.layers)}]"
            )
        return self.layers[:depth]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise NotImplementedError(
            "ElasticLayerStack is a container; iterate .active(depth)"
        )


class ElasticMlp(Module):
    """One width/depth/rank-elastic MLP stack with shared weights.

    Each depth slot holds a full-rank path and a factorized low-rank
    path over the *same* maximal dimensions; candidates choose width,
    depth, and rank fraction per forward.  This is the substrate behind
    both DLRM MLP stacks (bottom and top), generalized over the width
    quantum so other spaces can reuse it.
    """

    def __init__(
        self,
        input_width: int,
        max_width: int,
        max_depth: int,
        rng: np.random.Generator,
        width_increment: int = 8,
    ):
        self.input_width = input_width
        self.max_width = max_width
        self.width_increment = width_increment
        full_layers: List[MaskedDense] = []
        lowrank_layers: List[LowRankDense] = []
        for i in range(max_depth):
            nin = input_width if i == 0 else max_width
            full_layers.append(MaskedDense(nin, max_width, rng))
            lowrank_layers.append(LowRankDense(nin, max_width, max_width, rng))
        self.full = ElasticLayerStack(full_layers)
        self.lowrank = ElasticLayerStack(lowrank_layers)

    @property
    def max_depth(self) -> int:
        return self.full.max_depth

    def forward(
        self,
        x: Tensor,
        active_width: int,
        active_depth: int,
        low_rank_fraction: float,
    ) -> Tensor:
        if not (0 < active_width <= self.max_width):
            raise ValueError(
                f"active_width {active_width} outside (0, {self.max_width}]"
            )
        full = self.full.active(active_depth)
        lowrank = self.lowrank.active(active_depth)
        for i in range(active_depth):
            active_in = self.input_width if i == 0 else active_width
            if low_rank_fraction >= 1.0:
                x = full[i](x, active_in=active_in, active_out=active_width)
            else:
                rank = elastic_rank(
                    low_rank_fraction, active_width, self.width_increment
                )
                x = lowrank[i](
                    x,
                    active_in=active_in,
                    active_out=active_width,
                    active_rank=rank,
                )
        return x


# ----------------------------------------------------------------------
# Progressive shrinking
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShrinkPhase:
    """One phase of a progressive-shrinking schedule.

    From ``start_step`` on, decisions tagged with any of ``free_tags``
    join the sampled sub-space (freedoms are cumulative across phases).
    """

    name: str
    start_step: int
    free_tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase name must be non-empty")
        if self.start_step < 0:
            raise ValueError("phase start_step must be >= 0")


class ShrinkSchedule:
    """Step schedule widening the sampled sub-space of an elastic train.

    The schedule manages the union of every phase's ``free_tags``: a
    decision carrying a managed tag is pinned to its baseline value
    (choice index 0) until the phase that frees its tag begins; all
    other decisions are never restricted.  Phase membership is a pure
    function of the step index, so crash/resumed runs land in the same
    phase by construction — only the sampler rng (already checkpointed
    by the engine) carries state.
    """

    def __init__(self, phases: Sequence[ShrinkPhase]):
        phases = tuple(phases)
        if not phases:
            raise ValueError("schedule needs at least one phase")
        if phases[0].start_step != 0:
            raise ValueError("first phase must start at step 0")
        for before, after in zip(phases, phases[1:]):
            if after.start_step <= before.start_step:
                raise ValueError(
                    "phase start steps must be strictly increasing "
                    f"({after.name!r} at {after.start_step} follows "
                    f"{before.name!r} at {before.start_step})"
                )
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ValueError("phase names must be unique")
        self.phases: Tuple[ShrinkPhase, ...] = phases
        self.managed_tags: Tuple[str, ...] = tuple(
            sorted({tag for p in phases for tag in p.free_tags})
        )
        self._space_cache: Dict[Tuple[int, int], SearchSpace] = {}

    # -- construction helpers ------------------------------------------
    @classmethod
    def default(cls, total_steps: int) -> "ShrinkSchedule":
        """The stock three-phase schedule for a ``total_steps`` training.

        Phase boundaries at one and two thirds of the run: baseline-only
        warm start, then width-like decisions, then depth.  For very
        short runs later phases may start beyond the horizon and simply
        never activate — the tiny-config smoke tests accept that.
        """
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        first = max(1, total_steps // 3)
        second = max(first + 1, (2 * total_steps) // 3)
        return cls(
            (
                ShrinkPhase("full", 0, ()),
                ShrinkPhase("widths", first, WIDTH_LIKE_TAGS),
                ShrinkPhase("depths", second, DEPTH_LIKE_TAGS),
            )
        )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ShrinkSchedule":
        """Rebuild a schedule from :meth:`describe` output."""
        phases = [
            ShrinkPhase(
                name=str(entry["name"]),
                start_step=int(entry["start_step"]),
                free_tags=tuple(str(t) for t in entry["free_tags"]),
            )
            for entry in payload["phases"]
        ]
        return cls(phases)

    # -- phase lookup ---------------------------------------------------
    def phase_index(self, step: int) -> int:
        """Index of the phase active at ``step``."""
        if step < 0:
            raise ValueError("step must be >= 0")
        index = 0
        for i, phase in enumerate(self.phases):
            if step >= phase.start_step:
                index = i
        return index

    def phase(self, step: int) -> ShrinkPhase:
        return self.phases[self.phase_index(step)]

    def free_tags_at(self, step: int) -> Tuple[str, ...]:
        """Cumulative freed tags at ``step`` (sorted, deduplicated)."""
        freed = {
            tag
            for phase in self.phases[: self.phase_index(step) + 1]
            for tag in phase.free_tags
        }
        return tuple(sorted(freed))

    def space_at(self, step: int, space: SearchSpace) -> SearchSpace:
        """The restricted space the phase at ``step`` samples from.

        Managed-but-not-yet-freed decisions are pinned to their baseline
        (choice index 0) via :meth:`SearchSpace.frozen`; the returned
        space is cached per (space, phase) so repeated steps share one
        instance.
        """
        index = self.phase_index(step)
        key = (id(space), index)
        cached = self._space_cache.get(key)
        if cached is not None:
            return cached
        freed = set(self.free_tags_at(step))
        pinned = {
            decision.name: decision.choices[0]
            for decision in space.decisions
            if any(tag in self.managed_tags for tag in decision.tags)
            and not any(tag in freed for tag in decision.tags)
        }
        restricted = (
            space
            if not pinned
            else space.frozen(pinned, name=f"{space.name}@{self.phases[index].name}")
        )
        self._space_cache[key] = restricted
        return restricted

    # -- identity -------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-safe description (rides in checkpoints and artifacts)."""
        return {
            "phases": [
                {
                    "name": p.name,
                    "start_step": p.start_step,
                    "free_tags": list(p.free_tags),
                }
                for p in self.phases
            ],
            "managed_tags": list(self.managed_tags),
        }

    def signature(self) -> str:
        """Canonical string identity, for resume/artifact compatibility."""
        return json.dumps(self.describe(), sort_keys=True)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ShrinkSchedule) and self.phases == other.phases

    def __repr__(self) -> str:
        body = ", ".join(
            f"{p.name}@{p.start_step}" for p in self.phases
        )
        return f"ShrinkSchedule({body})"
