"""Weight-sharing super-networks (Section 5 / Figure 3 of the paper)."""

from .dlrm import DlrmSuperNetwork, DlrmSupernetConfig, WIDTH_INCREMENT
from .mixture import (
    MixtureSuperNetwork,
    MixtureSupernetConfig,
    mixture_search_space,
)
from .transformer import TransformerSuperNetwork, TransformerSupernetConfig
from .vision import VisionSuperNetwork, VisionSupernetConfig

__all__ = [
    "DlrmSuperNetwork",
    "DlrmSupernetConfig",
    "MixtureSuperNetwork",
    "MixtureSupernetConfig",
    "mixture_search_space",
    "TransformerSuperNetwork",
    "TransformerSupernetConfig",
    "VisionSuperNetwork",
    "VisionSupernetConfig",
    "WIDTH_INCREMENT",
]
