"""Weight-sharing super-networks (Section 5 / Figure 3 of the paper)."""

from .batching import StackedScoring, StackedScoringMixin, stack_named_inputs
from .dlrm import DlrmSuperNetwork, DlrmSupernetConfig, WIDTH_INCREMENT
from .elastic import (
    ElasticLayerStack,
    ElasticMlp,
    ShrinkPhase,
    ShrinkSchedule,
    elastic_rank,
    elastic_width,
)
from .mixture import (
    MixtureSuperNetwork,
    MixtureSupernetConfig,
    mixture_search_space,
)
from .transformer import TransformerSuperNetwork, TransformerSupernetConfig
from .vision import VisionSuperNetwork, VisionSupernetConfig

__all__ = [
    "StackedScoring",
    "StackedScoringMixin",
    "stack_named_inputs",
    "DlrmSuperNetwork",
    "DlrmSupernetConfig",
    "ElasticLayerStack",
    "ElasticMlp",
    "ShrinkPhase",
    "ShrinkSchedule",
    "elastic_rank",
    "elastic_width",
    "MixtureSuperNetwork",
    "MixtureSupernetConfig",
    "mixture_search_space",
    "TransformerSuperNetwork",
    "TransformerSupernetConfig",
    "VisionSuperNetwork",
    "VisionSupernetConfig",
    "WIDTH_INCREMENT",
]
