"""Mixture super-network for gradient-based (DARTS-style) search.

The paper's taxonomy (Sections 2.1, 3) contrasts RL-based one-shot
search with gradient-based search, which "eliminates the need for an RL
controller by making the reward differentiable with a softmax layer
over all model candidates" — at the cost that every step must
"compute gradients for all sub-networks".  This module provides the
substrate for that baseline: an MLP super-network whose per-layer
width and activation decisions can be evaluated either

* **discretely** (one sub-network, the RL/one-shot regime), or
* **as a softmax mixture** over all choices (the DARTS regime) —
  width mixtures blend the choice masks; activation mixtures must
  evaluate *every* activation function, which is exactly where the
  gradient-based cost multiplier comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..nn import (
    Dense,
    MaskedDense,
    Module,
    Tensor,
    accuracy,
    activation as activation_fn,
    softmax_cross_entropy,
)
from ..searchspace.base import Architecture, Decision, SearchSpace
from .batching import StackedScoringMixin


@dataclass(frozen=True)
class MixtureSupernetConfig:
    """Shape of the mixture super-network."""

    num_layers: int = 2
    num_features: int = 16
    num_classes: int = 4
    width_choices: Tuple[int, ...] = (8, 16, 24, 32)
    activation_choices: Tuple[str, ...] = ("relu", "swish", "gelu", "squared_relu")
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if not self.width_choices or not self.activation_choices:
            raise ValueError("need at least one width and one activation choice")
        if any(w < 1 for w in self.width_choices):
            raise ValueError("widths must be positive")

    @property
    def max_width(self) -> int:
        return max(self.width_choices)


def mixture_search_space(config: MixtureSupernetConfig) -> SearchSpace:
    """The discrete space the mixture super-network realizes."""
    decisions: List[Decision] = []
    for layer in range(config.num_layers):
        decisions.append(
            Decision(f"layer{layer}/width", config.width_choices, ("mlp", "width"))
        )
        decisions.append(
            Decision(
                f"layer{layer}/activation",
                config.activation_choices,
                ("mlp", "activation"),
            )
        )
    return SearchSpace("mixture_mlp", decisions)


class MixtureSuperNetwork(StackedScoringMixin, Module):
    """MLP with per-layer width/activation choices, discrete or mixed."""

    def __init__(self, config: Optional[MixtureSupernetConfig] = None):
        self.config = config = config or MixtureSupernetConfig()
        rng = np.random.default_rng(config.seed)
        width = config.max_width
        self.layers: List[MaskedDense] = []
        for layer in range(config.num_layers):
            nin = config.num_features if layer == 0 else width
            self.layers.append(MaskedDense(nin, width, rng, activation_name="linear"))
        self.head = Dense(width, config.num_classes, rng, activation_name="linear")
        # Constant per-choice masks used by the soft-width mixture.
        self._width_masks = np.zeros((len(config.width_choices), width))
        for c, choice in enumerate(config.width_choices):
            self._width_masks[c, :choice] = 1.0

    # ------------------------------------------------------------------
    # Discrete (one-shot / RL) path
    # ------------------------------------------------------------------
    def forward(self, arch: Architecture, inputs: Mapping[str, np.ndarray]) -> Tensor:
        cfg = self.config
        x = Tensor(inputs["x"])
        in_width = cfg.num_features
        for layer_index, layer in enumerate(self.layers):
            width = int(arch[f"layer{layer_index}/width"])
            act = activation_fn(str(arch[f"layer{layer_index}/activation"]))
            x = act(layer(x, active_in=in_width, active_out=width))
            in_width = width
        return self.head(x)

    def loss(self, arch, inputs, labels) -> Tensor:
        return softmax_cross_entropy(self.forward(arch, inputs), labels)

    def quality(self, arch, inputs, labels) -> float:
        return accuracy(self.forward(arch, inputs), labels)

    def quality_from_logits(self, logits: Tensor, labels: np.ndarray) -> float:
        return accuracy(logits, labels)

    # ------------------------------------------------------------------
    # Mixture (gradient-based / DARTS) path
    # ------------------------------------------------------------------
    def forward_mixture(
        self,
        probabilities: Mapping[str, Tensor],
        inputs: Mapping[str, np.ndarray],
    ) -> Tensor:
        """Softmax-relaxed forward: every choice contributes.

        ``probabilities`` maps decision name -> probability Tensor (one
        per choice); gradients flow to them through the mixture.  Width
        mixtures reduce to a soft output mask (cheap); activation
        mixtures evaluate *every* activation function (the cost the
        paper's taxonomy charges gradient-based search with).
        """
        cfg = self.config
        x = Tensor(inputs["x"])
        for layer_index, layer in enumerate(self.layers):
            width_probs = probabilities[f"layer{layer_index}/width"]
            act_probs = probabilities[f"layer{layer_index}/activation"]
            pre = layer(x)  # full-width affine once
            soft_mask = width_probs @ Tensor(self._width_masks)
            masked = pre * soft_mask
            mixed = None
            for c, name in enumerate(cfg.activation_choices):
                onehot = np.zeros(len(cfg.activation_choices))
                onehot[c] = 1.0
                weight = (act_probs * Tensor(onehot)).sum()
                term = activation_fn(name)(masked) * weight
                mixed = term if mixed is None else mixed + term
            x = mixed
        return self.head(x)

    def loss_mixture(self, probabilities, inputs, labels) -> Tensor:
        return softmax_cross_entropy(
            self.forward_mixture(probabilities, inputs), labels
        )

    #: Sub-network evaluations implied by one mixture forward: every
    #: activation branch of every layer runs (width mixtures fold into a
    #: mask).  One discrete forward counts as 1.
    @property
    def mixture_branch_count(self) -> int:
        return self.config.num_layers * len(self.config.activation_choices)
