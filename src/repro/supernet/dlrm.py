"""DLRM weight-sharing super-network (Figure 3 of the paper).

This is the paper's first-of-a-kind super-network for RL-based one-shot
NAS on recommendation models, with *hybrid* weight sharing:

* fine-grained over embedding widths — one table at the maximum width
  per vocabulary candidate; narrower candidates mask all but the first
  ``D`` columns (point (1) in Figure 3);
* coarse-grained over vocabulary sizes — each vocabulary-size option
  has its own table, avoiding harmful interference between candidates
  that address rows differently (point (2));
* fine-grained over MLP widths — one weight matrix at the maximum
  input/output size per layer; smaller candidates keep the upper-left
  sub-matrix (point (3));
* fine-grained over low-rank factorization — shared factor matrices
  whose active rank is masked per candidate (point (4)).

The super-network consumes architectures from
:func:`repro.searchspace.dlrm_search_space` (with matching table/stack
counts) and CTR batches from :mod:`repro.data`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn import (
    Dense,
    MaskedEmbedding,
    Module,
    Tensor,
    bce_with_logits,
    binary_accuracy,
    concatenate,
)
from ..searchspace.base import Architecture
from ..searchspace.dlrm import (
    EMBEDDING_WIDTH_DELTAS,
    VOCAB_SCALES,
    DENSE_DEPTH_DELTAS,
    DENSE_WIDTH_DELTAS,
)
from .batching import StackedScoringMixin
from .elastic import ElasticMlp, elastic_width

#: Width quantum of embedding and MLP width deltas ("minimal increment of 8").
WIDTH_INCREMENT = 8


@dataclass(frozen=True)
class DlrmSupernetConfig:
    """Baseline DLRM the super-network is built around.

    ``num_dense_stacks`` must be 2 — stack 0 is the bottom MLP (dense
    features), stack 1 the top MLP (after feature interaction).  The
    search space may carry more stacks for cardinality studies, but the
    trainable super-network is the classic two-stack DLRM.
    """

    num_tables: int = 4
    base_vocab: int = 64
    base_embedding_width: int = 32
    num_dense_features: int = 8
    base_bottom_width: int = 48
    base_bottom_depth: int = 2
    base_top_width: int = 48
    base_top_depth: int = 2
    #: "coarse" (the paper's design): one table per vocabulary-size
    #: candidate, avoiding harmful interactions.  "fine": a single
    #: shared table; smaller vocabularies wrap ids into its first rows,
    #: so candidates with different vocabularies fight over rows — the
    #: interference the hybrid design exists to avoid (ablated in
    #: benchmarks/bench_ablation_sharing.py).
    vocab_sharing: str = "coarse"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_sharing not in ("coarse", "fine"):
            raise ValueError("vocab_sharing must be 'coarse' or 'fine'")
        if self.base_embedding_width < WIDTH_INCREMENT * 4:
            raise ValueError(
                "base embedding width must leave room for a -3 width delta"
            )
        if min(self.base_bottom_width, self.base_top_width) < WIDTH_INCREMENT * 6:
            raise ValueError("base MLP widths must leave room for a -5 width delta")

    # Derived maxima ---------------------------------------------------
    @property
    def max_embedding_width(self) -> int:
        return self.base_embedding_width + max(EMBEDDING_WIDTH_DELTAS) * WIDTH_INCREMENT

    @property
    def max_bottom_width(self) -> int:
        return self.base_bottom_width + max(DENSE_WIDTH_DELTAS) * WIDTH_INCREMENT

    @property
    def max_top_width(self) -> int:
        return self.base_top_width + max(DENSE_WIDTH_DELTAS) * WIDTH_INCREMENT

    @property
    def max_bottom_depth(self) -> int:
        return self.base_bottom_depth + max(DENSE_DEPTH_DELTAS)

    @property
    def max_top_depth(self) -> int:
        return self.base_top_depth + max(DENSE_DEPTH_DELTAS)

    def embedding_width(self, delta: int) -> int:
        return elastic_width(self.base_embedding_width, delta, WIDTH_INCREMENT)

    def vocab_size(self, scale: float) -> int:
        return max(1, int(round(self.base_vocab * scale)))


class DlrmSuperNetwork(StackedScoringMixin, Module):
    """The hybrid fine/coarse weight-sharing DLRM super-network."""

    #: The forward is pure fused-layer data flow per architecture
    #: (decision-dependent control flow only), so compiled-graph replay
    #: is safe.
    tape_compatible = True

    def __init__(self, config: Optional[DlrmSupernetConfig] = None):
        self.config = config = config or DlrmSupernetConfig()
        rng = np.random.default_rng(config.seed)
        # Coarse-grained over vocab: one table per (table, vocab-scale);
        # fine-grained over width inside each table.  In the "fine"
        # ablation mode every vocab scale shares one table at the
        # largest vocabulary.
        self.embeddings: List[Dict[float, MaskedEmbedding]] = []
        for _ in range(config.num_tables):
            if config.vocab_sharing == "coarse":
                per_scale = {
                    scale: MaskedEmbedding(
                        config.vocab_size(scale), config.max_embedding_width, rng
                    )
                    for scale in VOCAB_SCALES
                }
            else:
                shared = MaskedEmbedding(
                    config.vocab_size(max(VOCAB_SCALES)),
                    config.max_embedding_width,
                    rng,
                )
                per_scale = {scale: shared for scale in VOCAB_SCALES}
            self.embeddings.append(per_scale)
        self.bottom = ElasticMlp(
            input_width=config.num_dense_features,
            max_width=config.max_bottom_width,
            max_depth=config.max_bottom_depth,
            rng=rng,
            width_increment=WIDTH_INCREMENT,
        )
        interaction_width = (
            config.max_bottom_width
            + config.num_tables * config.max_embedding_width
        )
        self.top = ElasticMlp(
            input_width=interaction_width,
            max_width=config.max_top_width,
            max_depth=config.max_top_depth,
            rng=rng,
            width_increment=WIDTH_INCREMENT,
        )
        self.head = Dense(config.max_top_width, 1, rng, activation_name="linear")

    # ------------------------------------------------------------------
    def forward(self, arch: Architecture, inputs: Dict[str, np.ndarray]) -> Tensor:
        """Logits of sub-network ``arch`` on a CTR batch."""
        cfg = self.config
        dense, sparse = inputs["dense"], inputs["sparse"]
        parts: List[Tensor] = []
        # Bottom MLP over dense features.
        bottom_width = self._stack_width(arch, "dense0", cfg.base_bottom_width)
        bottom_depth = self._stack_depth(arch, "dense0", cfg.base_bottom_depth, self.bottom)
        bottom_out = self.bottom(
            Tensor(dense),
            active_width=bottom_width,
            active_depth=bottom_depth,
            low_rank_fraction=float(arch["dense0/low_rank"]),
        )
        parts.append(bottom_out)
        # Embedding lookups (coarse vocab table + fine width mask).  In
        # the fine-sharing ablation, a smaller vocabulary wraps ids into
        # the first rows of the shared table; the wrap happens inside
        # the lookup node so tape replays re-wrap the live id buffer.
        for t in range(cfg.num_tables):
            scale = float(arch[f"emb{t}/vocab_scale"])
            width = cfg.embedding_width(int(arch[f"emb{t}/width_delta"]))
            table = self.embeddings[t][scale]
            wrap = cfg.vocab_size(scale) if cfg.vocab_sharing == "fine" else None
            parts.append(table(sparse[:, t], active_width=width, wrap=wrap))
        interaction = concatenate(parts, axis=-1)
        # Top MLP over the interaction vector.
        top_width = self._stack_width(arch, "dense1", cfg.base_top_width)
        top_depth = self._stack_depth(arch, "dense1", cfg.base_top_depth, self.top)
        top_out = self.top(
            interaction,
            active_width=top_width,
            active_depth=top_depth,
            low_rank_fraction=float(arch["dense1/low_rank"]),
        )
        return self.head(top_out)

    def loss_from_logits(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return bce_with_logits(logits, labels)

    def quality_from_logits(self, logits: Tensor, labels: np.ndarray) -> float:
        """Label accuracy from logits (the quality signal Q)."""
        return binary_accuracy(logits, labels)

    # ------------------------------------------------------------------
    def _stack_width(self, arch: Architecture, prefix: str, base: int) -> int:
        return elastic_width(
            base, int(arch[f"{prefix}/width_delta"]), WIDTH_INCREMENT
        )

    def _stack_depth(
        self, arch: Architecture, prefix: str, base: int, stack: ElasticMlp
    ) -> int:
        depth = base + int(arch[f"{prefix}/depth_delta"])
        return min(stack.max_depth, max(1, depth))
