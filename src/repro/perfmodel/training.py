"""Two-phase training of the performance model (Section 6.2.2 / Table 1).

Phase 1 — **pre-training**: sample many architectures from the search
space, simulate each on the (cheap, CPU-only) performance simulator,
and fit the MLP to the simulated log-times.  Phase 2 — **fine-tuning**:
measure O(20) candidates on the hardware testbed and fine-tune the same
MLP, at a lower learning rate, onto real measurements.  Because the
simulator-vs-hardware gap is systematic and smooth, ~20 points suffice
to close it — the effect Table 1 quantifies (NRMSE 14.7%-42.9% before
fine-tuning, 1.05%-3.08% after).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Adam
from ..searchspace.base import Architecture, SearchSpace
from .metrics import nrmse
from .model import PerformanceModel

#: (train_time_s, serve_time_s) of one architecture.
TimePair = Tuple[float, float]
TimingFn = Callable[[Architecture], TimePair]


def _sweep_timings(
    archs: Sequence[Architecture], timing_fn: TimingFn, num_workers: int
) -> List[TimePair]:
    """Run ``timing_fn`` over ``archs``, optionally on a thread pool.

    The parallel path splits the sweep into ``num_workers`` contiguous
    chunks and concatenates the chunk results, so the output order is
    the input order regardless of thread scheduling.
    """
    if num_workers <= 1 or len(archs) <= 1:
        return [timing_fn(a) for a in archs]
    workers = min(num_workers, len(archs))
    chunk_size = (len(archs) + workers - 1) // workers
    chunks = [archs[i : i + chunk_size] for i in range(0, len(archs), chunk_size)]

    def run_chunk(chunk: Sequence[Architecture]) -> List[TimePair]:
        return [timing_fn(a) for a in chunk]

    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(run_chunk, chunks))
    return [pair for chunk_result in results for pair in chunk_result]


@dataclass
class PhaseReport:
    """Fit statistics of one training phase."""

    num_samples: int
    epochs: int
    final_loss: float
    nrmse_train_head: float
    nrmse_serve_head: float


@dataclass(frozen=True)
class TwoPhaseConfig:
    """Hyper-parameters of the two-phase training procedure.

    The defaults scale the paper's recipe down to CPU budgets: the
    paper pre-trains on one million simulator samples; the sample count
    here is a constructor argument of :meth:`TwoPhaseTrainer.pretrain`.
    """

    pretrain_epochs: int = 60
    pretrain_lr: float = 1e-3
    pretrain_batch: int = 256
    finetune_epochs: int = 200
    finetune_lr: float = 1e-4
    #: worker threads for the pre-training simulator sweep (1 = serial).
    #: Only the simulator phase parallelizes: ``simulate`` is a pure
    #: function of the architecture, so the sweep is order-preserving
    #: and deterministic at any worker count.
    num_workers: int = 1

    def __post_init__(self) -> None:
        if self.pretrain_epochs < 1 or self.finetune_epochs < 1:
            raise ValueError("epoch counts must be >= 1")
        if self.pretrain_lr <= 0 or self.finetune_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")


class TwoPhaseTrainer:
    """Orchestrates pretrain-on-simulator then finetune-on-hardware."""

    def __init__(
        self,
        model: PerformanceModel,
        space: SearchSpace,
        simulate_fn: TimingFn,
        measure_fn: TimingFn,
        config: Optional[TwoPhaseConfig] = None,
        seed: int = 0,
    ):
        self.model = model
        self.space = space
        self.simulate_fn = simulate_fn
        self.measure_fn = measure_fn
        self.config = config if config is not None else TwoPhaseConfig()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample_dataset(
        self, count: int, timing_fn: TimingFn, num_workers: int = 1
    ) -> Tuple[List[Architecture], np.ndarray]:
        """Sample ``count`` architectures and collect their timings.

        With ``num_workers > 1`` the timing sweep runs on a thread pool
        in contiguous chunks, one chunk per worker, and reassembles the
        results in sample order — bit-identical to the serial sweep for
        any pure ``timing_fn``.  Sampling itself stays serial so the rng
        stream is independent of the worker count.
        """
        archs = [self.space.sample(self._rng) for _ in range(count)]
        times = np.array(
            _sweep_timings(archs, timing_fn, num_workers), dtype=np.float64
        )
        return archs, times

    def pretrain(self, num_samples: int) -> PhaseReport:
        """Phase 1: fit the MLP to simulator timings."""
        archs, times = self.sample_dataset(
            num_samples, self.simulate_fn, num_workers=self.config.num_workers
        )
        log_times = np.log(times)
        self.model.set_normalization(log_times.mean(axis=0), log_times.std(axis=0))
        return self._fit(
            archs,
            times,
            epochs=self.config.pretrain_epochs,
            lr=self.config.pretrain_lr,
            batch=self.config.pretrain_batch,
        )

    def finetune(self, num_samples: int = 20) -> PhaseReport:
        """Phase 2: fine-tune on O(20) hardware measurements.

        The simulator-vs-hardware gap is dominated by a systematic
        log-affine component (calibration scale and mild super-linear
        exponent), so fine-tuning first solves a closed-form per-head
        affine correction of the output layer on the measurements, then
        runs low-learning-rate gradient steps to absorb the remaining
        shape differences.
        """
        archs, times = self.sample_dataset(num_samples, self.measure_fn)
        self._affine_head_correction(archs, times)
        return self._fit(
            archs,
            times,
            epochs=self.config.finetune_epochs,
            lr=self.config.finetune_lr,
            batch=max(4, num_samples),
        )

    def _affine_head_correction(self, archs: Sequence[Architecture], times: np.ndarray) -> None:
        """Least-squares per-head affine recalibration of the output layer."""
        features = self.model.encoder.encode_batch(archs)
        predictions = self.model.forward(features).data  # normalized space
        targets = self.model.normalize_targets(np.log(times))
        head = self.model.mlp.head
        for column in range(predictions.shape[1]):
            x = predictions[:, column]
            y = targets[:, column]
            design = np.stack([x, np.ones_like(x)], axis=1)
            (slope, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
            head.weight.data[:, column] *= slope
            if head.bias is not None:
                head.bias.data[column] = slope * head.bias.data[column] + intercept

    def evaluate(self, count: int, timing_fn: Optional[TimingFn] = None) -> Tuple[float, float]:
        """NRMSE of both heads against ``timing_fn`` (default: hardware)."""
        timing_fn = timing_fn or self.measure_fn
        archs, times = self.sample_dataset(count, timing_fn)
        predicted = self.model.predict_times(archs)
        return (
            nrmse(predicted[:, 0], times[:, 0]),
            nrmse(predicted[:, 1], times[:, 1]),
        )

    # ------------------------------------------------------------------
    def _fit(
        self,
        archs: Sequence[Architecture],
        times: np.ndarray,
        epochs: int,
        lr: float,
        batch: int,
    ) -> PhaseReport:
        features = self.model.encoder.encode_batch(archs)
        log_targets = self.model.normalize_targets(np.log(times))
        optimizer = Adam(self.model.parameters(), lr=lr)
        n = features.shape[0]
        final_loss = float("nan")
        for _ in range(epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                optimizer.zero_grad()
                loss = self.model.training_loss(features[idx], log_targets[idx])
                loss.backward()
                optimizer.step()
                final_loss = loss.item()
        predicted = np.exp(
            self.model.forward(features).data * self.model.log_std
            + self.model.log_mean
        )
        return PhaseReport(
            num_samples=n,
            epochs=epochs,
            final_loss=final_loss,
            nrmse_train_head=nrmse(predicted[:, 0], times[:, 0]),
            nrmse_serve_head=nrmse(predicted[:, 1], times[:, 1]),
        )
