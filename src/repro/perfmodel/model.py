"""Dual-head MLP performance model (Section 6.2.1).

The model is "an MLP with variable layers and neurons per layer" whose
inputs are architecture hyper-parameters and whose outputs are
performance metrics; it "has dual heads, to predict both training and
serving performance", plus "an analytical objective output to predict
model size" that needs no learning.

Predictions are made in log-time space: hardware runtimes span orders
of magnitude across a search space, and the relative (percentage)
errors Table 1 reports correspond to additive errors in log space.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..nn import MLP, Tensor, mse
from ..nn.tape import TapeCache, compile_graph, tape_enabled
from ..searchspace.base import Architecture
from .features import ArchitectureEncoder

#: Output head order of the MLP.
HEAD_TRAIN = 0
HEAD_SERVE = 1

SizeFn = Callable[[Architecture], float]


class PerformanceModel:
    """MLP over architecture features with train/serve heads."""

    def __init__(
        self,
        encoder: ArchitectureEncoder,
        hidden_sizes: Sequence[int] = (512, 512),
        size_fn: Optional[SizeFn] = None,
        seed: int = 0,
    ):
        self.encoder = encoder
        self.size_fn = size_fn
        rng = np.random.default_rng(seed)
        self.mlp = MLP(encoder.num_features, hidden_sizes, 2, rng)
        # Log-target normalization, fixed during pre-training so the MLP
        # regresses a zero-mean unit-variance quantity.
        self.log_mean = np.zeros(2)
        self.log_std = np.ones(2)

    # ------------------------------------------------------------------
    def set_normalization(self, log_mean: np.ndarray, log_std: np.ndarray) -> None:
        """Fix the output normalization (called once, at pre-training)."""
        log_std = np.asarray(log_std, dtype=np.float64)
        if np.any(log_std <= 0):
            log_std = np.maximum(log_std, 1e-6)
        self.log_mean = np.asarray(log_mean, dtype=np.float64)
        self.log_std = log_std

    def normalize_targets(self, log_times: np.ndarray) -> np.ndarray:
        return (log_times - self.log_mean) / self.log_std

    def forward(self, features: np.ndarray) -> Tensor:
        """Normalized log-time predictions, shape ``(batch, 2)``."""
        return self.mlp(Tensor(features))

    def training_loss(self, features: np.ndarray, targets: np.ndarray) -> Tensor:
        """MSE of the MLP against normalized log-time ``targets``.

        The model's topology is fixed, so the forward+loss graph is
        compiled once per ``(features, targets)`` shape pair and
        replayed with fresh minibatches — the same tape reuse the
        super-networks get, applied to the trainer's epoch loop.
        """
        if not tape_enabled():
            return mse(self.forward(features), targets)
        cache = getattr(self, "_tapes", None)
        if cache is None:
            cache = self._tapes = TapeCache(capacity=8)
        arrays = {
            "features": np.asarray(features),
            "targets": np.asarray(targets),
        }
        key = (arrays["features"].shape, arrays["targets"].shape)

        def factory():
            def build(buffers):
                return mse(self.forward(buffers["features"]), buffers["targets"])

            return compile_graph(build, arrays)

        return cache.get_or_build(key, factory).run(arrays)

    def tape_stats(self) -> Dict[str, int]:
        """Counters of the compiled-graph cache (zeros before first use)."""
        cache = getattr(self, "_tapes", None)
        if cache is None:
            return {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        return cache.stats()

    def predict_log_times(self, archs: Sequence[Architecture]) -> np.ndarray:
        features = self.encoder.encode_batch(archs)
        return self.forward(features).data * self.log_std + self.log_mean

    def predict(self, arch: Architecture) -> Dict[str, float]:
        """Performance metrics of one architecture.

        Returns ``train_step_time`` and ``serving_latency`` in seconds
        and, when a size function was provided, ``model_size`` in bytes
        (computed analytically, exactly as the paper's size head).
        """
        return self.predict_many([arch])[0]

    def predict_many(
        self, archs: Sequence[Architecture]
    ) -> List[Dict[str, float]]:
        """Metric mappings for a whole shard, from one MLP forward.

        All architectures are encoded in one ``encode_batch`` and priced
        in a single forward pass — the O(ms)-per-shard pricing the
        search hot path relies on.  Per-arch output matches
        :meth:`predict`.
        """
        log_times = self.predict_log_times(archs)
        results: List[Dict[str, float]] = []
        for arch, row in zip(archs, log_times):
            metrics = {
                "train_step_time": float(np.exp(row[HEAD_TRAIN])),
                "serving_latency": float(np.exp(row[HEAD_SERVE])),
            }
            if self.size_fn is not None:
                metrics["model_size"] = float(self.size_fn(arch))
            results.append(metrics)
        return results

    # The model itself is a BatchPerformanceFn: pass it as a search's
    # ``performance_fn`` and the evaluation runtime prices every cache
    # miss of a shard through one batched forward.
    __call__ = predict
    price_batch = predict_many

    def predict_times(self, archs: Sequence[Architecture]) -> np.ndarray:
        """Vectorized ``(batch, 2)`` matrix of (train, serve) seconds."""
        return np.exp(self.predict_log_times(archs))

    def parameters(self):
        return self.mlp.parameters()

    def zero_grad(self) -> None:
        self.mlp.zero_grad()
