"""Accuracy metrics for the performance model (Table 1 uses NRMSE)."""

from __future__ import annotations

import numpy as np


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shapes differ")
    if predictions.size == 0:
        raise ValueError("empty inputs")
    return float(np.sqrt(np.mean((predictions - targets) ** 2)))


def nrmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root-mean-square error normalized by the mean target magnitude."""
    targets = np.asarray(targets, dtype=np.float64)
    denom = float(np.mean(np.abs(targets)))
    if denom == 0:
        raise ValueError("targets have zero mean magnitude")
    return rmse(predictions, targets) / denom


def mean_relative_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean of |pred - target| / |target| (per-sample relative error)."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if np.any(targets == 0):
        raise ValueError("targets must be nonzero")
    return float(np.mean(np.abs(predictions - targets) / np.abs(targets)))
