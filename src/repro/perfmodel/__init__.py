"""Two-phase hybrid performance model (Section 6.2 of the paper)."""

from .features import ArchitectureEncoder
from .metrics import mean_relative_error, nrmse, rmse
from .model import PerformanceModel
from .training import PhaseReport, TwoPhaseConfig, TwoPhaseTrainer

__all__ = [
    "ArchitectureEncoder",
    "PerformanceModel",
    "PhaseReport",
    "TwoPhaseConfig",
    "TwoPhaseTrainer",
    "mean_relative_error",
    "nrmse",
    "rmse",
]
