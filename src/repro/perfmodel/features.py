"""Architecture feature encoding for the performance model.

The performance model's inputs are "the model architecture
hyper-parameters as shown in Table 5" (Section 6.2.1).  We encode an
architecture as the concatenated one-hot vectors of its categorical
decisions — the exact information the RL controller injects per search
step — plus, for numeric decisions, a normalized scalar channel that
helps the MLP interpolate between ordered choices.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..searchspace.base import Architecture, SearchSpace


class ArchitectureEncoder:
    """Encodes architectures of one search space as feature vectors.

    The per-decision layout (one-hot offset, numeric channel offset,
    choice-index table, normalization) is precomputed once so encoding
    a whole shard is a few vectorized scatters per decision rather than
    per-architecture array construction — ``encode_batch`` sits on the
    batched-pricing hot path.
    """

    def __init__(self, space: SearchSpace):
        self.space = space
        self._numeric: List[bool] = [
            all(isinstance(c, (int, float)) and not isinstance(c, bool) for c in d.choices)
            for d in space.decisions
        ]
        self._spans: List[float] = []
        self._minimums: List[float] = []
        for decision, numeric in zip(space.decisions, self._numeric):
            if numeric:
                values = [float(c) for c in decision.choices]
                span = max(values) - min(values)
                self._spans.append(span if span > 0 else 1.0)
                self._minimums.append(min(values))
            else:
                self._spans.append(1.0)
                self._minimums.append(0.0)
        # Feature-vector layout: each decision's one-hot block, followed
        # (for numeric decisions) by one normalized scalar channel.
        self._onehot_offsets: List[int] = []
        self._scalar_offsets: List[int] = []
        self._index_of: List[dict] = []
        offset = 0
        for decision, numeric in zip(space.decisions, self._numeric):
            self._onehot_offsets.append(offset)
            offset += decision.num_choices
            self._scalar_offsets.append(offset if numeric else -1)
            if numeric:
                offset += 1
            self._index_of.append({c: i for i, c in enumerate(decision.choices)})
        self._num_features = offset

    @property
    def num_features(self) -> int:
        return self._num_features

    def encode(self, arch: Architecture) -> np.ndarray:
        """Feature vector of one architecture."""
        return self.encode_batch([arch])[0]

    def encode_batch(self, archs) -> np.ndarray:
        """Feature matrix ``(len(archs), num_features)``."""
        archs = list(archs)
        features = np.zeros((len(archs), self._num_features))
        if not archs:
            return features
        rows = np.arange(len(archs))
        for decision, numeric, span, minimum, onehot_offset, scalar_offset, table in zip(
            self.space.decisions,
            self._numeric,
            self._spans,
            self._minimums,
            self._onehot_offsets,
            self._scalar_offsets,
            self._index_of,
        ):
            name = decision.name
            values = [arch[name] for arch in archs]
            indices = np.fromiter(
                (
                    table[v] if v in table else decision.index_of(v)
                    for v in values
                ),
                dtype=np.intp,
                count=len(values),
            )
            features[rows, onehot_offset + indices] = 1.0
            if numeric:
                features[:, scalar_offset] = (
                    np.asarray(values, dtype=np.float64) - minimum
                ) / span
        return features
