"""Architecture feature encoding for the performance model.

The performance model's inputs are "the model architecture
hyper-parameters as shown in Table 5" (Section 6.2.1).  We encode an
architecture as the concatenated one-hot vectors of its categorical
decisions — the exact information the RL controller injects per search
step — plus, for numeric decisions, a normalized scalar channel that
helps the MLP interpolate between ordered choices.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..searchspace.base import Architecture, SearchSpace


class ArchitectureEncoder:
    """Encodes architectures of one search space as feature vectors."""

    def __init__(self, space: SearchSpace):
        self.space = space
        self._numeric: List[bool] = [
            all(isinstance(c, (int, float)) and not isinstance(c, bool) for c in d.choices)
            for d in space.decisions
        ]
        self._spans: List[float] = []
        for decision, numeric in zip(space.decisions, self._numeric):
            if numeric:
                values = [float(c) for c in decision.choices]
                span = max(values) - min(values)
                self._spans.append(span if span > 0 else 1.0)
            else:
                self._spans.append(1.0)

    @property
    def num_features(self) -> int:
        onehot = sum(d.num_choices for d in self.space.decisions)
        numeric = sum(self._numeric)
        return onehot + numeric

    def encode(self, arch: Architecture) -> np.ndarray:
        """Feature vector of one architecture."""
        parts: List[np.ndarray] = []
        for decision, numeric, span in zip(
            self.space.decisions, self._numeric, self._spans
        ):
            value = arch[decision.name]
            onehot = np.zeros(decision.num_choices)
            onehot[decision.index_of(value)] = 1.0
            parts.append(onehot)
            if numeric:
                values = [float(c) for c in decision.choices]
                normalized = (float(value) - min(values)) / span
                parts.append(np.array([normalized]))
        return np.concatenate(parts)

    def encode_batch(self, archs) -> np.ndarray:
        """Feature matrix ``(len(archs), num_features)``."""
        return np.stack([self.encode(a) for a in archs])
