"""CNN timing: lower CNN-space architectures to simulator op graphs.

Consumes architectures from :func:`repro.searchspace.cnn_search_space`
— block type, kernel, stride, expansion, squeeze-and-excite, skip,
tensor reshaping, depth/width deltas, and the global input resolution —
relative to an EfficientNet-style staged baseline, and prices them on
any :class:`~repro.hardware.config.HardwareConfig`.

Tensor reshaping follows the search space's hardware intent:

* ``space_to_depth`` trades spatial extent for channel depth
  (H, W, C) -> (H/2, W/2, 4C), deepening thin early layers so they can
  fill the matrix unit;
* ``space_to_batch`` folds spatial tiles into the batch dimension,
  (B, H, W) -> (4B, H/2, W/2), improving the streaming-dimension
  utilization instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..graph.ir import OpGraph
from ..graph import ops
from ..hardware.config import GPU_V100, HardwareConfig, TPU_V4, TPU_V4I
from ..hardware.simulator import PerformanceSimulator
from ..hardware.testbed import HardwareTestbed
from ..searchspace.base import Architecture
from .mbconv import MbconvSpec, add_mbconv, block_params

#: Channel quantum of the width deltas (the model-dependent X of Table 5).
WIDTH_QUANTUM = 8
DTYPE_BYTES = 2.0


@dataclass(frozen=True)
class CnnBaseline:
    """Staged baseline the CNN search space's deltas are relative to."""

    name: str = "cnn_baseline"
    stage_widths: Tuple[int, ...] = (24, 48, 96, 136)
    stage_depths: Tuple[int, ...] = (2, 2, 3, 3)
    stem_width: int = 24
    num_classes: int = 1000

    def __post_init__(self) -> None:
        if len(self.stage_widths) != len(self.stage_depths):
            raise ValueError("stage widths and depths must align")
        if any(w < WIDTH_QUANTUM for w in self.stage_widths):
            raise ValueError("stage widths must be at least one quantum")

    @property
    def num_blocks(self) -> int:
        return len(self.stage_widths)


def resolve_stage(baseline: CnnBaseline, arch: Architecture, block: int) -> Dict:
    """Concrete stage parameters for ``block`` under ``arch``."""
    width = baseline.stage_widths[block] + WIDTH_QUANTUM * int(
        arch[f"block{block}/width_delta"]
    )
    depth = baseline.stage_depths[block] + int(arch[f"block{block}/depth_delta"])
    return {
        "block_type": str(arch[f"block{block}/type"]),
        "kernel": int(arch[f"block{block}/kernel"]),
        "stride": int(arch[f"block{block}/stride"]),
        "expansion": int(arch[f"block{block}/expansion"]),
        "se_ratio": float(arch[f"block{block}/se_ratio"]),
        "skip": str(arch[f"block{block}/skip"]),
        "reshaping": str(arch[f"block{block}/reshaping"]),
        "width": max(WIDTH_QUANTUM, width),
        "depth": max(1, depth),
    }


def build_cnn_graph(
    baseline: CnnBaseline, arch: Architecture, batch: int = 8
) -> OpGraph:
    """Lower ``arch`` (over ``baseline``) to an operator graph."""
    graph = OpGraph(f"{baseline.name}_candidate")
    resolution = int(arch["resolution"]) if "resolution" in arch else 224
    stem = ops.conv2d("stem", resolution, resolution, 3, baseline.stem_width, 3, 2, batch)
    graph.add(stem)
    last = stem.name
    h = w = max(1, resolution // 2)
    cin = baseline.stem_width
    current_batch = batch
    for block in range(baseline.num_blocks):
        stage = resolve_stage(baseline, arch, block)
        last, h, w, cin, current_batch = _add_reshaping(
            graph, f"b{block}/reshape", stage["reshaping"], last, h, w, cin, current_batch
        )
        for layer in range(stage["depth"]):
            spec = MbconvSpec(
                block_type=stage["block_type"],
                cin=cin if layer == 0 else stage["width"],
                cout=stage["width"],
                kernel=stage["kernel"],
                stride=stage["stride"] if layer == 0 else 1,
                expansion=stage["expansion"],
                se_ratio=stage["se_ratio"],
                skip=stage["skip"],
            )
            last, h, w = add_mbconv(
                graph, f"b{block}l{layer}", spec, h, w, current_batch, last
            )
        cin = stage["width"]
    pool = ops.pooling("avg_pool", h, w, cin, max(h, 1), current_batch)
    graph.add(pool, deps=[last])
    head = ops.dense("classifier", current_batch, cin, baseline.num_classes)
    graph.add(head, deps=["avg_pool"])
    return graph


def _add_reshaping(
    graph: OpGraph,
    name: str,
    kind: str,
    last: str,
    h: int,
    w: int,
    channels: int,
    batch: int,
) -> Tuple[str, int, int, int, int]:
    """Emit the chosen tensor-reshaping op and update the dims."""
    if kind == "none" or h < 2 or w < 2:
        return last, h, w, channels, batch
    moved = batch * h * w * channels * DTYPE_BYTES
    node = ops.concat(name, batch * h * w * channels)
    node = replace(node, name=name, op_type=f"reshape_{kind}")
    graph.add(node, deps=[last])
    if kind == "space_to_depth":
        return node.name, h // 2, w // 2, channels * 4, batch
    if kind == "space_to_batch":
        return node.name, h // 2, w // 2, channels, batch * 4
    raise ValueError(f"unknown reshaping {kind!r}")


def num_params(baseline: CnnBaseline, arch: Architecture) -> float:
    """Trainable parameter count of the candidate."""
    total = 3 * 3 * 3 * baseline.stem_width
    cin = baseline.stem_width
    channel_gain = 1
    for block in range(baseline.num_blocks):
        stage = resolve_stage(baseline, arch, block)
        if stage["reshaping"] == "space_to_depth":
            cin *= 4
        for layer in range(stage["depth"]):
            spec = MbconvSpec(
                block_type=stage["block_type"],
                cin=cin if layer == 0 else stage["width"],
                cout=stage["width"],
                kernel=stage["kernel"],
                expansion=stage["expansion"],
                se_ratio=stage["se_ratio"],
            )
            total += block_params(spec)
        cin = stage["width"]
    total += cin * baseline.num_classes
    return float(total)


class CnnTimingHarness:
    """Times CNN-space candidates for training and serving."""

    def __init__(
        self,
        baseline: CnnBaseline = CnnBaseline(),
        train_hw: HardwareConfig = TPU_V4,
        serve_hw: HardwareConfig = TPU_V4I,
        train_batch: int = 64,
        serve_batch: int = 8,
        seed: int = 0,
    ):
        self.baseline = baseline
        self.train_batch = train_batch
        self.serve_batch = serve_batch
        self._train_sim = PerformanceSimulator(train_hw)
        self._serve_sim = PerformanceSimulator(serve_hw)
        self._train_bed = HardwareTestbed(train_hw, seed=seed)
        self._serve_bed = HardwareTestbed(serve_hw, seed=seed + 1)

    def simulate(self, arch: Architecture) -> Tuple[float, float]:
        """(train_step_time, serving_latency) from the clean simulator."""
        train = build_cnn_graph(self.baseline, arch, batch=self.train_batch)
        serve = build_cnn_graph(self.baseline, arch, batch=self.serve_batch)
        return (
            self._train_sim.simulate(train).total_time_s,
            self._serve_sim.simulate(serve).total_time_s,
        )

    def measure(self, arch: Architecture) -> Tuple[float, float]:
        """(train_step_time, serving_latency) from the hardware testbed."""
        train = build_cnn_graph(self.baseline, arch, batch=self.train_batch)
        serve = build_cnn_graph(self.baseline, arch, batch=self.serve_batch)
        return (
            self._train_bed.measure_time(train),
            self._serve_bed.measure_time(serve),
        )

    def measure_deterministic(self, arch: Architecture) -> Tuple[float, float]:
        """Noise-free testbed times (for evaluation sweeps)."""
        train = build_cnn_graph(self.baseline, arch, batch=self.train_batch)
        serve = build_cnn_graph(self.baseline, arch, batch=self.serve_batch)
        return (
            self._train_bed.deterministic_time(train),
            self._serve_bed.deterministic_time(serve),
        )

    def model_size(self, arch: Architecture) -> float:
        """Serving memory footprint in bytes."""
        return num_params(self.baseline, arch) * DTYPE_BYTES

    def metrics_from_simulator(self, arch: Architecture) -> Dict[str, float]:
        """A performance_fn for searches, backed by the simulator."""
        train_time, serve_time = self.simulate(arch)
        return {
            "train_step_time": train_time,
            "serving_latency": serve_time,
            "model_size": self.model_size(arch),
        }
