"""DLRM embedding-table sharding across accelerator chips.

Production DLRMs shard their embedding tables across the training
slice (Section 5.1: "embedding layers are usually distributed across
ML accelerators") and the paper's simulator models "model sharding and
partitioning" (Section 6.2.3).  This module plans that sharding:

* tables are assigned to chips by greedy balanced partitioning of
  their *bandwidth load* (lookup bytes per step — the quantity that
  serializes within a chip's memory system);
* every chip gathers its local tables' rows and exchanges them with
  all other chips (the all-to-all), so the per-step embedding time is
  the *max over chips* of local gather time plus the all-to-all;
* a plan also checks per-chip HBM capacity, the launch constraint that
  makes model size a search objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..hardware.config import HardwareConfig, TPU_V4
from .dlrm import DlrmModelSpec, TableSpec

EMBEDDING_DTYPE_BYTES = 4.0


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of embedding tables to chips."""

    num_chips: int
    #: per-chip tuple of table indices
    assignments: Tuple[Tuple[int, ...], ...]
    #: per-chip resident embedding bytes
    resident_bytes: Tuple[float, ...]
    #: per-chip lookup traffic per step (bytes)
    lookup_bytes: Tuple[float, ...]

    @property
    def max_resident_bytes(self) -> float:
        return max(self.resident_bytes)

    @property
    def load_imbalance(self) -> float:
        """Max over mean lookup-load ratio (1.0 = perfectly balanced)."""
        mean = sum(self.lookup_bytes) / self.num_chips
        if mean == 0:
            return 1.0
        return max(self.lookup_bytes) / mean

    def fits_memory(self, hw: HardwareConfig) -> bool:
        """Whether every chip's resident tables fit its HBM."""
        return hw.fits_memory(self.max_resident_bytes)


def _table_loads(spec: DlrmModelSpec) -> List[Tuple[float, float, int]]:
    """(lookup_bytes, resident_bytes, table_index) per table."""
    loads = []
    for index, table in enumerate(spec.tables):
        lookup = spec.batch * spec.lookups_per_table * table.width * EMBEDDING_DTYPE_BYTES
        loads.append((lookup, table.param_bytes, index))
    return loads


def plan_sharding(spec: DlrmModelSpec, num_chips: int) -> ShardPlan:
    """Greedy balanced partition of ``spec``'s tables over ``num_chips``.

    Tables are placed largest-lookup-load first onto the currently
    least-loaded chip — the classic LPT heuristic, within 4/3 of the
    optimal makespan.
    """
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    assignments: List[List[int]] = [[] for _ in range(num_chips)]
    lookup_bytes = [0.0] * num_chips
    resident_bytes = [0.0] * num_chips
    for lookup, resident, index in sorted(_table_loads(spec), reverse=True):
        chip = min(range(num_chips), key=lambda c: lookup_bytes[c])
        assignments[chip].append(index)
        lookup_bytes[chip] += lookup
        resident_bytes[chip] += resident
    return ShardPlan(
        num_chips=num_chips,
        assignments=tuple(tuple(a) for a in assignments),
        resident_bytes=tuple(resident_bytes),
        lookup_bytes=tuple(lookup_bytes),
    )


@dataclass(frozen=True)
class ShardedEmbeddingTime:
    """Per-step embedding-pipeline time under a shard plan."""

    gather_time_s: float  # slowest chip's local gathers
    all_to_all_time_s: float  # exchanging rows with every other chip

    @property
    def total_s(self) -> float:
        return self.gather_time_s + self.all_to_all_time_s


def embedding_step_time(
    spec: DlrmModelSpec, plan: ShardPlan, hw: HardwareConfig = TPU_V4
) -> ShardedEmbeddingTime:
    """Embedding time per training step under ``plan`` on ``hw``.

    Gathers read and write each looked-up row locally (2x lookup
    bytes over HBM); the all-to-all then redistributes a
    ``(num_chips - 1) / num_chips`` fraction of the gathered rows over
    the interconnect (rows destined for the local chip stay put).
    """
    slowest_lookup = max(plan.lookup_bytes)
    gather = 2.0 * slowest_lookup / hw.hbm_bandwidth
    if plan.num_chips == 1:
        return ShardedEmbeddingTime(gather_time_s=gather, all_to_all_time_s=0.0)
    remote_fraction = (plan.num_chips - 1) / plan.num_chips
    a2a = slowest_lookup * remote_fraction / hw.ici_bandwidth
    return ShardedEmbeddingTime(gather_time_s=gather, all_to_all_time_s=a2a)


def sharding_sweep(
    spec: DlrmModelSpec,
    chip_counts: Sequence[int],
    hw: HardwareConfig = TPU_V4,
) -> Dict[int, ShardedEmbeddingTime]:
    """Embedding step time across slice sizes (scaling analysis)."""
    if not chip_counts:
        raise ValueError("chip_counts must be non-empty")
    return {
        chips: embedding_step_time(spec, plan_sharding(spec, chips), hw)
        for chips in chip_counts
    }
