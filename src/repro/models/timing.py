"""Timing harnesses: architecture -> model spec -> simulated/measured time.

These tie the search spaces to the hardware substrate: an architecture
sampled by the RL controller is lowered to a concrete model spec, built
into an op graph, and timed either on the clean simulator (pre-training
data for the performance model) or on the hardware testbed (the stand-in
for real-TPU measurement used for fine-tuning and final evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..graph.ir import OpGraph
from ..hardware.config import HardwareConfig, TPU_V4, TPU_V4I
from ..hardware.simulator import PerformanceSimulator
from ..hardware.testbed import HardwareTestbed
from ..searchspace.base import Architecture
from .dlrm import DlrmModelSpec, apply_architecture, build_graph, num_params

EMBEDDING_DTYPE_BYTES = 4.0
SERVING_BATCH = 128


class DlrmTimingHarness:
    """Times DLRM architectures for training and serving."""

    def __init__(
        self,
        baseline: DlrmModelSpec,
        train_hw: HardwareConfig = TPU_V4,
        serve_hw: HardwareConfig = TPU_V4I,
        serving_batch: int = SERVING_BATCH,
        seed: int = 0,
    ):
        self.baseline = baseline
        self.train_hw = train_hw
        self.serve_hw = serve_hw
        self.serving_batch = serving_batch
        self._train_sim = PerformanceSimulator(train_hw)
        self._serve_sim = PerformanceSimulator(serve_hw)
        self._train_bed = HardwareTestbed(train_hw, seed=seed)
        self._serve_bed = HardwareTestbed(serve_hw, seed=seed + 1)

    # ------------------------------------------------------------------
    def spec_of(self, arch: Architecture) -> DlrmModelSpec:
        """Lower an architecture to a concrete model spec."""
        return apply_architecture(self.baseline, arch)

    def _graphs(self, arch: Architecture) -> Tuple[OpGraph, OpGraph]:
        spec = self.spec_of(arch)
        serving_spec = replace(
            spec,
            name=spec.name + "_serving",
            batch=self.serving_batch,
            distributed=False,
        )
        return build_graph(spec), build_graph(serving_spec)

    # ------------------------------------------------------------------
    def simulate(self, arch: Architecture) -> Tuple[float, float]:
        """(train_step_time, serving_latency) from the clean simulator."""
        train_graph, serve_graph = self._graphs(arch)
        return (
            self._train_sim.simulate(train_graph).total_time_s,
            self._serve_sim.simulate(serve_graph).total_time_s,
        )

    def measure(self, arch: Architecture) -> Tuple[float, float]:
        """(train_step_time, serving_latency) from the hardware testbed.

        Measurements go through the testbeds' retry/timeout policy;
        retries spent on flaky attempts accumulate on
        :attr:`measurement_retries`.
        """
        train_graph, serve_graph = self._graphs(arch)
        return (
            self._train_bed.measure(train_graph).time_s,
            self._serve_bed.measure(serve_graph).time_s,
        )

    @property
    def measurement_retries(self) -> int:
        """Total measurement retries across both testbeds."""
        return self._train_bed.total_retries + self._serve_bed.total_retries

    @property
    def measurement_timeouts(self) -> int:
        """Total timed-out measurement attempts across both testbeds."""
        return self._train_bed.total_timeouts + self._serve_bed.total_timeouts

    def measure_deterministic(self, arch: Architecture) -> Tuple[float, float]:
        """Noise-free testbed times (for evaluation sweeps)."""
        train_graph, serve_graph = self._graphs(arch)
        return (
            self._train_bed.deterministic_time(train_graph),
            self._serve_bed.deterministic_time(serve_graph),
        )

    def model_size(self, arch: Architecture) -> float:
        """Serving memory footprint in bytes (the analytical size head)."""
        return num_params(self.spec_of(arch)) * EMBEDDING_DTYPE_BYTES

    # ------------------------------------------------------------------
    def metrics_from_simulator(self, arch: Architecture) -> Dict[str, float]:
        """A performance_fn for searches, backed by the simulator."""
        train_time, serve_time = self.simulate(arch)
        return {
            "train_step_time": train_time,
            "serving_latency": serve_time,
            "model_size": self.model_size(arch),
        }
