"""DLRM model builder: spec -> operator graph (Figure 3 / Figure 8).

A production DLRM has sharded embedding tables (memory- and
network-bound) and dense MLP stacks (matrix-unit-bound).  Training
pipelines overlap the two across micro-batches, so the paper accounts
a training step as ``MAX(embedding computing time, DNN computing
time)`` (Figure 8).  The builder reproduces that by emitting the
embedding pipeline and the dense pipeline as parallel branches of the
op graph; the simulator's critical path then takes the slower arm.

``apply_architecture`` maps a DLRM search-space architecture (width /
vocabulary deltas per table, depth / width / low-rank per dense stack)
onto a baseline spec, which is how the search explores real
performance trade-offs through the simulator or performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from ..graph.ir import OpGraph
from ..graph import ops
from ..hardware.simulator import SimulationResult
from ..searchspace.base import Architecture

EMBEDDING_DTYPE_BYTES = 4.0
WIDTH_INCREMENT = 8


@dataclass(frozen=True)
class TableSpec:
    """One embedding table."""

    vocab: int
    width: int

    def __post_init__(self) -> None:
        if self.vocab < 1 or self.width < 1:
            raise ValueError("vocab and width must be positive")

    @property
    def param_bytes(self) -> float:
        return self.vocab * self.width * EMBEDDING_DTYPE_BYTES


@dataclass(frozen=True)
class MlpStackSpec:
    """One dense stack: uniform width, given depth, optional low rank."""

    width: int
    depth: int
    low_rank: float = 1.0  # fraction of width; 1.0 = full-rank

    def __post_init__(self) -> None:
        if self.width < 1 or self.depth < 1:
            raise ValueError("width and depth must be positive")
        if not (0 < self.low_rank <= 1.0):
            raise ValueError("low_rank must be in (0, 1]")


@dataclass(frozen=True)
class DlrmModelSpec:
    """A complete DLRM model plus its execution context."""

    name: str
    tables: Tuple[TableSpec, ...]
    bottom: MlpStackSpec
    top: MlpStackSpec
    num_dense_features: int = 256
    lookups_per_table: int = 32  # multi-hot pooling factor
    batch: int = 4096
    distributed: bool = True  # tables sharded across chips (all-to-all)

    @property
    def embedding_param_bytes(self) -> float:
        return sum(t.param_bytes for t in self.tables)

    @property
    def total_embedding_width(self) -> int:
        return sum(t.width for t in self.tables)


def build_graph(spec: DlrmModelSpec) -> OpGraph:
    """Lower ``spec`` to an op graph with parallel embedding/DNN arms."""
    graph = OpGraph(spec.name)
    source = ops.concat("input", spec.batch * spec.num_dense_features)
    graph.add(source)
    # --- Embedding pipeline (memory + network bound) -------------------
    # Tables are chained: their gathers and all-to-alls contend on the
    # same HBM and interconnect, so they serialize within the pipeline.
    last_emb = "input"
    for i, table in enumerate(spec.tables):
        lookup = ops.embedding_lookup(
            f"emb{i}/lookup",
            lookups=spec.batch * spec.lookups_per_table,
            width=table.width,
            distributed=spec.distributed,
        )
        graph.add(lookup, deps=[last_emb])
        pool = ops.elementwise(
            f"emb{i}/pool",
            spec.batch * spec.lookups_per_table * table.width,
            op_type="pooling_sum",
        )
        graph.add(pool, deps=[lookup.name])
        last_emb = pool.name
    emb_join = ops.concat(
        "emb_join", spec.batch * spec.total_embedding_width
    )
    graph.add(emb_join, deps=[last_emb])
    # --- Dense (DNN) pipeline (matrix-unit bound) -----------------------
    last = _add_mlp(graph, "bottom", spec.bottom, spec.num_dense_features, spec.batch, "input")
    interaction_width = spec.bottom.width + spec.total_embedding_width
    interact = ops.concat("interact", spec.batch * interaction_width)
    graph.add(interact, deps=[last])
    last = _add_mlp(graph, "top", spec.top, interaction_width, spec.batch, "interact")
    head = ops.dense("head", spec.batch, spec.top.width, 1)
    graph.add(head, deps=[last])
    # --- Join: step completes when both pipelines have. ----------------
    sink = ops.elementwise("sink", spec.batch, op_type="sigmoid")
    graph.add(sink, deps=["head", "emb_join"])
    return graph


def _add_mlp(
    graph: OpGraph,
    prefix: str,
    stack: MlpStackSpec,
    input_width: int,
    batch: int,
    after: str,
) -> str:
    last = after
    nin = input_width
    for layer in range(stack.depth):
        if stack.low_rank < 1.0:
            rank = max(1, int(round(stack.low_rank * stack.width)))
            down = ops.dense(f"{prefix}{layer}/lowrank_u", batch, nin, rank)
            graph.add(down, deps=[last])
            up = ops.dense(f"{prefix}{layer}/lowrank_v", batch, rank, stack.width)
            graph.add(up, deps=[down.name])
            last = up.name
        else:
            fc = ops.dense(f"{prefix}{layer}/dense", batch, nin, stack.width)
            graph.add(fc, deps=[last])
            last = fc.name
        act = ops.elementwise(
            f"{prefix}{layer}/act", batch * stack.width, op_type="activation"
        )
        graph.add(act, deps=[last])
        last = act.name
        nin = stack.width
    return last


def num_params(spec: DlrmModelSpec) -> float:
    """Trainable parameter count (embeddings dominate, as in production)."""
    total = sum(t.vocab * t.width for t in spec.tables)
    nin = spec.num_dense_features
    for stack, input_width in (
        (spec.bottom, spec.num_dense_features),
        (spec.top, spec.bottom.width + spec.total_embedding_width),
    ):
        nin = input_width
        for _ in range(stack.depth):
            if stack.low_rank < 1.0:
                rank = max(1, int(round(stack.low_rank * stack.width)))
                total += nin * rank + rank * stack.width
            else:
                total += nin * stack.width
            nin = stack.width
    total += spec.top.width  # head
    return float(total)


def pipeline_times(result: SimulationResult) -> Dict[str, float]:
    """Split a simulated step into embedding vs DNN pipeline times.

    Returns ``{"embedding": t_e, "dnn": t_d, "step": max(t_e, t_d)}`` —
    the paper's Figure 8 accounting.
    """
    emb = sum(
        t.time_s
        for name, t in result.op_timings.items()
        if name.startswith("emb")
    )
    dnn = sum(
        t.time_s
        for name, t in result.op_timings.items()
        if name.startswith(("bottom", "top", "interact", "head"))
    )
    return {"embedding": emb, "dnn": dnn, "step": max(emb, dnn)}


def apply_architecture(
    baseline: DlrmModelSpec, arch: Architecture, name: str = "dlrm_candidate"
) -> DlrmModelSpec:
    """Apply search-space deltas to ``baseline``.

    Expects decisions for every table (``emb{i}/width_delta`` and, when
    searched, ``emb{i}/vocab_scale``) and two dense stacks (``dense0``
    bottom, ``dense1`` top).
    """
    tables: List[TableSpec] = []
    for i, table in enumerate(baseline.tables):
        width = table.width + int(arch[f"emb{i}/width_delta"]) * WIDTH_INCREMENT
        vocab_key = f"emb{i}/vocab_scale"
        vocab = table.vocab
        if vocab_key in arch:
            vocab = max(1, int(round(table.vocab * float(arch[vocab_key]))))
        tables.append(TableSpec(vocab=vocab, width=max(WIDTH_INCREMENT, width)))
    stacks = []
    for key, stack in (("dense0", baseline.bottom), ("dense1", baseline.top)):
        width = stack.width + int(arch[f"{key}/width_delta"]) * WIDTH_INCREMENT
        depth = max(1, stack.depth + int(arch[f"{key}/depth_delta"]))
        stacks.append(
            MlpStackSpec(
                width=max(WIDTH_INCREMENT, width),
                depth=depth,
                low_rank=float(arch[f"{key}/low_rank"]),
            )
        )
    return replace(
        baseline, name=name, tables=tuple(tables), bottom=stacks[0], top=stacks[1]
    )


def baseline_production_dlrm(num_tables: int = 32) -> DlrmModelSpec:
    """A production-scale baseline DLRM (Table 2's DLRM column).

    ~1B embedding parameters and an MLP-dominated step time, leaving
    slack in the embedding pipeline — the load imbalance Figure 8 shows
    the search removing.
    """
    tables = tuple(TableSpec(vocab=1_000_000, width=32) for _ in range(num_tables))
    return DlrmModelSpec(
        name="dlrm_baseline",
        tables=tables,
        bottom=MlpStackSpec(width=2048, depth=3),
        top=MlpStackSpec(width=4096, depth=8),
        num_dense_features=256,
        lookups_per_table=32,
        batch=4096,
    )


def dlrm_h(baseline: DlrmModelSpec) -> DlrmModelSpec:
    """The searched DLRM-H: rebalance embedding vs MLP pipelines.

    The search grows embedding capacity into the idle embedding-pipeline
    slack (better memorization, +0.02% quality) while trimming the
    MLP-bound stack, cutting the MAX(embedding, DNN) step time ~10%.
    """
    tables = tuple(
        TableSpec(vocab=int(t.vocab * 1.25), width=t.width + 16)
        for t in baseline.tables
    )
    return replace(
        baseline,
        name="dlrm_h",
        tables=tables,
        top=replace(baseline.top, depth=baseline.top.depth - 1),
    )
