"""Model families: DLRM, EfficientNet-X/-H, CoAtNet/-H builders."""

from . import cnn_timing, coatnet, dlrm, dlrm_sharding, efficientnet, mbconv, production, timing, vit_timing
from .cnn_timing import CnnBaseline, CnnTimingHarness, build_cnn_graph
from .coatnet import COATNET, COATNET_H, CoatNetConfig, coatnet_h
from .dlrm import (
    DlrmModelSpec,
    MlpStackSpec,
    TableSpec,
    apply_architecture,
    baseline_production_dlrm,
    dlrm_h,
    pipeline_times,
)
from .efficientnet import EFFICIENTNET_H, EFFICIENTNET_X, EfficientNetConfig
from .timing import DlrmTimingHarness
from .vit_timing import VitBaseline, VitTimingHarness, build_vit_graph
from .mbconv import MbconvSpec, add_mbconv, block_params, single_block_graph

__all__ = [
    "COATNET",
    "CnnBaseline",
    "CnnTimingHarness",
    "DlrmTimingHarness",
    "VitBaseline",
    "VitTimingHarness",
    "build_cnn_graph",
    "build_vit_graph",
    "cnn_timing",
    "dlrm_sharding",
    "production",
    "timing",
    "vit_timing",
    "COATNET_H",
    "CoatNetConfig",
    "DlrmModelSpec",
    "EFFICIENTNET_H",
    "EFFICIENTNET_X",
    "EfficientNetConfig",
    "MbconvSpec",
    "MlpStackSpec",
    "TableSpec",
    "add_mbconv",
    "apply_architecture",
    "baseline_production_dlrm",
    "block_params",
    "coatnet",
    "coatnet_h",
    "dlrm",
    "dlrm_h",
    "efficientnet",
    "mbconv",
    "pipeline_times",
    "single_block_graph",
]
