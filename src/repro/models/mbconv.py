"""MBConv and fused-MBConv block builders (Figure 4a of the paper).

An MBConv is expand (1x1 conv) -> depthwise conv -> project (1x1 conv)
with optional squeeze-and-excite and a skip connection.  A fused
MBConv merges the depthwise convolution into the expansion as one dense
``k x k`` convolution: more FLOPs, but all of them run on the matrix
unit at high operational intensity — the trade-off Figure 4b/4c maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..graph.ir import OpGraph
from ..graph import ops


@dataclass(frozen=True)
class MbconvSpec:
    """One MBConv / fused-MBConv layer."""

    block_type: str  # "mbconv" | "fused_mbconv"
    cin: int
    cout: int
    kernel: int = 3
    stride: int = 1
    expansion: int = 6
    se_ratio: float = 0.25
    activation: str = "swish"
    skip: str = "identity"

    def __post_init__(self) -> None:
        if self.block_type not in ("mbconv", "fused_mbconv"):
            raise ValueError(f"unknown block type {self.block_type!r}")
        if min(self.cin, self.cout, self.kernel, self.stride, self.expansion) < 1:
            raise ValueError("block dimensions must be positive")


def add_mbconv(
    graph: OpGraph,
    name: str,
    spec: MbconvSpec,
    height: int,
    width: int,
    batch: int = 1,
    after: Optional[str] = None,
) -> Tuple[str, int, int]:
    """Emit one (fused-)MBConv layer into ``graph``.

    Returns ``(last_op_name, out_height, out_width)``.
    """
    hidden = spec.cin * spec.expansion
    out_h = max(1, -(-height // spec.stride))
    out_w = max(1, -(-width // spec.stride))
    last = after
    if spec.block_type == "mbconv":
        if spec.expansion > 1:
            expand = ops.conv2d(
                f"{name}/expand", height, width, spec.cin, hidden, 1, 1, batch
            )
            graph.add(expand, deps=[last] if last else [])
            last = expand.name
            dw_in = hidden
        else:
            dw_in = spec.cin
        dw = ops.depthwise_conv2d(
            f"{name}/depthwise", height, width, dw_in, spec.kernel, spec.stride, batch
        )
        graph.add(dw, deps=[last] if last else [])
        last = dw.name
        last = _add_se(graph, name, spec, dw_in, out_h, out_w, batch, last)
        project = ops.conv2d(
            f"{name}/project", out_h, out_w, dw_in, spec.cout, 1, 1, batch
        )
        graph.add(project, deps=[last])
        last = project.name
    else:
        # Fused: expansion and depthwise merged into one k x k convolution.
        fused = ops.conv2d(
            f"{name}/fused",
            height,
            width,
            spec.cin,
            hidden,
            spec.kernel,
            spec.stride,
            batch,
        )
        graph.add(fused, deps=[last] if last else [])
        last = fused.name
        last = _add_se(graph, name, spec, hidden, out_h, out_w, batch, last)
        if spec.expansion > 1:
            project = ops.conv2d(
                f"{name}/project", out_h, out_w, hidden, spec.cout, 1, 1, batch
            )
            graph.add(project, deps=[last])
            last = project.name
    act = ops.elementwise(
        f"{name}/act", batch * out_h * out_w * spec.cout, op_type="activation"
    )
    graph.add(act, deps=[last])
    last = act.name
    if spec.skip == "identity" and spec.stride == 1 and spec.cin == spec.cout:
        add = ops.elementwise(
            f"{name}/skip_add", batch * out_h * out_w * spec.cout, op_type="add"
        )
        graph.add(add, deps=[last])
        last = add.name
    return last, out_h, out_w


def _add_se(
    graph: OpGraph,
    name: str,
    spec: MbconvSpec,
    channels: int,
    out_h: int,
    out_w: int,
    batch: int,
    last: str,
) -> str:
    """Squeeze-and-excite: global pool + two dense layers + scale."""
    if spec.se_ratio <= 0:
        return last
    se_channels = max(1, int(round(channels * spec.se_ratio)))
    pool = ops.pooling(f"{name}/se_pool", out_h, out_w, channels, max(out_h, 1), batch)
    graph.add(pool, deps=[last])
    reduce = ops.dense(f"{name}/se_reduce", batch, channels, se_channels)
    graph.add(reduce, deps=[pool.name])
    expand = ops.dense(f"{name}/se_expand", batch, se_channels, channels)
    graph.add(expand, deps=[reduce.name])
    scale = ops.elementwise(
        f"{name}/se_scale", batch * out_h * out_w * channels, op_type="mul"
    )
    graph.add(scale, deps=[expand.name])
    return scale.name


def single_block_graph(
    spec: MbconvSpec, resolution: int, batch: int = 1, name: str = "block"
) -> OpGraph:
    """A graph holding exactly one block (for the Figure 4 study)."""
    graph = OpGraph(f"{spec.block_type}({spec.cin})")
    add_mbconv(graph, name, spec, resolution, resolution, batch)
    return graph


def block_params(spec: MbconvSpec) -> int:
    """Trainable parameter count of one block (weights only)."""
    hidden = spec.cin * spec.expansion
    params = 0
    if spec.block_type == "mbconv":
        inner = hidden if spec.expansion > 1 else spec.cin
        if spec.expansion > 1:
            params += spec.cin * hidden  # expand 1x1
        params += spec.kernel * spec.kernel * inner  # depthwise
        params += inner * spec.cout  # project 1x1
    else:
        inner = hidden
        params += spec.kernel * spec.kernel * spec.cin * hidden  # fused k x k
        if spec.expansion > 1:
            params += hidden * spec.cout  # project 1x1
    if spec.se_ratio > 0:
        se_channels = max(1, int(round(inner * spec.se_ratio)))
        params += 2 * inner * se_channels
    return params
