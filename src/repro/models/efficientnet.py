"""EfficientNet-X baseline and the H2O-NAS-designed EfficientNet-H family.

The family follows the compound-scaling recipe of EfficientNet /
EfficientNet-X: a stage template (widths, depths, kernels, strides,
block types) scaled per model by width/depth coefficients and an input
resolution.  EfficientNet-X places fused MBConvs in the early
high-resolution stages (where Figure 4 shows fusion wins) and MBConvs
later.

EfficientNet-H (Section 7.1.3): identical to the baseline for B0-B4;
for B5-B7 the search changes the expansion ratios of the dynamic fused
MBConv stages from uniformly 6 to a mixture of 4 and 6, which is where
Table 4's ~15% B5-B7 speedup comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.ir import OpGraph
from ..graph import ops
from .mbconv import MbconvSpec, add_mbconv, block_params

#: Stage template: (block_type, kernel, stride, expansion, base_width, base_layers)
STAGE_TEMPLATE: Tuple[Tuple[str, int, int, int, int, int], ...] = (
    ("fused_mbconv", 3, 1, 1, 16, 1),
    ("fused_mbconv", 3, 2, 6, 24, 2),
    ("fused_mbconv", 5, 2, 6, 40, 2),
    ("mbconv", 3, 2, 6, 80, 3),
    ("mbconv", 5, 1, 6, 112, 3),
    ("mbconv", 5, 2, 6, 192, 4),
    ("mbconv", 3, 1, 6, 320, 1),
)

STEM_WIDTH = 32
HEAD_WIDTH = 1280
NUM_CLASSES = 1000


@dataclass(frozen=True)
class EfficientNetConfig:
    """One model of an EfficientNet-style family."""

    name: str
    width_coef: float
    depth_coef: float
    resolution: int
    #: Optional per-stage expansion overrides (None keeps the template).
    expansions: Optional[Tuple[Optional[int], ...]] = None

    def __post_init__(self) -> None:
        if self.width_coef <= 0 or self.depth_coef <= 0 or self.resolution <= 0:
            raise ValueError("scaling coefficients and resolution must be positive")
        if self.expansions is not None and len(self.expansions) != len(STAGE_TEMPLATE):
            raise ValueError("expansions override must cover every stage")


def _round_width(width: float) -> int:
    """Round channels to the nearest multiple of 8 (hardware-friendly)."""
    return max(8, int(8 * round(width / 8)))


def _round_depth(depth: float) -> int:
    return max(1, int(math.ceil(depth)))


@dataclass(frozen=True)
class StageSpec:
    """A resolved stage: one block spec repeated ``layers`` times."""

    block: MbconvSpec
    layers: int


def stage_specs(config: EfficientNetConfig) -> List[StageSpec]:
    """Resolve the scaled stages of ``config``."""
    stages: List[StageSpec] = []
    cin = _round_width(STEM_WIDTH * config.width_coef)
    for i, (btype, kernel, stride, expansion, width, layers) in enumerate(STAGE_TEMPLATE):
        if config.expansions is not None and config.expansions[i] is not None:
            expansion = config.expansions[i]
        cout = _round_width(width * config.width_coef)
        stages.append(
            StageSpec(
                block=MbconvSpec(
                    block_type=btype,
                    cin=cin,
                    cout=cout,
                    kernel=kernel,
                    stride=stride,
                    expansion=expansion,
                ),
                layers=_round_depth(layers * config.depth_coef),
            )
        )
        cin = cout
    return stages


def build_graph(config: EfficientNetConfig, batch: int = 1) -> OpGraph:
    """Lower ``config`` to an operator graph for the simulator."""
    graph = OpGraph(config.name)
    res = config.resolution
    stem_width = _round_width(STEM_WIDTH * config.width_coef)
    stem = ops.conv2d("stem", res, res, 3, stem_width, 3, 2, batch)
    graph.add(stem)
    last = stem.name
    h = w = max(1, -(-res // 2))
    cin = stem_width
    for s, stage in enumerate(stage_specs(config)):
        for layer in range(stage.layers):
            spec = stage.block
            # Only the first layer of a stage strides / changes width.
            if layer > 0:
                spec = replace(spec, cin=spec.cout, stride=1)
            else:
                spec = replace(spec, cin=cin)
            last, h, w = add_mbconv(graph, f"s{s}l{layer}", spec, h, w, batch, last)
        cin = stage.block.cout
    head_width = _round_width(HEAD_WIDTH * config.width_coef)
    head = ops.conv2d("head", h, w, cin, head_width, 1, 1, batch)
    graph.add(head, deps=[last])
    pool = ops.pooling("avg_pool", h, w, head_width, max(h, 1), batch)
    graph.add(pool, deps=["head"])
    fc = ops.dense("classifier", batch, head_width, NUM_CLASSES)
    graph.add(fc, deps=["avg_pool"])
    return graph


def num_params(config: EfficientNetConfig) -> int:
    """Trainable parameter count of ``config``."""
    total = 3 * 3 * 3 * _round_width(STEM_WIDTH * config.width_coef)
    cin = _round_width(STEM_WIDTH * config.width_coef)
    for stage in stage_specs(config):
        for layer in range(stage.layers):
            spec = stage.block
            spec = replace(spec, cin=spec.cout) if layer > 0 else replace(spec, cin=cin)
            total += block_params(spec)
        cin = stage.block.cout
    head_width = _round_width(HEAD_WIDTH * config.width_coef)
    total += cin * head_width
    total += head_width * NUM_CLASSES
    return total


#: Compound-scaling table: (width_coef, depth_coef, resolution).
_SCALING: Tuple[Tuple[str, float, float, int], ...] = (
    ("b0", 1.0, 1.0, 224),
    ("b1", 1.0, 1.1, 240),
    ("b2", 1.1, 1.2, 260),
    ("b3", 1.2, 1.4, 300),
    ("b4", 1.4, 1.8, 380),
    ("b5", 1.6, 2.2, 456),
    ("b6", 1.8, 2.6, 528),
    ("b7", 2.0, 3.1, 600),
)

#: The searched expansion mixture of EfficientNet-H B5-B7: the MBConv
#: stages alternate expansion 4 and 6 instead of uniform 6.
_H_EXPANSIONS: Tuple[Optional[int], ...] = (None, None, None, 4, 6, 4, 6)

EFFICIENTNET_X: Dict[str, EfficientNetConfig] = {
    name: EfficientNetConfig(f"efficientnet_x_{name}", w, d, r)
    for name, w, d, r in _SCALING
}

EFFICIENTNET_H: Dict[str, EfficientNetConfig] = {
    name: EfficientNetConfig(
        f"efficientnet_h_{name}",
        w,
        d,
        r,
        expansions=_H_EXPANSIONS if name in ("b5", "b6", "b7") else None,
    )
    for name, w, d, r in _SCALING
}
