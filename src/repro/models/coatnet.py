"""CoAtNet baseline and the H2O-NAS-designed CoAtNet-H family.

CoAtNet is a hybrid network: two convolutional (MBConv) stages followed
by two transformer stages.  The family configs follow the published
CoAtNet-0..5 widths/depths; CoAtNet-H applies the three searched
changes Table 3 ablates:

* **DeeperConv** — four extra layers in the convolutional part
  (12 -> 16 for CoAtNet-5);
* **ResShrink** — pretraining resolution 224 -> 160 (trading image
  resolution for model depth is TPU-friendly: less memory-bound
  attention, more matrix-unit work);
* **SquaredReLU** — the transformer activation becomes ``relu(x)^2``,
  recovering the quality the resolution shrink cost, at negligible
  hardware cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..graph.ir import OpGraph
from ..graph import ops
from .mbconv import MbconvSpec, add_mbconv, block_params

NUM_CLASSES = 1000
MLP_RATIO = 4
STEM_WIDTH = 64
CONV_EXPANSION = 4
HEAD_DIM = 64


@dataclass(frozen=True)
class CoatNetConfig:
    """One CoAtNet-style hybrid model."""

    name: str
    resolution: int
    conv_widths: Tuple[int, int]
    conv_depths: Tuple[int, int]
    tfm_widths: Tuple[int, int]
    tfm_depths: Tuple[int, int]
    activation: str = "gelu"

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        for group in (self.conv_widths, self.conv_depths, self.tfm_widths, self.tfm_depths):
            if any(v <= 0 for v in group):
                raise ValueError("widths and depths must be positive")

    @property
    def conv_layers(self) -> int:
        """Total layers in the convolutional part (Table 3's knob)."""
        return sum(self.conv_depths)

    def with_deeper_conv(self, extra_layers: int = 4) -> "CoatNetConfig":
        """The +DeeperConv change: extra layers in the second conv stage."""
        depths = (self.conv_depths[0], self.conv_depths[1] + extra_layers)
        return replace(self, conv_depths=depths)

    def with_resolution(self, resolution: int) -> "CoatNetConfig":
        """The +ResShrink change."""
        return replace(self, resolution=resolution)

    def with_activation(self, activation: str) -> "CoatNetConfig":
        """The +SquaredReLU change."""
        return replace(self, activation=activation)


def _seq_len(resolution: int, downsample: int) -> int:
    side = max(1, resolution // downsample)
    return side * side


def build_graph(config: CoatNetConfig, batch: int = 1) -> OpGraph:
    """Lower ``config`` to an operator graph for the simulator."""
    graph = OpGraph(config.name)
    res = config.resolution
    stem = ops.conv2d("stem", res, res, 3, STEM_WIDTH, 3, 2, batch)
    graph.add(stem)
    last = stem.name
    h = w = max(1, res // 2)
    cin = STEM_WIDTH
    # Convolutional stages (MBConv, expansion 4, stride 2 at stage entry).
    for s, (width, depth) in enumerate(zip(config.conv_widths, config.conv_depths)):
        for layer in range(depth):
            spec = MbconvSpec(
                block_type="mbconv",
                cin=cin if layer == 0 else width,
                cout=width,
                kernel=3,
                stride=2 if layer == 0 else 1,
                expansion=CONV_EXPANSION,
                se_ratio=0.25,
            )
            last, h, w = add_mbconv(graph, f"c{s}l{layer}", spec, h, w, batch, last)
        cin = width
    # Transformer stages at 1/8 and 1/16 of the input resolution.
    for s, (width, depth) in enumerate(zip(config.tfm_widths, config.tfm_depths)):
        seq = _seq_len(config.resolution, 8 * (2**s))
        proj = ops.dense(f"t{s}/in_proj", batch * seq, cin, width)
        graph.add(proj, deps=[last])
        last = proj.name
        for layer in range(depth):
            last = _add_transformer_layer(
                graph, f"t{s}l{layer}", width, seq, batch, last
            )
        cin = width
    pool = ops.pooling("seq_pool", 1, _seq_len(config.resolution, 16), cin, 1, batch)
    graph.add(pool, deps=[last])
    fc = ops.dense("classifier", batch, cin, NUM_CLASSES)
    graph.add(fc, deps=["seq_pool"])
    return graph


def _add_transformer_layer(
    graph: OpGraph, name: str, width: int, seq: int, batch: int, last: str
) -> str:
    """Self-attention + MLP with the usual op decomposition."""
    heads = max(1, width // HEAD_DIM)
    qkv = ops.dense(f"{name}/qkv", batch * seq, width, 3 * width)
    graph.add(qkv, deps=[last])
    # Per-head attention matmuls: the contracting dimension is the head
    # dim (64), which only half-fills a 128-wide matrix unit — one of
    # the efficiency cliffs the hardware-optimized search space is
    # designed around.
    scores = ops.matmul(
        f"{name}/qk", seq, HEAD_DIM, seq, batch * heads, cmem_resident=True
    )
    graph.add(scores, deps=[qkv.name])
    softmax = ops.softmax(
        f"{name}/softmax", batch * heads * seq, seq, cmem_resident=True
    )
    graph.add(softmax, deps=[scores.name])
    context = ops.matmul(
        f"{name}/av", seq, seq, HEAD_DIM, batch * heads, cmem_resident=True
    )
    graph.add(context, deps=[softmax.name])
    out = ops.dense(f"{name}/out_proj", batch * seq, width, width)
    graph.add(out, deps=[context.name])
    ffn1 = ops.dense(f"{name}/ffn1", batch * seq, width, MLP_RATIO * width)
    graph.add(ffn1, deps=[out.name])
    act = ops.elementwise(
        f"{name}/act", batch * seq * MLP_RATIO * width, op_type="activation"
    )
    graph.add(act, deps=[ffn1.name])
    ffn2 = ops.dense(f"{name}/ffn2", batch * seq, MLP_RATIO * width, width)
    graph.add(ffn2, deps=[act.name])
    return ffn2.name


def num_params(config: CoatNetConfig) -> int:
    """Trainable parameter count of ``config``."""
    total = 3 * 3 * 3 * STEM_WIDTH
    cin = STEM_WIDTH
    for width, depth in zip(config.conv_widths, config.conv_depths):
        for layer in range(depth):
            spec = MbconvSpec(
                block_type="mbconv",
                cin=cin if layer == 0 else width,
                cout=width,
                expansion=CONV_EXPANSION,
                se_ratio=0.25,
            )
            total += block_params(spec)
        cin = width
    for width, depth in zip(config.tfm_widths, config.tfm_depths):
        total += cin * width  # stage input projection
        per_layer = 3 * width * width + width * width + 2 * MLP_RATIO * width * width
        total += depth * per_layer
        cin = width
    total += cin * NUM_CLASSES
    return total


#: Published CoAtNet family shapes (conv stages S1-S2, TFM stages S3-S4).
_FAMILY: Tuple[Tuple[str, Tuple[int, int], Tuple[int, int], Tuple[int, int], Tuple[int, int]], ...] = (
    ("0", (96, 192), (2, 3), (384, 768), (5, 2)),
    ("1", (96, 192), (2, 6), (384, 768), (14, 2)),
    ("2", (128, 256), (2, 6), (512, 1024), (14, 2)),
    ("3", (192, 384), (2, 6), (768, 1536), (14, 2)),
    ("4", (192, 384), (2, 12), (768, 1536), (28, 2)),
    ("5", (256, 512), (2, 10), (1280, 2048), (28, 2)),
)

COATNET: Dict[str, CoatNetConfig] = {
    idx: CoatNetConfig(
        name=f"coatnet_{idx}",
        resolution=224,
        conv_widths=cw,
        conv_depths=cd,
        tfm_widths=tw,
        tfm_depths=td,
        activation="gelu",
    )
    for idx, cw, cd, tw, td in _FAMILY
}


def coatnet_h(baseline: CoatNetConfig) -> CoatNetConfig:
    """Apply the three searched CoAtNet-H changes to a baseline config.

    The extra convolution depth scales with the baseline's conv part
    (one third, i.e. +4 layers for CoAtNet-5's 12), keeping quality
    neutral across the whole family as in Figure 6.
    """
    extra = max(1, round(baseline.conv_layers / 3))
    searched = (
        baseline.with_deeper_conv(extra)
        .with_resolution(160)
        .with_activation("squared_relu")
    )
    return replace(searched, name=baseline.name.replace("coatnet", "coatnet_h"))


COATNET_H: Dict[str, CoatNetConfig] = {idx: coatnet_h(cfg) for idx, cfg in COATNET.items()}
