"""ViT timing: lower ViT-space architectures to simulator op graphs.

Consumes architectures from :func:`repro.searchspace.vit_search_space`
(and its hybrid variant) and prices every searchable dimension on the
hardware simulator:

* ``hidden_size`` sets the projection and FFN matmul shapes;
* ``low_rank`` factorizes the QKV projection into two matmuls of rank
  ``fraction * hidden`` (compute saving, extra op);
* ``seq_pooling`` halves the sequence entering later layers/blocks;
* ``primer`` adds the depthwise convolution over the sequence after
  the attention projection (a vector-unit op);
* ``depth_delta`` sets the number of layers per block;
* stem decisions (``patch_size``, ``resolution``) set the sequence
  length; conv blocks of the hybrid space are priced through the CNN
  lowering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..graph.ir import OpGraph
from ..graph import ops
from ..hardware.config import HardwareConfig, TPU_V4, TPU_V4I
from ..hardware.simulator import PerformanceSimulator
from ..hardware.testbed import HardwareTestbed
from ..searchspace.base import Architecture
from .mbconv import MbconvSpec, add_mbconv

HEAD_DIM = 64
FFN_RATIO = 4
DTYPE_BYTES = 2.0
#: Channel plan of the hybrid space's convolutional blocks.
HYBRID_CONV_WIDTHS = (64, 128)
HYBRID_CONV_BASE_DEPTH = 2
HYBRID_WIDTH_QUANTUM = 8


@dataclass(frozen=True)
class VitBaseline:
    """Context the ViT space's decisions are priced in."""

    name: str = "vit_baseline"
    num_blocks: int = 2
    base_depth: int = 4
    resolution: int = 224
    patch_size: int = 16
    num_classes: int = 1000

    def __post_init__(self) -> None:
        if self.base_depth < 1 or self.num_blocks < 1:
            raise ValueError("depths and block counts must be positive")
        if self.resolution < self.patch_size:
            raise ValueError("resolution must be at least one patch")


def _stem_geometry(baseline: VitBaseline, arch: Architecture) -> Tuple[int, int]:
    resolution = int(arch.get("resolution", baseline.resolution))
    patch = int(arch.get("patch_size", baseline.patch_size))
    side = max(1, resolution // patch)
    return resolution, side * side


def build_vit_graph(
    baseline: VitBaseline, arch: Architecture, batch: int = 8
) -> OpGraph:
    """Lower ``arch`` (over ``baseline``) to an operator graph."""
    graph = OpGraph(f"{baseline.name}_candidate")
    resolution, seq = _stem_geometry(baseline, arch)
    patch = int(arch.get("patch_size", baseline.patch_size))
    first_width = int(arch["tfm0/hidden_size"])
    stem_width = (
        HYBRID_CONV_WIDTHS[0] if "block0/type" in arch else first_width
    )
    stem = ops.conv2d(
        "patchify", resolution, resolution, 3, stem_width, patch, patch, batch
    )
    graph.add(stem)
    last = stem.name
    width = stem_width
    # Hybrid space: convolutional blocks between the stem and the
    # transformer stages (the CoAtNet shape Table 5's hybrid row builds).
    side = max(1, resolution // patch)
    h = w = side
    conv_block = 0
    while f"block{conv_block}/type" in arch:
        stage_width = max(
            HYBRID_WIDTH_QUANTUM,
            HYBRID_CONV_WIDTHS[min(conv_block, len(HYBRID_CONV_WIDTHS) - 1)]
            + HYBRID_WIDTH_QUANTUM * int(arch[f"block{conv_block}/width_delta"]),
        )
        depth = max(1, HYBRID_CONV_BASE_DEPTH + int(arch[f"block{conv_block}/depth_delta"]))
        for layer in range(depth):
            spec = MbconvSpec(
                block_type=str(arch[f"block{conv_block}/type"]),
                cin=width if layer == 0 else stage_width,
                cout=stage_width,
                kernel=int(arch[f"block{conv_block}/kernel"]),
                stride=int(arch[f"block{conv_block}/stride"]) if layer == 0 else 1,
                expansion=int(arch[f"block{conv_block}/expansion"]),
                se_ratio=float(arch[f"block{conv_block}/se_ratio"]),
                skip=str(arch[f"block{conv_block}/skip"]),
            )
            last, h, w = add_mbconv(
                graph, f"conv{conv_block}l{layer}", spec, h, w, batch, last
            )
        width = stage_width
        conv_block += 1
    if conv_block:
        seq = h * w
    for block in range(baseline.num_blocks):
        hidden = int(arch[f"tfm{block}/hidden_size"])
        if hidden != width:
            proj = ops.dense(f"t{block}/in_proj", batch * seq, width, hidden)
            graph.add(proj, deps=[last])
            last = proj.name
            width = hidden
        depth = max(1, baseline.base_depth + int(arch[f"tfm{block}/depth_delta"]))
        rank_fraction = float(arch[f"tfm{block}/low_rank"])
        primer = bool(arch[f"tfm{block}/primer"])
        for layer in range(depth):
            last = _add_layer(
                graph, f"t{block}l{layer}", width, seq, batch, last,
                rank_fraction=rank_fraction, primer=primer,
            )
        if bool(arch[f"tfm{block}/seq_pooling"]) and seq > 1:
            pool = ops.pooling(f"t{block}/seq_pool", 1, seq, width, 2, batch)
            graph.add(pool, deps=[last])
            last = pool.name
            seq = max(1, seq // 2)
    head = ops.dense("classifier", batch, width, baseline.num_classes)
    graph.add(head, deps=[last])
    return graph


def _add_layer(
    graph: OpGraph,
    name: str,
    width: int,
    seq: int,
    batch: int,
    last: str,
    rank_fraction: float,
    primer: bool,
) -> str:
    heads = max(1, width // HEAD_DIM)
    if rank_fraction < 1.0:
        rank = max(8, int(round(rank_fraction * width)))
        down = ops.dense(f"{name}/qkv_u", batch * seq, width, rank)
        graph.add(down, deps=[last])
        up = ops.dense(f"{name}/qkv_v", batch * seq, rank, 3 * width)
        graph.add(up, deps=[down.name])
        last = up.name
    else:
        qkv = ops.dense(f"{name}/qkv", batch * seq, width, 3 * width)
        graph.add(qkv, deps=[last])
        last = qkv.name
    scores = ops.matmul(
        f"{name}/qk", seq, HEAD_DIM, seq, batch * heads, cmem_resident=True
    )
    graph.add(scores, deps=[last])
    softmax = ops.softmax(
        f"{name}/softmax", batch * heads * seq, seq, cmem_resident=True
    )
    graph.add(softmax, deps=[scores.name])
    context = ops.matmul(
        f"{name}/av", seq, seq, HEAD_DIM, batch * heads, cmem_resident=True
    )
    graph.add(context, deps=[softmax.name])
    out = ops.dense(f"{name}/out_proj", batch * seq, width, width)
    graph.add(out, deps=[context.name])
    last = out.name
    if primer:
        # Primer's channel-wise depthwise convolution over the sequence.
        dw = ops.depthwise_conv2d(f"{name}/primer_dw", 1, seq, width, 3, 1, batch)
        graph.add(dw, deps=[last])
        last = dw.name
    ffn1 = ops.dense(f"{name}/ffn1", batch * seq, width, FFN_RATIO * width)
    graph.add(ffn1, deps=[last])
    act = ops.elementwise(
        f"{name}/act", batch * seq * FFN_RATIO * width, op_type="activation"
    )
    graph.add(act, deps=[ffn1.name])
    ffn2 = ops.dense(f"{name}/ffn2", batch * seq, FFN_RATIO * width, width)
    graph.add(ffn2, deps=[act.name])
    return ffn2.name


def num_params(baseline: VitBaseline, arch: Architecture) -> float:
    """Trainable parameter count of the candidate."""
    patch = int(arch.get("patch_size", baseline.patch_size))
    width = int(arch["tfm0/hidden_size"])
    total = float(patch * patch * 3 * width)
    prev = width
    for block in range(baseline.num_blocks):
        hidden = int(arch[f"tfm{block}/hidden_size"])
        if hidden != prev:
            total += prev * hidden
            prev = hidden
        depth = max(1, baseline.base_depth + int(arch[f"tfm{block}/depth_delta"]))
        rank_fraction = float(arch[f"tfm{block}/low_rank"])
        if rank_fraction < 1.0:
            rank = max(8, int(round(rank_fraction * hidden)))
            qkv = hidden * rank + rank * 3 * hidden
        else:
            qkv = 3 * hidden * hidden
        per_layer = qkv + hidden * hidden + 2 * FFN_RATIO * hidden * hidden
        if bool(arch[f"tfm{block}/primer"]):
            per_layer += 3 * hidden
        total += depth * per_layer
    total += prev * baseline.num_classes
    return total


class VitTimingHarness:
    """Times ViT-space candidates for training and serving."""

    def __init__(
        self,
        baseline: VitBaseline = VitBaseline(),
        train_hw: HardwareConfig = TPU_V4,
        serve_hw: HardwareConfig = TPU_V4I,
        train_batch: int = 64,
        serve_batch: int = 8,
        seed: int = 0,
    ):
        self.baseline = baseline
        self.train_batch = train_batch
        self.serve_batch = serve_batch
        self._train_sim = PerformanceSimulator(train_hw)
        self._serve_sim = PerformanceSimulator(serve_hw)
        self._train_bed = HardwareTestbed(train_hw, seed=seed)
        self._serve_bed = HardwareTestbed(serve_hw, seed=seed + 1)

    def simulate(self, arch: Architecture) -> Tuple[float, float]:
        """(train_step_time, serving_latency) from the clean simulator."""
        train = build_vit_graph(self.baseline, arch, batch=self.train_batch)
        serve = build_vit_graph(self.baseline, arch, batch=self.serve_batch)
        return (
            self._train_sim.simulate(train).total_time_s,
            self._serve_sim.simulate(serve).total_time_s,
        )

    def measure(self, arch: Architecture) -> Tuple[float, float]:
        """(train_step_time, serving_latency) from the hardware testbed."""
        train = build_vit_graph(self.baseline, arch, batch=self.train_batch)
        serve = build_vit_graph(self.baseline, arch, batch=self.serve_batch)
        return (
            self._train_bed.measure_time(train),
            self._serve_bed.measure_time(serve),
        )

    def measure_deterministic(self, arch: Architecture) -> Tuple[float, float]:
        """Noise-free testbed times (for evaluation sweeps)."""
        train = build_vit_graph(self.baseline, arch, batch=self.train_batch)
        serve = build_vit_graph(self.baseline, arch, batch=self.serve_batch)
        return (
            self._train_bed.deterministic_time(train),
            self._serve_bed.deterministic_time(serve),
        )

    def model_size(self, arch: Architecture) -> float:
        """Serving memory footprint in bytes."""
        return num_params(self.baseline, arch) * DTYPE_BYTES

    def metrics_from_simulator(self, arch: Architecture) -> Dict[str, float]:
        """A performance_fn for searches, backed by the simulator."""
        train_time, serve_time = self.simulate(arch)
        return {
            "train_step_time": train_time,
            "serving_latency": serve_time,
            "model_size": self.model_size(arch),
        }
