"""Production-model fleet for the Figure 10 experiments.

Section 7.3 applies H2O-NAS to a fleet of production computer-vision
and DLRM models with zero manual intervention.  We stand the fleet up
with (a) five CV baselines drawn from the CoAtNet family at different
scales, searched over a compact hybrid space (resolution, conv/tfm
depth deltas, activation), and (b) five DLRM baselines with varying
table counts and MLP shapes, searched over the Table 5 DLRM space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..searchspace.base import Architecture, Decision, SearchSpace
from .coatnet import COATNET, CoatNetConfig
from .dlrm import DlrmModelSpec, MlpStackSpec, TableSpec, baseline_production_dlrm

#: Searchable knobs of the production CV space.
CV_RESOLUTIONS: Tuple[int, ...] = (224, 160, 192, 256, 288)
CV_CONV_DEPTH_DELTAS: Tuple[int, ...] = (0, -2, 2, 4)
CV_TFM_DEPTH_DELTAS: Tuple[int, ...] = (0, -2, -1, 1, 2)
CV_ACTIVATIONS: Tuple[str, ...] = ("gelu", "relu", "swish", "squared_relu")


def cv_search_space() -> SearchSpace:
    """Compact production CV search space over CoAtNet-style knobs."""
    return SearchSpace(
        "production_cv",
        [
            Decision("resolution", CV_RESOLUTIONS, ("cv", "resolution")),
            Decision("conv_depth_delta", CV_CONV_DEPTH_DELTAS, ("cv", "depth")),
            Decision("tfm_depth_delta", CV_TFM_DEPTH_DELTAS, ("cv", "depth")),
            Decision("activation", CV_ACTIVATIONS, ("cv", "activation")),
        ],
    )


def apply_cv_architecture(
    baseline: CoatNetConfig, arch: Architecture, name: str = "cv_candidate"
) -> CoatNetConfig:
    """Apply production-CV search decisions to a CoAtNet baseline."""
    conv_extra = int(arch["conv_depth_delta"])
    conv_depths = (
        baseline.conv_depths[0],
        max(1, baseline.conv_depths[1] + conv_extra),
    )
    tfm_extra = int(arch["tfm_depth_delta"])
    tfm_depths = (
        max(1, baseline.tfm_depths[0] + tfm_extra),
        baseline.tfm_depths[1],
    )
    return replace(
        baseline,
        name=name,
        resolution=int(arch["resolution"]),
        conv_depths=conv_depths,
        tfm_depths=tfm_depths,
        activation=str(arch["activation"]),
    )


def cv_production_fleet() -> Dict[str, CoatNetConfig]:
    """Five production CV baselines (CV1..CV5) at different scales.

    Production models are human-designed and drift off the
    hardware-optimal Pareto front (the premise of Section 7.3): these
    baselines run at a high 288x288 resolution with plain ReLU
    activations, leaving exactly the kind of slack — trade resolution
    for depth, upgrade the activation — that H2O-NAS converts into
    simultaneous quality and performance gains in Figure 10.
    """
    members = {
        "CV1": COATNET["0"],
        "CV2": COATNET["1"],
        "CV3": COATNET["2"],
        "CV4": COATNET["3"],
        "CV5": COATNET["4"],
    }
    return {
        label: replace(
            config,
            name=f"prod_{label.lower()}",
            resolution=288,
            activation="relu",
        )
        for label, config in members.items()
    }


def dlrm_production_fleet() -> Dict[str, DlrmModelSpec]:
    """Five production DLRM baselines (DLRM1..DLRM5) of varied shape."""
    shapes = {
        "DLRM1": dict(num_tables=4, bottom=(1024, 3), top=(2048, 6), lookups=16),
        "DLRM2": dict(num_tables=4, bottom=(2048, 3), top=(4096, 8), lookups=32),
        "DLRM3": dict(num_tables=6, bottom=(1536, 2), top=(3072, 7), lookups=24),
        "DLRM4": dict(num_tables=8, bottom=(2048, 4), top=(4096, 6), lookups=32),
        "DLRM5": dict(num_tables=6, bottom=(1024, 3), top=(3072, 9), lookups=48),
    }
    fleet: Dict[str, DlrmModelSpec] = {}
    for label, shape in shapes.items():
        base = baseline_production_dlrm(num_tables=shape["num_tables"])
        fleet[label] = replace(
            base,
            name=f"prod_{label.lower()}",
            bottom=MlpStackSpec(width=shape["bottom"][0], depth=shape["bottom"][1]),
            top=MlpStackSpec(width=shape["top"][0], depth=shape["top"][1]),
            lookups_per_table=shape["lookups"],
        )
    return fleet
