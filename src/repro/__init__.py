"""Reproduction of "Hyperscale Hardware Optimized Neural Architecture
Search" (H2O-NAS, ASPLOS 2023).

Public API tour:

* :mod:`repro.core` — the paper's contribution: the single-sided ReLU
  multi-objective reward, the REINFORCE controller, the massively
  parallel single-step search, the TuNAS-style baseline, and the
  :class:`~repro.core.H2ONas` facade.
* :mod:`repro.searchspace` — the DLRM / CNN / ViT search spaces of
  Table 5 with exact cardinality accounting.
* :mod:`repro.supernet` — weight-sharing super-networks (hybrid
  fine/coarse sharing for DLRM).
* :mod:`repro.perfmodel` — the two-phase (pretrain + finetune) MLP
  performance model.
* :mod:`repro.hardware` — hardware configs, roofline math, the
  analytical performance simulator, power/energy model, and the
  testbed standing in for real-TPU measurement.
* :mod:`repro.models` — DLRM, EfficientNet-X/-H, and CoAtNet/-H model
  families lowered to simulator op graphs.
* :mod:`repro.graph`, :mod:`repro.nn`, :mod:`repro.data`,
  :mod:`repro.quality`, :mod:`repro.analysis` — substrates.
"""

from . import (
    analysis,
    core,
    data,
    graph,
    hardware,
    models,
    nn,
    perfmodel,
    quality,
    searchspace,
    supernet,
)
from .core import H2ONas, PerformanceObjective, SearchConfig, absolute_reward, relu_reward

__version__ = "1.0.0"

__all__ = [
    "H2ONas",
    "PerformanceObjective",
    "SearchConfig",
    "absolute_reward",
    "analysis",
    "core",
    "data",
    "graph",
    "hardware",
    "models",
    "nn",
    "perfmodel",
    "quality",
    "relu_reward",
    "searchspace",
    "supernet",
]
