"""Vision-transformer and hybrid search spaces (Table 5, bottom).

The transformer part follows AutoFormer/HAT-style spaces augmented with
the paper's performance-aware options: funnel-style sequence pooling,
Primer's depthwise convolution after the attention projection, and the
squared-ReLU activation H2O-NAS ends up selecting for CoAtNet-H.

Each transformer block carries six decisions — attention hidden size
(multiples of 64 up to 1024), low-rank fraction, activation, sequence
pooling, the Primer option, and a depth delta — for ``17,920``
combinations per block; two blocks give the ``O(10^8)`` pure-transformer
space.  The hybrid space adds two convolutional blocks (from the CNN
space), a patch-size decision (7 options), and 21 initial resolutions,
reaching ``O(10^21)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .base import Decision, SearchSpace
from .cnn import block_decisions as cnn_block_decisions

#: Attention hidden sizes: multiples of 64 up to 1024 (16 options).
HIDDEN_SIZES: Tuple[int, ...] = tuple(64 * i for i in range(1, 17))
#: Low-rank fractions of the attention projections.
LOW_RANK_FRACTIONS: Tuple[float, ...] = (1.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
#: Activation functions searched in the transformer FFN.
ACTIVATIONS: Tuple[str, ...] = ("relu", "swish", "gelu", "squared_relu")
#: With or without funnel-style sequence pooling after the block.
SEQUENCE_POOLING: Tuple[bool, ...] = (False, True)
#: With or without Primer's post-projection depthwise convolution.
PRIMER_DW_CONV: Tuple[bool, ...] = (False, True)
#: Layer-count deltas per transformer block.
DEPTH_DELTAS: Tuple[int, ...] = (0, -3, -2, -1, 1, 2, 3)
#: Patch sizes of the convolutional stem.
PATCH_SIZES: Tuple[int, ...] = (16, 4, 7, 8, 14, 28, 32)
#: 21 initial resolutions from 112x112 to 448x448.
HYBRID_RESOLUTIONS: Tuple[int, ...] = tuple(112 + 16 * i for i in range(21))

#: Per-transformer-block cardinality Table 5 reports (17,920).
CHOICES_PER_TFM_BLOCK = (
    len(HIDDEN_SIZES)
    * len(LOW_RANK_FRACTIONS)
    * len(ACTIVATIONS)
    * len(SEQUENCE_POOLING)
    * len(PRIMER_DW_CONV)
    * len(DEPTH_DELTAS)
)


@dataclass(frozen=True)
class VitSpaceConfig:
    """Shape of a transformer / hybrid search space."""

    num_tfm_blocks: int = 2
    num_conv_blocks: int = 0  # > 0 builds the hybrid CoAtNet-style space
    include_stem: bool = False

    def __post_init__(self) -> None:
        if self.num_tfm_blocks < 1:
            raise ValueError("num_tfm_blocks must be >= 1")
        if self.num_conv_blocks < 0:
            raise ValueError("num_conv_blocks must be >= 0")


def tfm_block_decisions(block: int) -> List[Decision]:
    """The six decisions of transformer block ``block``."""
    prefix = f"tfm{block}"
    tags = ("vit", f"tfm{block}")
    return [
        Decision(f"{prefix}/hidden_size", HIDDEN_SIZES, tags + ("hidden_size",)),
        Decision(f"{prefix}/low_rank", LOW_RANK_FRACTIONS, tags + ("low_rank",)),
        Decision(f"{prefix}/activation", ACTIVATIONS, tags + ("activation",)),
        Decision(f"{prefix}/seq_pooling", SEQUENCE_POOLING, tags + ("seq_pooling",)),
        Decision(f"{prefix}/primer", PRIMER_DW_CONV, tags + ("primer",)),
        Decision(f"{prefix}/depth_delta", DEPTH_DELTAS, tags + ("depth",)),
    ]


def vit_search_space(config: Optional[VitSpaceConfig] = None) -> SearchSpace:
    """Build the transformer-only or hybrid ViT search space."""
    config = config if config is not None else VitSpaceConfig()
    decisions: List[Decision] = []
    for block in range(config.num_tfm_blocks):
        decisions.extend(tfm_block_decisions(block))
    for block in range(config.num_conv_blocks):
        decisions.extend(cnn_block_decisions(block))
    if config.include_stem:
        decisions.append(Decision("patch_size", PATCH_SIZES, ("vit", "patch_size")))
        decisions.append(
            Decision("resolution", HYBRID_RESOLUTIONS, ("vit", "resolution"))
        )
    name = "hybrid_vit" if config.num_conv_blocks else "vit"
    return SearchSpace(name, decisions)


def hybrid_vit_search_space() -> SearchSpace:
    """Table 5's hybrid space: 2 TFM blocks, 2 conv blocks, stem choices."""
    return vit_search_space(
        VitSpaceConfig(num_tfm_blocks=2, num_conv_blocks=2, include_stem=True)
    )
