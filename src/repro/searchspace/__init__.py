"""Search spaces for DLRM, CNN, and ViT models (Table 5 of the paper)."""

from .base import Architecture, Decision, SearchSpace
from .cnn import CHOICES_PER_BLOCK, CnnSpaceConfig, cnn_search_space
from .dlrm import DlrmSpaceConfig, dlrm_search_space
from .sizes import PAPER_LOG10, SpaceSizeRow, per_block_cardinalities, table5_size_rows
from .vit import (
    CHOICES_PER_TFM_BLOCK,
    VitSpaceConfig,
    hybrid_vit_search_space,
    vit_search_space,
)

__all__ = [
    "Architecture",
    "CHOICES_PER_BLOCK",
    "CHOICES_PER_TFM_BLOCK",
    "CnnSpaceConfig",
    "Decision",
    "DlrmSpaceConfig",
    "PAPER_LOG10",
    "SearchSpace",
    "SpaceSizeRow",
    "VitSpaceConfig",
    "cnn_search_space",
    "dlrm_search_space",
    "hybrid_vit_search_space",
    "per_block_cardinalities",
    "table5_size_rows",
    "vit_search_space",
]
