"""Hardware-optimized convolutional search space (Table 5, top).

Each of the model's blocks contributes ten categorical decisions —
block type (MBConv vs fused MBConv), kernel size, stride, expansion
ratio, activation, tensor reshaping, squeeze-and-excite ratio, skip
connection, depth delta, and width delta — for 302,400 combinations per
block, plus a global initial-resolution decision with 8 choices.  With
the paper's 7 blocks the space holds ``302400^7 * 8 ~ O(10^39)``
architectures.

Delta-valued decisions are expressed relative to a baseline model (the
EfficientNet-X family in the paper) and list the zero delta first so
``SearchSpace.default_architecture`` reproduces the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .base import Decision, SearchSpace

BLOCK_TYPES: Tuple[str, ...] = ("mbconv", "fused_mbconv")
KERNEL_SIZES: Tuple[int, ...] = (3, 5, 7)
STRIDES: Tuple[int, ...] = (1, 2, 4)
EXPANSION_RATIOS: Tuple[int, ...] = (6, 1, 3, 4)
ACTIVATIONS: Tuple[str, ...] = ("swish", "relu")
RESHAPING: Tuple[str, ...] = ("none", "space_to_depth", "space_to_batch")
SE_RATIOS: Tuple[float, ...] = (0.25, 0.0, 1.0, 0.5, 0.125)
SKIP_CONNECTIONS: Tuple[str, ...] = ("identity", "none")
DEPTH_DELTAS: Tuple[int, ...] = (0, -3, -2, -1, 1, 2, 3)
#: Ten width deltas (in units of the model-dependent channel quantum X),
#: the zero delta first; the count matches Table 5's "[-5,+5] x X,
#: excluding zero" accounting of 10 options.
WIDTH_DELTAS: Tuple[int, ...] = (0, -5, -4, -3, -2, -1, 1, 2, 3, 4)
#: Eight initial resolutions spanning 224x224 to 600x600.
RESOLUTIONS: Tuple[int, ...] = (224, 256, 300, 380, 456, 528, 560, 600)

#: Decisions per block — the per-block cardinality Table 5 reports.
CHOICES_PER_BLOCK = (
    len(BLOCK_TYPES)
    * len(KERNEL_SIZES)
    * len(STRIDES)
    * len(EXPANSION_RATIOS)
    * len(ACTIVATIONS)
    * len(RESHAPING)
    * len(SE_RATIOS)
    * len(SKIP_CONNECTIONS)
    * len(DEPTH_DELTAS)
    * len(WIDTH_DELTAS)
)


@dataclass(frozen=True)
class CnnSpaceConfig:
    """Shape of a convolutional search space."""

    num_blocks: int = 7
    include_resolution: bool = True

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")


def block_decisions(block: int) -> List[Decision]:
    """The ten decisions of convolutional block ``block``."""
    prefix = f"block{block}"
    tags = ("cnn", f"block{block}")
    return [
        Decision(f"{prefix}/type", BLOCK_TYPES, tags + ("block_type",)),
        Decision(f"{prefix}/kernel", KERNEL_SIZES, tags + ("kernel",)),
        Decision(f"{prefix}/stride", STRIDES, tags + ("stride",)),
        Decision(f"{prefix}/expansion", EXPANSION_RATIOS, tags + ("expansion",)),
        Decision(f"{prefix}/activation", ACTIVATIONS, tags + ("activation",)),
        Decision(f"{prefix}/reshaping", RESHAPING, tags + ("reshaping",)),
        Decision(f"{prefix}/se_ratio", SE_RATIOS, tags + ("se_ratio",)),
        Decision(f"{prefix}/skip", SKIP_CONNECTIONS, tags + ("skip",)),
        Decision(f"{prefix}/depth_delta", DEPTH_DELTAS, tags + ("depth",)),
        Decision(f"{prefix}/width_delta", WIDTH_DELTAS, tags + ("width",)),
    ]


def cnn_search_space(config: Optional[CnnSpaceConfig] = None) -> SearchSpace:
    """Build the convolutional search space of Table 5."""
    config = config if config is not None else CnnSpaceConfig()
    decisions: List[Decision] = []
    for block in range(config.num_blocks):
        decisions.extend(block_decisions(block))
    if config.include_resolution:
        decisions.append(Decision("resolution", RESOLUTIONS, ("cnn", "resolution")))
    return SearchSpace("cnn", decisions)
