"""Search-space primitives: categorical decisions and architectures.

The paper's RL search algorithm views a search space as "a set of
categorical decisions, where each decision controls a different aspect
of the network architecture" (Section 4.1).  :class:`Decision` is one
such multinomial variable, :class:`SearchSpace` an ordered collection,
and :class:`Architecture` one concrete assignment of every decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Decision:
    """One categorical search-space decision.

    Attributes:
        name: unique identifier within its search space.
        choices: the admissible values (any hashable payload).
        tags: free-form labels ("embedding", "dense", ...) used by
            feature encoders and analysis.
    """

    name: str
    choices: Tuple[Any, ...]
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.choices) < 1:
            raise ValueError(f"decision {self.name!r} needs at least one choice")
        if len(set(map(repr, self.choices))) != len(self.choices):
            raise ValueError(f"decision {self.name!r} has duplicate choices")

    @property
    def num_choices(self) -> int:
        return len(self.choices)

    def index_of(self, value: Any) -> int:
        """Index of ``value`` among the choices."""
        for i, choice in enumerate(self.choices):
            if choice == value:
                return i
        raise ValueError(f"{value!r} is not a choice of decision {self.name!r}")


class Architecture(Mapping[str, Any]):
    """An immutable assignment of every decision in a search space."""

    def __init__(self, choices: Mapping[str, Any]):
        self._choices = dict(choices)

    def __getitem__(self, name: str) -> Any:
        return self._choices[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._choices)

    def __len__(self) -> int:
        return len(self._choices)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Architecture) and self._choices == other._choices

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, repr(v)) for k, v in self._choices.items())))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(self._choices.items()))
        return f"Architecture({body})"

    def replaced(self, **updates: Any) -> "Architecture":
        """A copy with some decisions re-assigned."""
        merged = dict(self._choices)
        merged.update(updates)
        return Architecture(merged)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._choices)


class SearchSpace:
    """An ordered collection of decisions with sampling and accounting."""

    def __init__(self, name: str, decisions: Sequence[Decision]):
        names = [d.name for d in decisions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate decision names in search space")
        self.name = name
        self.decisions: List[Decision] = list(decisions)
        self._by_name: Dict[str, Decision] = {d.name: d for d in decisions}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.decisions)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def decision(self, name: str) -> Decision:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no decision named {name!r} in space {self.name!r}") from None

    def decisions_tagged(self, tag: str) -> List[Decision]:
        """All decisions carrying ``tag``."""
        return [d for d in self.decisions if tag in d.tags]

    # ------------------------------------------------------------------
    # Size accounting (Table 5)
    # ------------------------------------------------------------------
    def cardinality(self) -> int:
        """Exact number of architectures in the space (a Python bigint)."""
        total = 1
        for decision in self.decisions:
            total *= decision.num_choices
        return total

    def log10_size(self) -> float:
        """``log10`` of the cardinality, computed without overflow."""
        return sum(math.log10(d.num_choices) for d in self.decisions)

    # ------------------------------------------------------------------
    # Sampling and validation
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> Architecture:
        """Uniformly sample one architecture."""
        return Architecture(
            {d.name: d.choices[int(rng.integers(d.num_choices))] for d in self.decisions}
        )

    def validate(self, arch: Architecture) -> None:
        """Raise if ``arch`` does not assign every decision a legal value."""
        missing = [d.name for d in self.decisions if d.name not in arch]
        if missing:
            raise ValueError(f"architecture missing decisions: {missing}")
        extra = [name for name in arch if name not in self._by_name]
        if extra:
            raise ValueError(f"architecture has unknown decisions: {extra}")
        for decision in self.decisions:
            decision.index_of(arch[decision.name])  # raises on illegal value

    def indices_of(self, arch: Architecture) -> np.ndarray:
        """Encode ``arch`` as an integer index per decision (policy order)."""
        return np.array(
            [d.index_of(arch[d.name]) for d in self.decisions], dtype=np.int64
        )

    def architecture_from_indices(self, indices: Sequence[int]) -> Architecture:
        """Inverse of :meth:`indices_of`."""
        if len(indices) != len(self.decisions):
            raise ValueError("index vector length does not match decision count")
        return Architecture(
            {d.name: d.choices[int(i)] for d, i in zip(self.decisions, indices)}
        )

    def default_architecture(self) -> Architecture:
        """The baseline architecture: first choice of every decision.

        Concrete spaces order choices so index 0 is the baseline value
        (zero depth/width delta, baseline vocabulary, ...).
        """
        return Architecture({d.name: d.choices[0] for d in self.decisions})

    def frozen(self, assignments: Mapping[str, Any], name: Optional[str] = None) -> "SearchSpace":
        """A copy of this space with some decisions pinned to one value.

        Launch constraints routinely remove options (e.g. sequence
        pooling is illegal for per-position NLP heads); freezing keeps
        the decision present — architectures stay compatible with
        super-networks and encoders built for the full space — while
        the policy has nothing left to learn for it.
        """
        decisions = []
        for decision in self.decisions:
            if decision.name in assignments:
                value = assignments[decision.name]
                decision.index_of(value)  # raises on illegal value
                decisions.append(Decision(decision.name, (value,), decision.tags))
            else:
                decisions.append(decision)
        unknown = set(assignments) - {d.name for d in self.decisions}
        if unknown:
            raise KeyError(f"cannot freeze unknown decisions: {sorted(unknown)}")
        return SearchSpace(name or f"{self.name}_frozen", decisions)
