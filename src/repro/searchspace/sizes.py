"""Search-space cardinality accounting — regenerates Table 5's size rows.

The paper reports:

* convolutional space: ``(302400)^7 * 8 ~ O(10^39)``
* DLRM space: ``7^O(300) * (7 x 10 x 10)^O(10) ~ O(10^282)``
* transformer space: ``(17920)^2 ~ O(10^8)``
* hybrid ViT space: ``17920^2 * 21 * 302400^2 * 7 ~ O(10^21)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .cnn import CHOICES_PER_BLOCK, CnnSpaceConfig, cnn_search_space
from .dlrm import DlrmSpaceConfig, dlrm_search_space
from .vit import (
    CHOICES_PER_TFM_BLOCK,
    VitSpaceConfig,
    hybrid_vit_search_space,
    vit_search_space,
)


@dataclass(frozen=True)
class SpaceSizeRow:
    """One row of the Table 5 size comparison."""

    space: str
    log10_size: float
    paper_log10: float

    @property
    def matches_paper_order(self) -> bool:
        """True when within one order of magnitude per 40 claimed orders.

        Table 5's own arithmetic is approximate (it uses O() exponents),
        so we accept a proportional tolerance.
        """
        tolerance = max(2.0, 0.05 * self.paper_log10)
        return abs(self.log10_size - self.paper_log10) <= tolerance


#: The paper's stated log10 sizes per search space.
PAPER_LOG10 = {"cnn": 39.0, "dlrm": 282.0, "vit": 8.0, "hybrid_vit": 21.0}


def table5_size_rows() -> Dict[str, SpaceSizeRow]:
    """Compute all four Table 5 size rows from the implemented spaces."""
    spaces = {
        "cnn": cnn_search_space(CnnSpaceConfig(num_blocks=7)),
        "dlrm": dlrm_search_space(DlrmSpaceConfig(num_tables=150, num_dense_stacks=10)),
        "vit": vit_search_space(VitSpaceConfig(num_tfm_blocks=2)),
        "hybrid_vit": hybrid_vit_search_space(),
    }
    return {
        name: SpaceSizeRow(
            space=name,
            log10_size=space.log10_size(),
            paper_log10=PAPER_LOG10[name],
        )
        for name, space in spaces.items()
    }


def per_block_cardinalities() -> Dict[str, int]:
    """The per-block counts Table 5 uses in its size formulas."""
    return {
        "cnn_block": CHOICES_PER_BLOCK,  # 302,400 in the paper
        "tfm_block": CHOICES_PER_TFM_BLOCK,  # 17,920 in the paper
    }
