"""DLRM search space (Table 5, middle) — the paper's first-of-a-kind
space for RL-based one-shot NAS on recommendation models.

Embedding side: every table gets a *width* decision (7 deltas around
the baseline width, in increments of 8) and a *vocabulary size*
decision (50%..200% of baseline in 25% steps — 7 options).  Dense side:
every MLP stack gets a *depth* decision (7 deltas), a *width* decision
(10 deltas in increments of 8), and a *low-rank* decision (rank as a
fraction 1/10..10/10 of layer width — 10 options).

With the defaults — 150 tables (300 embedding decisions of 7 choices)
and 10 dense stacks of ``7 x 10 x 10`` choices — the cardinality is
``7^300 * 700^10 ~ O(10^282)``, the figure Table 5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .base import Decision, SearchSpace

#: Width deltas per embedding table, in units of 8 columns, zero first.
EMBEDDING_WIDTH_DELTAS: Tuple[int, ...] = (0, -3, -2, -1, 1, 2, 3)
#: Vocabulary-size scales relative to the baseline table.
VOCAB_SCALES: Tuple[float, ...] = (1.0, 0.5, 0.75, 1.25, 1.5, 1.75, 2.0)
#: Depth deltas per dense stack.
DENSE_DEPTH_DELTAS: Tuple[int, ...] = (0, -3, -2, -1, 1, 2, 3)
#: Width deltas per dense stack, in units of 8 neurons, zero first.
DENSE_WIDTH_DELTAS: Tuple[int, ...] = (0, -5, -4, -3, -2, -1, 1, 2, 3, 4)
#: Low-rank fractions of the layer width (1.0 = full rank, no factorization).
LOW_RANK_FRACTIONS: Tuple[float, ...] = (1.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class DlrmSpaceConfig:
    """Shape of a DLRM search space.

    The defaults reproduce Table 5's cardinality arithmetic; searches in
    tests and examples use much smaller table/stack counts.
    """

    num_tables: int = 150
    num_dense_stacks: int = 10
    search_vocab: bool = True

    def __post_init__(self) -> None:
        if self.num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if self.num_dense_stacks < 1:
            raise ValueError("num_dense_stacks must be >= 1")


def table_decisions(table: int, search_vocab: bool = True) -> List[Decision]:
    """Width (and optionally vocabulary) decisions of one embedding table."""
    prefix = f"emb{table}"
    tags = ("dlrm", "embedding", f"table{table}")
    decisions = [
        Decision(f"{prefix}/width_delta", EMBEDDING_WIDTH_DELTAS, tags + ("width",)),
    ]
    if search_vocab:
        decisions.append(
            Decision(f"{prefix}/vocab_scale", VOCAB_SCALES, tags + ("vocab",))
        )
    return decisions


def stack_decisions(stack: int) -> List[Decision]:
    """Depth, width, and low-rank decisions of one dense (MLP) stack."""
    prefix = f"dense{stack}"
    tags = ("dlrm", "dense", f"stack{stack}")
    return [
        Decision(f"{prefix}/depth_delta", DENSE_DEPTH_DELTAS, tags + ("depth",)),
        Decision(f"{prefix}/width_delta", DENSE_WIDTH_DELTAS, tags + ("width",)),
        Decision(f"{prefix}/low_rank", LOW_RANK_FRACTIONS, tags + ("low_rank",)),
    ]


def dlrm_search_space(config: Optional[DlrmSpaceConfig] = None) -> SearchSpace:
    """Build the DLRM search space of Table 5."""
    config = config if config is not None else DlrmSpaceConfig()
    decisions: List[Decision] = []
    for table in range(config.num_tables):
        decisions.extend(table_decisions(table, config.search_vocab))
    for stack in range(config.num_dense_stacks):
        decisions.extend(stack_decisions(stack))
    return SearchSpace("dlrm", decisions)
