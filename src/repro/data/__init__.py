"""In-memory data pipelines and synthetic production-traffic generators."""

from .batch import Batch
from .pipeline import (
    PipelineExhausted,
    PipelineProtocolError,
    SingleStepPipeline,
    TwoStreamPipeline,
)
from .sharded import ShardedSource
from .synthetic import (
    CtrTaskConfig,
    CtrTeacher,
    LmTaskConfig,
    LmTeacher,
    NullSource,
    SequenceTaskConfig,
    SequenceTeacher,
    VisionTaskConfig,
    VisionTeacher,
)

__all__ = [
    "Batch",
    "CtrTaskConfig",
    "CtrTeacher",
    "LmTaskConfig",
    "LmTeacher",
    "NullSource",
    "PipelineExhausted",
    "PipelineProtocolError",
    "SequenceTaskConfig",
    "SequenceTeacher",
    "ShardedSource",
    "SingleStepPipeline",
    "TwoStreamPipeline",
    "VisionTaskConfig",
    "VisionTeacher",
]
