"""Synthetic production-traffic generators.

Production data cannot leave Google, so the reproduction plants its own
signal.  Both task families are *architecture-sensitive* by
construction: a teacher network with known structure generates the
labels, so candidates with enough capacity in the right places
(embedding width for memorization, MLP width/depth for generalization)
measurably outperform candidates without it — the property the
Pareto-optimization needs in order to have a real quality axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

import numpy as np

from .batch import Batch


class ResumableSource:
    """Checkpoint support for seeded batch streams.

    Teachers derive every batch from ``self._rng`` and number them with
    ``self._next_id``; capturing the bit-generator state and the counter
    is therefore enough to resume the stream bit-identically after a
    crash (the teacher weights are reconstructed from the config seed).
    """

    def state_dict(self) -> dict:
        return {"rng": self._rng.bit_generator.state, "next_id": self._next_id}

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self._next_id = int(state["next_id"])


@dataclass(frozen=True)
class CtrTaskConfig:
    """Synthetic click-through-rate (DLRM) task.

    Labels come from a teacher combining (a) per-id memorized offsets —
    learnable only by embeddings, with per-table importance decaying so
    wider/larger tables help unevenly — and (b) a smooth nonlinear
    function of the dense features — learnable only by the MLP side.
    """

    num_tables: int = 4
    vocab_size: int = 64
    num_dense: int = 8
    batch_size: int = 64
    #: Relative strength of the memorization (embedding) signal.
    memorization_weight: float = 1.0
    #: Relative strength of the generalization (dense MLP) signal.
    generalization_weight: float = 1.0
    seed: int = 0


class CtrTeacher(ResumableSource):
    """Generates CTR batches with planted memorization/generalization signal."""

    def __init__(self, config: CtrTaskConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        # Memorized per-id logits; importance decays geometrically per table,
        # so tables are unequally valuable (as in production DLRMs).
        self._table_importance = 0.7 ** np.arange(config.num_tables)
        self._id_logits = rng.normal(
            0.0, 1.0, size=(config.num_tables, config.vocab_size)
        )
        # Smooth dense teacher: random two-layer network.
        self._w1 = rng.normal(0.0, 1.0, size=(config.num_dense, 16))
        self._w2 = rng.normal(0.0, 1.0, size=(16, 1))
        self._rng = np.random.default_rng(config.seed + 1)
        self._next_id = 0

    def next_batch(self) -> Batch:
        cfg = self.config
        rng = self._rng
        dense = rng.normal(0.0, 1.0, size=(cfg.batch_size, cfg.num_dense))
        sparse = rng.integers(0, cfg.vocab_size, size=(cfg.batch_size, cfg.num_tables))
        memor = np.zeros(cfg.batch_size)
        for t in range(cfg.num_tables):
            memor += self._table_importance[t] * self._id_logits[t, sparse[:, t]]
        gener = np.tanh(dense @ self._w1) @ self._w2
        logits = (
            cfg.memorization_weight * memor
            + cfg.generalization_weight * gener[:, 0]
        )
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (rng.uniform(size=cfg.batch_size) < probs).astype(np.float64)
        batch = Batch(
            batch_id=self._next_id,
            inputs={"dense": dense, "sparse": sparse},
            labels=labels.reshape(-1, 1),
        )
        self._next_id += 1
        return batch


@dataclass(frozen=True)
class SequenceTaskConfig:
    """Synthetic sequence-classification task for transformer proxies.

    Each example is a sequence of feature vectors; the teacher mixes
    information across positions (a fixed bilinear interaction between
    the sequence mean and the first token) before classifying, so
    models that can attend across positions outperform pointwise ones.
    """

    seq_len: int = 8
    num_features: int = 8
    num_classes: int = 4
    batch_size: int = 32
    label_noise: float = 0.05
    seed: int = 0


class SequenceTeacher(ResumableSource):
    """Generates sequence batches from a fixed cross-position teacher."""

    def __init__(self, config: SequenceTaskConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        hidden = 16
        self._w_mean = rng.normal(0.0, 1.0, size=(config.num_features, hidden))
        self._w_first = rng.normal(0.0, 1.0, size=(config.num_features, hidden))
        self._w_out = rng.normal(0.0, 1.2, size=(hidden, config.num_classes))
        self._rng = np.random.default_rng(config.seed + 1)
        self._next_id = 0

    def next_batch(self) -> Batch:
        cfg = self.config
        rng = self._rng
        x = rng.normal(0.0, 1.0, size=(cfg.batch_size, cfg.seq_len, cfg.num_features))
        mixed = np.maximum(
            x.mean(axis=1) @ self._w_mean + x[:, 0, :] @ self._w_first, 0.0
        )
        labels = (mixed @ self._w_out).argmax(axis=1)
        flip = rng.uniform(size=cfg.batch_size) < cfg.label_noise
        labels[flip] = rng.integers(0, cfg.num_classes, size=int(flip.sum()))
        batch = Batch(batch_id=self._next_id, inputs={"x": x}, labels=labels)
        self._next_id += 1
        return batch


@dataclass(frozen=True)
class LmTaskConfig:
    """Synthetic next-token-style task for transformer NLP proxies.

    Each position's label depends on the current *and previous*
    position's features (a bigram teacher), so per-position prediction
    requires mixing information along the sequence — the capability the
    paper's transformer search space targets for NLP models.
    """

    seq_len: int = 8
    num_features: int = 8
    num_classes: int = 4
    batch_size: int = 32
    label_noise: float = 0.05
    seed: int = 0


class LmTeacher(ResumableSource):
    """Generates per-position-labelled sequences from a bigram teacher."""

    def __init__(self, config: LmTaskConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        hidden = 16
        self._w_current = rng.normal(0.0, 1.0, size=(config.num_features, hidden))
        self._w_previous = rng.normal(0.0, 1.0, size=(config.num_features, hidden))
        self._w_out = rng.normal(0.0, 1.2, size=(hidden, config.num_classes))
        self._rng = np.random.default_rng(config.seed + 1)
        self._next_id = 0

    def next_batch(self) -> Batch:
        cfg = self.config
        rng = self._rng
        x = rng.normal(0.0, 1.0, size=(cfg.batch_size, cfg.seq_len, cfg.num_features))
        previous = np.concatenate([np.zeros_like(x[:, :1]), x[:, :-1]], axis=1)
        mixed = np.maximum(
            x @ self._w_current + previous @ self._w_previous, 0.0
        )
        labels = (mixed @ self._w_out).argmax(axis=-1)  # (batch, seq)
        flip = rng.uniform(size=labels.shape) < cfg.label_noise
        labels[flip] = rng.integers(0, cfg.num_classes, size=int(flip.sum()))
        batch = Batch(batch_id=self._next_id, inputs={"x": x}, labels=labels)
        self._next_id += 1
        return batch


class NullSource:
    """Produces empty placeholder batches.

    Used by surrogate-driven searches, where quality comes from an
    analytical model rather than data, but the single-step pipeline's
    consumption protocol is still exercised.
    """

    def __init__(self):
        self._next_id = 0

    def state_dict(self) -> dict:
        return {"next_id": self._next_id}

    def load_state_dict(self, state: dict) -> None:
        self._next_id = int(state["next_id"])

    def next_batch(self) -> Batch:
        batch = Batch(batch_id=self._next_id, inputs={}, labels=np.zeros(1))
        self._next_id += 1
        return batch


@dataclass(frozen=True)
class VisionTaskConfig:
    """Synthetic vision-like classification task.

    Inputs are feature vectors standing in for image encodings; a fixed
    nonlinear teacher assigns one of ``num_classes`` labels.  Capacity
    (width/depth) of a student measurably improves its accuracy until
    it saturates the teacher, giving the searches a quality gradient.
    """

    num_features: int = 16
    num_classes: int = 4
    batch_size: int = 64
    teacher_hidden: int = 32
    label_noise: float = 0.05
    seed: int = 0


class VisionTeacher(ResumableSource):
    """Generates classification batches from a fixed nonlinear teacher."""

    def __init__(self, config: VisionTaskConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._w1 = rng.normal(0.0, 1.2, size=(config.num_features, config.teacher_hidden))
        self._w2 = rng.normal(0.0, 1.2, size=(config.teacher_hidden, config.num_classes))
        self._rng = np.random.default_rng(config.seed + 1)
        self._next_id = 0

    def next_batch(self) -> Batch:
        cfg = self.config
        rng = self._rng
        x = rng.normal(0.0, 1.0, size=(cfg.batch_size, cfg.num_features))
        logits = np.maximum(x @ self._w1, 0.0) @ self._w2
        labels = logits.argmax(axis=1)
        flip = rng.uniform(size=cfg.batch_size) < cfg.label_noise
        labels[flip] = rng.integers(0, cfg.num_classes, size=int(flip.sum()))
        batch = Batch(
            batch_id=self._next_id,
            inputs={"x": x},
            labels=labels,
        )
        self._next_id += 1
        return batch
