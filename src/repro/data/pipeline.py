"""In-memory data pipelines (Section 4.1 / item (1) in Figure 1).

Two pipelines implement the two data regimes the paper contrasts:

* :class:`SingleStepPipeline` — the H2O-NAS regime.  Production traffic
  is effectively infinite, so every batch is consumed exactly once, and
  the pipeline *enforces* the ordering invariant the algorithm relies
  on: the policy (architecture choices ``alpha``) must consume a batch
  before the shared weights ``W`` may train on it, guaranteeing the
  policy always scores candidates on data the weights have never seen.
  Nothing is ever persisted — batches live only in memory and are
  dropped once fully consumed.

* :class:`TwoStreamPipeline` — the TuNAS/research regime: a finite
  dataset split into disjoint train/validation streams, with reuse
  across epochs.  Used by the baseline algorithm and by the single-step
  vs two-step ablation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .batch import Batch

BatchSource = Callable[[], Batch]


class _TelemetryMixin:
    """Optional shared telemetry handle for the pipelines.

    Pipelines are constructed before the search that owns the telemetry
    handle, so the search attaches it afterwards (see
    ``SingleStepSearch.__init__``); all recording is a no-op until then.
    """

    _telemetry: Optional[Any] = None

    def attach_telemetry(self, telemetry: Any) -> None:
        """Attach a telemetry handle unless one is already set."""
        if self._telemetry is None:
            self._telemetry = telemetry


def _source_owner(source: BatchSource) -> object:
    """The stateful object behind a batch source callable.

    Sources are usually bound methods (``teacher.next_batch``); the
    owning instance is what carries the rng/cursor state a checkpoint
    must capture.  Bare callables are their own owner.
    """
    return getattr(source, "__self__", source)


def capture_source_state(source: BatchSource) -> Optional[dict]:
    """Snapshot the source's state via its ``state_dict``, if it has one."""
    owner = _source_owner(source)
    state_dict = getattr(owner, "state_dict", None)
    return state_dict() if callable(state_dict) else None


def restore_source_state(source: BatchSource, state: Optional[dict]) -> None:
    """Restore a :func:`capture_source_state` snapshot into the source.

    A snapshot taken from a stateful source can only be restored into a
    source that knows how to load it — silently skipping would break the
    bit-identical resume guarantee, so that case raises.
    """
    if state is None:
        return
    owner = _source_owner(source)
    load = getattr(owner, "load_state_dict", None)
    if not callable(load):
        raise PipelineProtocolError(
            f"checkpoint carries batch-source state but {type(owner).__name__} "
            "has no load_state_dict to restore it into"
        )
    load(state)


class PipelineProtocolError(RuntimeError):
    """Raised when a consumer violates the single-use/ordering protocol."""


class PipelineExhausted(PipelineProtocolError):
    """Raised when a bounded pipeline has no fresh batches left.

    Deliberately *not* a ``StopIteration`` subclass: a ``StopIteration``
    escaping into a ``for`` loop or generator silently terminates the
    iteration, which turned budget exhaustion mid-search into a truncated
    run with no error.  Exhaustion is loud now.
    """


class SingleStepPipeline(_TelemetryMixin):
    """Streaming pipeline with single-use, policy-before-weights batches.

    Bookkeeping is O(outstanding batches), not O(stream length): a batch's
    record is dropped the moment it is fully consumed, and single-delivery
    is enforced through the stream's monotone batch ids (see
    :class:`~repro.data.batch.Batch`) with an O(1) high-watermark.
    """

    def __init__(self, source: BatchSource, max_batches: Optional[int] = None):
        self._source = source
        self._max_batches = max_batches
        self._issued = 0
        #: batch_id -> consumption state, for *outstanding* batches only
        #: ("issued" | "policy"); fully-consumed entries are evicted.
        self._outstanding: Dict[int, str] = {}
        #: highest batch id ever issued — O(1) re-delivery detection.
        self._id_watermark = -1
        self._peak_outstanding = 0

    # ------------------------------------------------------------------
    @property
    def batches_issued(self) -> int:
        return self._issued

    @property
    def outstanding_batches(self) -> int:
        """Batches issued but not yet fully consumed (bookkeeping size)."""
        return len(self._outstanding)

    @property
    def peak_outstanding(self) -> int:
        """High-watermark of :attr:`outstanding_batches` over the stream."""
        return self._peak_outstanding

    def exhausted(self) -> bool:
        return self._max_batches is not None and self._issued >= self._max_batches

    def force_exhaust(self) -> None:
        """Cut the stream off now: the next fetch raises.

        Models an upstream feed drying up mid-search; the fault-injection
        harness (:mod:`repro.runtime.faults`) uses it to simulate an
        exhausted data pipeline.
        """
        self._max_batches = self._issued

    def next_batch(self) -> Batch:
        """Fetch the next fresh batch from the stream."""
        if self.exhausted():
            if self._telemetry is not None:
                self._telemetry.event(
                    "pipeline.exhausted",
                    issued=self._issued,
                    max_batches=self._max_batches,
                )
            raise PipelineExhausted(
                f"pipeline exhausted after {self._issued} batches "
                f"(max_batches={self._max_batches})"
            )
        batch = self._source()
        if batch.batch_id <= self._id_watermark:
            raise PipelineProtocolError(
                f"source re-issued batch {batch.batch_id} (ids must be fresh "
                f"and increasing; watermark={self._id_watermark}); production "
                "traffic must deliver each example once"
            )
        self._id_watermark = batch.batch_id
        self._outstanding[batch.batch_id] = "issued"
        self._peak_outstanding = max(self._peak_outstanding, len(self._outstanding))
        self._issued += 1
        if self._telemetry is not None:
            self._telemetry.counter("pipeline.batches").inc()
            self._telemetry.gauge("pipeline.watermark").set(self._id_watermark)
            self._telemetry.gauge("pipeline.outstanding").set(
                len(self._outstanding)
            )
            self._telemetry.gauge("pipeline.peak_outstanding").set(
                self._peak_outstanding
            )
        return batch

    def next_shard(self, count: int) -> List[Batch]:
        """Fetch one batch per parallel core, in core order.

        The shard hand-off point for the search engine's fetch stage:
        one call delivers the whole step's batches.  The source is
        always drained sequentially on the caller's thread — batch ids
        must stay monotone and the source's rng state is part of the
        bit-identity contract — so this is bookkeeping sugar, not a
        parallelism point.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.next_batch() for _ in range(count)]

    def mark_policy_use(self, batch: Batch) -> None:
        """Record that the RL policy consumed ``batch`` (must come first)."""
        state = self._outstanding.get(batch.batch_id)
        if state is None:
            if batch.batch_id > self._id_watermark:
                raise PipelineProtocolError(
                    f"batch {batch.batch_id} was never issued"
                )
            raise PipelineProtocolError(
                f"batch {batch.batch_id} already fully consumed "
                "(state='weights'; record dropped)"
            )
        if state != "issued":
            raise PipelineProtocolError(
                f"batch {batch.batch_id} already consumed by the policy "
                f"(state={state!r})"
            )
        self._outstanding[batch.batch_id] = "policy"

    def mark_weight_use(self, batch: Batch) -> None:
        """Record that shared-weight training consumed ``batch``.

        Raises unless the policy consumed the batch first — the paper's
        "learning alpha always precedes training W" guarantee.
        """
        state = self._outstanding.get(batch.batch_id)
        if state is None:
            if batch.batch_id > self._id_watermark:
                raise PipelineProtocolError(
                    f"batch {batch.batch_id} was never issued"
                )
            raise PipelineProtocolError(
                f"batch {batch.batch_id} already used for weight training; "
                "every example is used at most once"
            )
        if state == "issued":
            raise PipelineProtocolError(
                f"batch {batch.batch_id}: weights may not train on data the "
                "policy has not yet scored (policy-before-weights invariant)"
            )
        # Fully consumed: drop all record of the data (in-memory only).
        del self._outstanding[batch.batch_id]
        if self._telemetry is not None:
            self._telemetry.gauge("pipeline.outstanding").set(
                len(self._outstanding)
            )

    def release(self, batch: Batch) -> None:
        """Retire a policy-scored batch that will never train weights.

        Policy-only searches (see
        :class:`repro.core.elastic.SpecializationSearch`) score candidates
        on fresh traffic but never run a weight update, so without an
        explicit release every batch record would stay outstanding for
        the whole run — O(steps) bookkeeping growth.  Releasing still
        requires the policy to have consumed the batch first, preserving
        the ordering invariant.
        """
        state = self._outstanding.get(batch.batch_id)
        if state is None:
            if batch.batch_id > self._id_watermark:
                raise PipelineProtocolError(
                    f"batch {batch.batch_id} was never issued"
                )
            raise PipelineProtocolError(
                f"batch {batch.batch_id} already fully consumed"
            )
        if state == "issued":
            raise PipelineProtocolError(
                f"batch {batch.batch_id}: only policy-scored batches may be "
                "released (policy-before-release invariant)"
            )
        del self._outstanding[batch.batch_id]
        if self._telemetry is not None:
            self._telemetry.gauge("pipeline.outstanding").set(
                len(self._outstanding)
            )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpoint-ready snapshot of counters plus the source's state.

        Outstanding-batch records are stored as ``[batch_id, state]``
        pairs (searches checkpoint at step boundaries, where the list is
        empty, but the snapshot is faithful either way).  The batch data
        itself is never persisted — production traffic must not touch
        disk; a resumed run re-draws from the restored source stream.
        """
        return {
            "issued": self._issued,
            "id_watermark": self._id_watermark,
            "peak_outstanding": self._peak_outstanding,
            "outstanding": [[bid, st] for bid, st in self._outstanding.items()],
            "source": capture_source_state(self._source),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        self._issued = int(state["issued"])
        self._id_watermark = int(state["id_watermark"])
        self._peak_outstanding = int(state["peak_outstanding"])
        self._outstanding = {int(bid): str(st) for bid, st in state["outstanding"]}
        restore_source_state(self._source, state["source"])


class TwoStreamPipeline(_TelemetryMixin):
    """Finite train/validation streams with reuse (the research regime)."""

    def __init__(
        self,
        source: BatchSource,
        train_batches: int,
        valid_batches: int,
    ):
        if train_batches < 1 or valid_batches < 1:
            raise ValueError("both splits need at least one batch")
        self._train: List[Batch] = [source() for _ in range(train_batches)]
        self._valid: List[Batch] = [source() for _ in range(valid_batches)]
        self._train_cursor = 0
        self._valid_cursor = 0
        self.train_reuses = 0
        self.valid_reuses = 0

    def next_train_batch(self) -> Batch:
        """Next training batch, cycling with reuse across epochs."""
        batch = self._train[self._train_cursor]
        self._train_cursor += 1
        if self._train_cursor == len(self._train):
            self._train_cursor = 0
            self.train_reuses += 1
        if self._telemetry is not None:
            self._telemetry.counter("pipeline.batches").inc(split="train")
            self._telemetry.gauge("pipeline.reuses").set(
                self.train_reuses, split="train"
            )
        return batch

    def next_valid_batch(self) -> Batch:
        """Next validation batch, cycling with reuse."""
        batch = self._valid[self._valid_cursor]
        self._valid_cursor += 1
        if self._valid_cursor == len(self._valid):
            self._valid_cursor = 0
            self.valid_reuses += 1
        if self._telemetry is not None:
            self._telemetry.counter("pipeline.batches").inc(split="valid")
            self._telemetry.gauge("pipeline.reuses").set(
                self.valid_reuses, split="valid"
            )
        return batch

    @property
    def train_size(self) -> int:
        return len(self._train)

    @property
    def valid_size(self) -> int:
        return len(self._valid)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Cursor/reuse snapshot.

        The split batches themselves are drawn once at construction from
        a (seeded) source, so a resumed run rebuilds identical splits by
        reconstructing the pipeline and only needs the cursors restored.
        """
        return {
            "train_cursor": self._train_cursor,
            "valid_cursor": self._valid_cursor,
            "train_reuses": self.train_reuses,
            "valid_reuses": self.valid_reuses,
            "train_size": len(self._train),
            "valid_size": len(self._valid),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        if (
            int(state["train_size"]) != len(self._train)
            or int(state["valid_size"]) != len(self._valid)
        ):
            raise PipelineProtocolError(
                "checkpoint was taken with different train/valid split sizes"
            )
        self._train_cursor = int(state["train_cursor"])
        self._valid_cursor = int(state["valid_cursor"])
        self.train_reuses = int(state["train_reuses"])
        self.valid_reuses = int(state["valid_reuses"])
