"""Sharded in-memory streams for massively parallel search.

The single-step algorithm runs on "hundreds of accelerators in
parallel" (Section 4.2), each consuming its own slice of the incoming
production traffic.  :class:`ShardedSource` fans one batch source out
to ``num_shards`` per-core sources with the properties the algorithm
needs:

* **global single-use** — every batch from the underlying source goes
  to exactly one shard, so the no-reuse guarantee holds fleet-wide;
* **per-shard ordering** — each shard sees batches in arrival order;
* **bounded skew** — shards pull from a shared round-robin dispatcher,
  so a lagging core buffers at most its own backlog.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List

from .batch import Batch

BatchSource = Callable[[], Batch]


class ShardedSource:
    """Fans one batch source out to ``num_shards`` disjoint sub-streams."""

    def __init__(self, source: BatchSource, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._source = source
        self.num_shards = num_shards
        self._queues: List[Deque[Batch]] = [deque() for _ in range(num_shards)]
        self._next_shard = 0
        self._dispatched = 0

    # ------------------------------------------------------------------
    @property
    def batches_dispatched(self) -> int:
        return self._dispatched

    def backlog(self, shard: int) -> int:
        """Batches buffered for ``shard`` that it has not consumed yet."""
        self._check_shard(shard)
        return len(self._queues[shard])

    def next_batch(self, shard: int) -> Batch:
        """The next batch for ``shard``, pulling new traffic as needed."""
        self._check_shard(shard)
        queue = self._queues[shard]
        while not queue:
            self._dispatch_one()
        return queue.popleft()

    def shard_source(self, shard: int) -> BatchSource:
        """A zero-argument batch source bound to ``shard``.

        Plug one of these per core into a
        :class:`~repro.data.pipeline.SingleStepPipeline`.
        """
        self._check_shard(shard)
        return lambda: self.next_batch(shard)

    # ------------------------------------------------------------------
    def _dispatch_one(self) -> None:
        batch = self._source()
        self._queues[self._next_shard].append(batch)
        self._next_shard = (self._next_shard + 1) % self.num_shards
        self._dispatched += 1

    def _check_shard(self, shard: int) -> None:
        if not (0 <= shard < self.num_shards):
            raise ValueError(f"shard {shard} outside [0, {self.num_shards})")
