"""Batch container shared by all data pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class Batch:
    """One mini-batch of examples.

    Attributes:
        batch_id: monotonically increasing id assigned by the stream;
            used by the single-step pipeline to enforce its
            policy-before-weights consumption protocol.
        inputs: named input arrays (e.g. ``dense``/``sparse`` for a
            DLRM, ``x`` for a vision task).
        labels: target array.
    """

    batch_id: int
    inputs: Dict[str, np.ndarray] = field(default_factory=dict)
    labels: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def size(self) -> int:
        """Number of examples in the batch."""
        return int(self.labels.shape[0])

    def split(self) -> tuple["Batch", "Batch"]:
        """Split into two half-batches (used by the two-step baseline)."""
        half = self.size // 2
        if half == 0:
            raise ValueError("batch too small to split")
        first = Batch(
            batch_id=self.batch_id,
            inputs={k: v[:half] for k, v in self.inputs.items()},
            labels=self.labels[:half],
        )
        second = Batch(
            batch_id=self.batch_id,
            inputs={k: v[half:] for k, v in self.inputs.items()},
            labels=self.labels[half:],
        )
        return first, second
