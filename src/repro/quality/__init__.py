"""Quality surrogates for hyperscale models (substitution for real training)."""

from .surrogate import (
    ACTIVATION_BONUS,
    DATASET_CALIBRATION,
    DlrmQualityModel,
    activation_bonus,
    capacity_quality,
    coatnet_quality,
    efficientnet_quality,
)

__all__ = [
    "ACTIVATION_BONUS",
    "DATASET_CALIBRATION",
    "DlrmQualityModel",
    "activation_bonus",
    "capacity_quality",
    "coatnet_quality",
    "efficientnet_quality",
]
