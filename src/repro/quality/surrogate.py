"""Analytical quality surrogates for hyperscale-scale models.

The paper measures quality by actually training CoAtNet/EfficientNet on
ImageNet/JFT and DLRMs on production traffic — compute we do not have.
The benchmark harness therefore uses calibrated analytical surrogates
(documented as a substitution in DESIGN.md):

* **Vision**: a saturating power law in parameter count (capacity) per
  pretraining-dataset scale, plus the three Table-3 effects — a
  log-depth bonus for a deeper convolution part, a log-resolution term,
  and a per-activation bonus.  The constants are fitted so the four
  rows of Table 3 reproduce exactly (89.7 -> 90.3 -> 88.9 -> 89.7) and
  the CoAtNet family accuracies land near their published values.
* **DLRM**: log-capacity terms for memorization (total embedding
  parameters) and generalization (MLP compute), calibrated so the
  searched DLRM-H rebalance yields the paper's +0.02% quality.

These surrogates only need to be *directionally* right: the searches
and Pareto benches use them as the quality axis, and the reproduction
claims concern who wins and by roughly what factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from ..models.coatnet import CoatNetConfig, num_params as coatnet_params
from ..models.dlrm import DlrmModelSpec
from ..models.efficientnet import EfficientNetConfig, num_params as enet_params

#: Per-activation quality bonus (percentage points of top-1 accuracy).
ACTIVATION_BONUS: Dict[str, float] = {
    "gelu": 0.0,
    "squared_relu": 0.8,
    "swish": 0.1,
    "relu": -0.2,
    "linear": -1.0,
}

#: (accuracy ceiling, capacity decay) per pretraining-dataset scale.
DATASET_CALIBRATION: Dict[str, tuple] = {
    "small": (87.5, 12.4),  # ImageNet-1K pretraining
    "medium": (90.5, 13.6),  # ImageNet-21K
    "large": (92.0, 16.3),  # JFT-300M
}

CAPACITY_EXPONENT = 0.30
DEPTH_COEF = 2.086  # fitted to Table 3's +DeeperConv row (+0.6 for 12 -> 16)
RESOLUTION_COEF = 4.161  # fitted to Table 3's +ResShrink row (-1.4 for 224 -> 160)
BASE_CONV_LAYERS = 12
BASE_RESOLUTION = 224


def capacity_quality(params: float, dataset: str = "large") -> float:
    """Saturating accuracy-vs-parameters law for one dataset scale."""
    if params <= 0:
        raise ValueError("params must be positive")
    try:
        ceiling, decay = DATASET_CALIBRATION[dataset]
    except KeyError:
        raise ValueError(
            f"unknown dataset {dataset!r}; expected {sorted(DATASET_CALIBRATION)}"
        ) from None
    millions = params / 1e6
    return ceiling - decay * millions ** (-CAPACITY_EXPONENT)


def activation_bonus(activation: str) -> float:
    try:
        return ACTIVATION_BONUS[activation]
    except KeyError:
        raise ValueError(f"no quality calibration for activation {activation!r}") from None


def _soft_cap(quality: float, ceiling: float, width: float = 0.5) -> float:
    """Smoothly saturate ``quality`` below ``ceiling``.

    Monotone in ``quality`` (so family orderings survive saturation) and
    within ~0.01 of the identity when ``quality`` sits more than a few
    ``width`` units below the ceiling — the Table 3 anchors are
    unaffected.
    """
    scaled = (ceiling - quality) / width
    # log(1 + exp(scaled)) computed stably for both signs.
    softplus = max(scaled, 0.0) + math.log1p(math.exp(-abs(scaled)))
    return ceiling - width * softplus


def coatnet_quality(config: CoatNetConfig, dataset: str = "large") -> float:
    """Top-1 ImageNet accuracy surrogate for a CoAtNet-style config."""
    quality = capacity_quality(coatnet_params(config), dataset)
    quality += DEPTH_COEF * math.log(config.conv_layers / BASE_CONV_LAYERS)
    quality += RESOLUTION_COEF * math.log(config.resolution / BASE_RESOLUTION)
    quality += activation_bonus(config.activation)
    ceiling, _ = DATASET_CALIBRATION[dataset]
    return _soft_cap(quality, ceiling)


def efficientnet_quality(config: EfficientNetConfig, dataset: str = "small") -> float:
    """Top-1 accuracy surrogate for an EfficientNet-style config.

    EfficientNet models train on ImageNet-1K; resolution is part of the
    compound scaling, so it enters through the same resolution term.
    """
    quality = capacity_quality(enet_params(config), dataset)
    quality += RESOLUTION_COEF * math.log(config.resolution / BASE_RESOLUTION)
    ceiling, _ = DATASET_CALIBRATION[dataset]
    return _soft_cap(quality, ceiling)


#: DLRM surrogate calibration: memorization/generalization coefficients
#: fitted so the DLRM-H rebalance (+87.5% embedding capacity, -11.5% MLP
#: compute) gains the paper's +0.02% quality.
DLRM_MEMORIZATION_COEF = 0.10
DLRM_GENERALIZATION_COEF = 0.35
DLRM_BASE_QUALITY = 80.0


@dataclass(frozen=True)
class DlrmQualityModel:
    """Quality surrogate anchored at a baseline DLRM spec."""

    baseline: DlrmModelSpec
    base_quality: float = DLRM_BASE_QUALITY

    def embedding_capacity(self, spec: DlrmModelSpec) -> float:
        """Memorization capacity: total embedding parameters."""
        return sum(t.vocab * t.width for t in spec.tables)

    def mlp_capacity(self, spec: DlrmModelSpec) -> float:
        """Generalization capacity: MLP compute proxy (width^2 x depth),
        discounted by low-rank factorization."""
        total = 0.0
        for stack in (spec.bottom, spec.top):
            rank_discount = min(1.0, 2 * stack.low_rank)
            total += stack.width**2 * stack.depth * rank_discount
        return total

    def quality(self, spec: DlrmModelSpec) -> float:
        """AUC-like quality (percent) of ``spec``."""
        emb_ratio = self.embedding_capacity(spec) / self.embedding_capacity(self.baseline)
        mlp_ratio = self.mlp_capacity(spec) / self.mlp_capacity(self.baseline)
        return (
            self.base_quality
            + DLRM_MEMORIZATION_COEF * math.log(emb_ratio)
            + DLRM_GENERALIZATION_COEF * math.log(mlp_ratio)
        )
