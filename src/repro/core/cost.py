"""NAS cost accounting (Section 7.3 of the paper).

The paper's deployment-efficiency claims, reproduced as an explicit
model:

* one-shot search costs ~1.5x a vanilla training run (the super-network
  overhead), and the winning architecture is retrained from scratch
  (1x more), for a total of ~2.5x vanilla training;
* multi-trial NAS pays roughly one training run *per trial*;
* performance-model building is CPU-simulation-bound and negligible
  next to accelerator training;
* the whole search amortizes to a tiny fraction of the downstream
  serving/research compute the optimized model then powers
  (paper: < 0.03%).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NasCostModel:
    """Accelerator-hour accounting around one target model."""

    #: Cost of training the target model once, in accelerator-hours.
    vanilla_training_hours: float
    #: One-shot search overhead relative to vanilla training (the paper's
    #: "search cost is ~1.5x that of regular model training").
    search_overhead: float = 0.5
    #: The searched architecture is retrained without the one-shot
    #: super-network overhead before deployment.
    retrain_multiple: float = 1.0
    #: Performance-model building runs on CPUs against the simulator;
    #: its accelerator cost is a rounding error.
    perf_model_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.vanilla_training_hours <= 0:
            raise ValueError("vanilla_training_hours must be positive")
        if self.search_overhead < 0 or self.retrain_multiple < 0:
            raise ValueError("overheads must be non-negative")

    # ------------------------------------------------------------------
    def one_shot_hours(self) -> float:
        """Total accelerator-hours of an H2O-NAS run (search + retrain)."""
        search = (1.0 + self.search_overhead) * self.vanilla_training_hours
        retrain = self.retrain_multiple * self.vanilla_training_hours
        return search + retrain + self.perf_model_hours

    def one_shot_multiple(self) -> float:
        """One-shot cost as a multiple of vanilla training (paper: ~2.5x)."""
        return self.one_shot_hours() / self.vanilla_training_hours

    def multi_trial_hours(self, num_trials: int) -> float:
        """Accelerator-hours of multi-trial NAS with ``num_trials`` trials."""
        if num_trials < 1:
            raise ValueError("num_trials must be >= 1")
        return num_trials * self.vanilla_training_hours

    def one_shot_advantage(self, num_trials: int) -> float:
        """How many times cheaper one-shot is than ``num_trials`` trials."""
        return self.multi_trial_hours(num_trials) / self.one_shot_hours()

    def downstream_fraction(self, downstream_hours: float) -> float:
        """NAS cost as a fraction of downstream serving/research compute."""
        if downstream_hours <= 0:
            raise ValueError("downstream_hours must be positive")
        return self.one_shot_hours() / downstream_hours
