"""Search algorithms: H2O-NAS single-step parallel search and the
TuNAS-style alternating baseline (Figure 2 of the paper).

Both algorithms share the same ingredients — a super-network (shared
weights ``W``), a REINFORCE controller (policy ``pi`` over architecture
choices ``alpha``), a reward function, and a performance predictor —
and differ exactly where the paper says they differ:

* :class:`SingleStepSearch` (right side of Figure 2): one unified step
  learns both ``pi`` and ``W`` from the *same* stream of fresh
  production traffic.  ``N`` parallel cores each sample a candidate,
  score it on a fresh batch (the policy consumes the batch first),
  cross-shard-update the policy, and then cross-shard-update the
  shared weights on the same batches.
* :class:`TunasSearch` (left side of Figure 2): alternating steps — a
  weight-training step on the training split, then a policy step on
  the validation split — with data reuse across epochs, as required
  when data is scarce.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

import numpy as np

from ..data.batch import Batch
from ..data.pipeline import SingleStepPipeline, TwoStreamPipeline
from ..nn import Adam, Optimizer
from ..searchspace.base import Architecture, SearchSpace
from .controller import ReinforceController
from .eval_runtime import (
    STAGE_POLICY_UPDATE,
    STAGE_PRICE,
    STAGE_SAMPLE,
    STAGE_SCORE,
    STAGE_WEIGHT_UPDATE,
    ArchKey,
    EvalRuntime,
    EvalRuntimeStats,
    arch_key,
)
from .reward import RewardFunction

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..telemetry import Telemetry

PerformanceFn = Callable[[Architecture], Mapping[str, float]]

#: One sampled candidate: (architecture, decision-index vector).
DrawnCandidate = Tuple[Architecture, Sequence[int]]


class SuperNetwork(Protocol):
    """What the searches need from a super-network."""

    def quality(self, arch: Architecture, inputs, labels) -> float: ...

    def loss(self, arch: Architecture, inputs, labels): ...

    def parameters(self): ...

    def zero_grad(self) -> None: ...


def group_unique_architectures(
    drawn: Sequence[DrawnCandidate],
) -> List[List[int]]:
    """Shard positions grouped by sampled architecture, first-seen order.

    Late in a search the policy has converged and most of the
    ``num_cores`` cores sample the *same* architecture; grouping them
    lets the score and weight-update stages run one super-network pass
    per unique architecture instead of one per core.
    """
    groups: "OrderedDict[ArchKey, List[int]]" = OrderedDict()
    for position, (_, indices) in enumerate(drawn):
        groups.setdefault(arch_key(indices), []).append(position)
    return list(groups.values())


@dataclass
class CandidateRecord:
    """One evaluated candidate within one search step."""

    architecture: Architecture
    quality: float
    metrics: Dict[str, float]
    reward: float


@dataclass
class StepRecord:
    """Aggregate view of one search step."""

    step: int
    mean_reward: float
    mean_quality: float
    policy_entropy: float
    candidates: List[CandidateRecord] = field(default_factory=list)


@dataclass
class SearchResult:
    """Outcome of a completed search.

    ``eval_stats`` carries the evaluation runtime's instrumentation:
    cache hit/miss counters and per-stage wall time
    (sample/score/price/policy_update/weight_update).
    """

    final_architecture: Architecture
    history: List[StepRecord]
    batches_used: int
    eval_stats: Optional[EvalRuntimeStats] = None

    @property
    def all_candidates(self) -> List[CandidateRecord]:
        return [c for step in self.history for c in step.candidates]

    def rewards(self) -> np.ndarray:
        return np.array([s.mean_reward for s in self.history])

    def entropies(self) -> np.ndarray:
        return np.array([s.policy_entropy for s in self.history])


@dataclass(frozen=True)
class SearchConfig:
    """Knobs shared by both search algorithms."""

    steps: int = 100
    num_cores: int = 4  # parallel accelerators (single-step search only)
    policy_lr: float = 0.3
    weight_lr: float = 0.005
    policy_entropy_coef: float = 0.0  # exploration bonus for the controller
    warmup_steps: int = 10  # weight-only steps before policy updates begin
    record_candidates: bool = True
    seed: int = 0
    use_cache: bool = True  # memoize performance_fn by decision indices
    cache_size: int = 4096  # LRU capacity of the metrics cache
    #: run one supernet pass per *unique* sampled architecture by
    #: stacking same-arch core batches (needs a supernet with
    #: quality_many/loss_many, e.g. via StackedScoringMixin; other
    #: supernets keep the per-core path)
    group_unique: bool = True
    #: shared :class:`repro.telemetry.Telemetry` handle; when set, the
    #: search records per-step spans, reward/entropy/penalty gauges and
    #: step events, attaches it to its eval runtime and pipeline, and
    #: includes run-scoped counter state in checkpoint snapshots
    telemetry: Optional["Telemetry"] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.steps < 1 or self.num_cores < 1:
            raise ValueError("steps and num_cores must be >= 1")
        if self.warmup_steps < 0:
            raise ValueError("warmup_steps must be >= 0")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")


def _record_step_telemetry(
    telemetry: Optional["Telemetry"], record: StepRecord
) -> None:
    """Account one completed step to the shared telemetry (no-op if off).

    ``search.penalty`` is the mean cost the reward function charged the
    shard (quality minus reward) — positive when hardware targets are
    being missed, ~0 once the policy prices candidates on target.
    """
    if telemetry is None:
        return
    telemetry.counter("search.steps").inc()
    telemetry.gauge("search.reward").set(record.mean_reward)
    telemetry.gauge("search.quality").set(record.mean_quality)
    telemetry.gauge("search.entropy").set(record.policy_entropy)
    telemetry.gauge("search.penalty").set(record.mean_quality - record.mean_reward)
    telemetry.event(
        "search.step",
        step=record.step,
        reward=record.mean_reward,
        quality=record.mean_quality,
        entropy=record.policy_entropy,
    )


class SingleStepSearch:
    """H2O-NAS massively parallel unified single-step search."""

    def __init__(
        self,
        space: SearchSpace,
        supernet: SuperNetwork,
        pipeline: SingleStepPipeline,
        reward_fn: RewardFunction,
        performance_fn: PerformanceFn,
        config: Optional[SearchConfig] = None,
        eval_runtime: Optional[EvalRuntime] = None,
    ):
        config = config if config is not None else SearchConfig()
        self.space = space
        self.supernet = supernet
        self.pipeline = pipeline
        self.reward_fn = reward_fn
        self.performance_fn = performance_fn
        self.config = config
        self.telemetry = config.telemetry
        self.runtime = eval_runtime or EvalRuntime(
            performance_fn,
            space=space,
            use_cache=config.use_cache,
            cache_capacity=config.cache_size,
        )
        if self.telemetry is not None:
            self.runtime.attach_telemetry(self.telemetry)
            self.pipeline.attach_telemetry(self.telemetry)
        self.controller = ReinforceController(
            space,
            learning_rate=config.policy_lr,
            entropy_coef=config.policy_entropy_coef,
            seed=config.seed,
        )
        self._optimizer: Optimizer = Adam(supernet.parameters(), lr=config.weight_lr)
        self._warmup_rng = np.random.default_rng(config.seed + 1)

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        history = [self.step(step) for step in range(self.config.steps)]
        return self.build_result(history)

    # -- stepwise driver protocol (checkpointed execution) --------------
    def step(self, step: int) -> StepRecord:
        """Run one search step; the unit the supervisor checkpoints at."""
        if self.telemetry is None:
            return self._step(step)
        with self.telemetry.span("step"):
            record = self._step(step)
        _record_step_telemetry(self.telemetry, record)
        return record

    def build_result(self, history: Sequence[StepRecord]) -> SearchResult:
        """Assemble the result from externally-driven step records."""
        return SearchResult(
            final_architecture=self.controller.best_architecture(),
            history=list(history),
            batches_used=self.pipeline.batches_issued,
            eval_stats=self.runtime.stats(),
        )

    def state_dict(self) -> dict:
        """Everything this search mutates, for bit-identical resume."""
        from ..runtime.checkpoint import supernet_state

        state = {
            "controller": self.controller.state_dict(),
            "optimizer": self._optimizer.state_dict(),
            "supernet": supernet_state(self.supernet),
            "warmup_rng": self._warmup_rng.bit_generator.state,
            "pipeline": self.pipeline.state_dict(),
            "runtime": self.runtime.export_state(),
        }
        if self.telemetry is not None:
            state["telemetry"] = self.telemetry.export_state()
        return state

    def load_state_dict(self, state: Mapping) -> None:
        from ..runtime.checkpoint import restore_supernet_state

        self.controller.load_state_dict(state["controller"])
        self._optimizer.load_state_dict(state["optimizer"])
        restore_supernet_state(self.supernet, state["supernet"])
        self._warmup_rng.bit_generator.state = state["warmup_rng"]
        self.pipeline.load_state_dict(state["pipeline"])
        self.runtime.import_state(state["runtime"])
        telemetry_state = state.get("telemetry")
        if self.telemetry is not None and telemetry_state is not None:
            self.telemetry.import_state(telemetry_state)

    # -- grouped shard execution ---------------------------------------
    def _score_shard(
        self,
        drawn: Sequence[DrawnCandidate],
        batches: Sequence[Batch],
        groups: Optional[List[List[int]]],
    ) -> List[float]:
        """Per-core qualities; one stacked pass per unique architecture.

        The grouped path needs a supernet exposing ``quality_many``
        (e.g. through :class:`repro.supernet.StackedScoringMixin`);
        otherwise every core scores its own batch, in core order, so
        stochastic quality signals consume their rng streams exactly as
        the sequential implementation did.
        """
        quality_many = getattr(self.supernet, "quality_many", None)
        if groups is None or quality_many is None:
            return [
                self.supernet.quality(arch, batch.inputs, batch.labels)
                for batch, (arch, _) in zip(batches, drawn)
            ]
        qualities: List[float] = [0.0] * len(drawn)
        for positions in groups:
            arch = drawn[positions[0]][0]
            values = quality_many(
                arch,
                [batches[i].inputs for i in positions],
                [batches[i].labels for i in positions],
            )
            for position, value in zip(positions, values):
                qualities[position] = float(value)
        return qualities

    def _update_weights_on_shard(
        self,
        drawn: Sequence[DrawnCandidate],
        batches: Sequence[Batch],
        groups: Optional[List[List[int]]],
    ) -> None:
        """Accumulate the cross-shard weight gradient, grouped when possible.

        The sequential path backprops ``loss_i / num_cores`` per core;
        the grouped path backprops ``loss_many * (group_size /
        num_cores)`` per unique architecture, where ``loss_many`` is the
        mean of the group's per-batch losses — the same gradient, in
        ``len(groups)`` supernet passes instead of ``num_cores``.
        """
        num_cores = self.config.num_cores
        loss_many = getattr(self.supernet, "loss_many", None)
        if groups is None or loss_many is None:
            for batch, (arch, _) in zip(batches, drawn):
                loss = self.supernet.loss(arch, batch.inputs, batch.labels)
                (loss * (1.0 / num_cores)).backward()
            return
        for positions in groups:
            arch = drawn[positions[0]][0]
            loss = loss_many(
                arch,
                [batches[i].inputs for i in positions],
                [batches[i].labels for i in positions],
            )
            (loss * (len(positions) / num_cores)).backward()

    def _step(self, step: int) -> StepRecord:
        cfg = self.config
        runtime = self.runtime
        warming_up = step < cfg.warmup_steps
        # Stage 1: every core draws a fresh batch; the shard's candidates
        # are sampled in one vectorized policy draw.
        with runtime.timed(STAGE_SAMPLE):
            batches = [self.pipeline.next_batch() for _ in range(cfg.num_cores)]
            if warming_up:
                drawn = []
                for _ in range(cfg.num_cores):
                    arch = self.space.sample(self._warmup_rng)
                    drawn.append((arch, self.space.indices_of(arch)))
            else:
                drawn = self.controller.sample_many(cfg.num_cores)
        groups = group_unique_architectures(drawn) if cfg.group_unique else None
        # Stage 2: score the shard with the shared weights on its fresh
        # batches (the policy consumes the batches first) — one stacked
        # pass per unique architecture when the supernet supports it.
        with runtime.timed(STAGE_SCORE):
            qualities = self._score_shard(drawn, batches, groups)
            for batch in batches:
                self.pipeline.mark_policy_use(batch)
        # Stage 3: price the whole shard through the memoized runtime in
        # one batched call (cache misses share one vectorized evaluation
        # when the performance fn is batchable).
        with runtime.timed(STAGE_PRICE):
            all_metrics = runtime.price_many(drawn)
        candidates: List[CandidateRecord] = []
        samples: List[Tuple[np.ndarray, float]] = []
        for (arch, indices), quality, metrics in zip(drawn, qualities, all_metrics):
            reward = self.reward_fn(quality, metrics)
            samples.append((indices, reward))
            candidates.append(CandidateRecord(arch, quality, metrics, reward))
        # Stage 4: cross-shard policy update (skipped during warmup).
        if not warming_up:
            with runtime.timed(STAGE_POLICY_UPDATE):
                self.controller.update(samples)
        # Stage 5: cross-shard weight update on the same batches.
        with runtime.timed(STAGE_WEIGHT_UPDATE):
            self.supernet.zero_grad()
            self._update_weights_on_shard(drawn, batches, groups)
            for batch in batches:
                self.pipeline.mark_weight_use(batch)
            self._optimizer.step()
        return StepRecord(
            step=step,
            mean_reward=float(np.mean([c.reward for c in candidates])),
            mean_quality=float(np.mean([c.quality for c in candidates])),
            policy_entropy=self.controller.entropy(),
            candidates=candidates if cfg.record_candidates else [],
        )


class TunasSearch:
    """TuNAS-style two-step baseline: alternate W and pi learning."""

    def __init__(
        self,
        space: SearchSpace,
        supernet: SuperNetwork,
        pipeline: TwoStreamPipeline,
        reward_fn: RewardFunction,
        performance_fn: PerformanceFn,
        config: Optional[SearchConfig] = None,
        eval_runtime: Optional[EvalRuntime] = None,
    ):
        config = config if config is not None else SearchConfig()
        self.space = space
        self.supernet = supernet
        self.pipeline = pipeline
        self.reward_fn = reward_fn
        self.performance_fn = performance_fn
        self.config = config
        self.telemetry = config.telemetry
        self.runtime = eval_runtime or EvalRuntime(
            performance_fn,
            space=space,
            use_cache=config.use_cache,
            cache_capacity=config.cache_size,
        )
        if self.telemetry is not None:
            self.runtime.attach_telemetry(self.telemetry)
            self.pipeline.attach_telemetry(self.telemetry)
        self.controller = ReinforceController(
            space,
            learning_rate=config.policy_lr,
            entropy_coef=config.policy_entropy_coef,
            seed=config.seed,
        )
        self._optimizer: Optimizer = Adam(supernet.parameters(), lr=config.weight_lr)
        self._warmup_rng = np.random.default_rng(config.seed + 1)

    def run(self) -> SearchResult:
        history = [self.step(step) for step in range(self.config.steps)]
        return self.build_result(history)

    # -- stepwise driver protocol (checkpointed execution) --------------
    def step(self, step: int) -> StepRecord:
        """Run one search step; the unit the supervisor checkpoints at."""
        if self.telemetry is None:
            return self._step(step)
        with self.telemetry.span("step"):
            record = self._step(step)
        _record_step_telemetry(self.telemetry, record)
        return record

    def build_result(self, history: Sequence[StepRecord]) -> SearchResult:
        """Assemble the result from externally-driven step records."""
        return SearchResult(
            final_architecture=self.controller.best_architecture(),
            history=list(history),
            batches_used=self.pipeline.train_size + self.pipeline.valid_size,
            eval_stats=self.runtime.stats(),
        )

    def state_dict(self) -> dict:
        """Everything this search mutates, for bit-identical resume."""
        from ..runtime.checkpoint import supernet_state

        state = {
            "controller": self.controller.state_dict(),
            "optimizer": self._optimizer.state_dict(),
            "supernet": supernet_state(self.supernet),
            "warmup_rng": self._warmup_rng.bit_generator.state,
            "pipeline": self.pipeline.state_dict(),
            "runtime": self.runtime.export_state(),
        }
        if self.telemetry is not None:
            state["telemetry"] = self.telemetry.export_state()
        return state

    def load_state_dict(self, state: Mapping) -> None:
        from ..runtime.checkpoint import restore_supernet_state

        self.controller.load_state_dict(state["controller"])
        self._optimizer.load_state_dict(state["optimizer"])
        restore_supernet_state(self.supernet, state["supernet"])
        self._warmup_rng.bit_generator.state = state["warmup_rng"]
        self.pipeline.load_state_dict(state["pipeline"])
        self.runtime.import_state(state["runtime"])
        telemetry_state = state.get("telemetry")
        if self.telemetry is not None and telemetry_state is not None:
            self.telemetry.import_state(telemetry_state)

    def _step(self, step: int) -> StepRecord:
        cfg = self.config
        runtime = self.runtime
        warming_up = step < cfg.warmup_steps
        # Weight-training step on the training split.
        with runtime.timed(STAGE_WEIGHT_UPDATE):
            if warming_up:
                arch = self.space.sample(self._warmup_rng)
            else:
                arch, _ = self.controller.sample()
            train_batch = self.pipeline.next_train_batch()
            self.supernet.zero_grad()
            self.supernet.loss(arch, train_batch.inputs, train_batch.labels).backward()
            self._optimizer.step()
        # Policy step on the validation split: one vectorized draw, then
        # score and price the whole shard.
        valid_batch = self.pipeline.next_valid_batch()
        with runtime.timed(STAGE_SAMPLE):
            drawn = self.controller.sample_many(cfg.num_cores)
        with runtime.timed(STAGE_SCORE):
            qualities = [
                self.supernet.quality(cand, valid_batch.inputs, valid_batch.labels)
                for cand, _ in drawn
            ]
        with runtime.timed(STAGE_PRICE):
            all_metrics = runtime.price_many(drawn)
        candidates: List[CandidateRecord] = []
        samples: List[Tuple[np.ndarray, float]] = []
        for (cand, indices), quality, metrics in zip(drawn, qualities, all_metrics):
            reward = self.reward_fn(quality, metrics)
            samples.append((indices, reward))
            candidates.append(CandidateRecord(cand, quality, metrics, reward))
        if not warming_up:
            with runtime.timed(STAGE_POLICY_UPDATE):
                self.controller.update(samples)
        return StepRecord(
            step=step,
            mean_reward=float(np.mean([c.reward for c in candidates])),
            mean_quality=float(np.mean([c.quality for c in candidates])),
            policy_entropy=self.controller.entropy(),
            candidates=candidates if cfg.record_candidates else [],
        )
