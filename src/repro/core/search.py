"""Search algorithms: H2O-NAS single-step parallel search and the
TuNAS-style alternating baseline (Figure 2 of the paper).

Both algorithms are thin *stage configurations* over the shared
:class:`~repro.core.engine.SearchEngine` pipeline

    ``sample -> fetch_shard -> score -> price -> reward ->
    policy_update -> weight_update``

and differ exactly where the paper says they differ:

* :class:`SingleStepSearch` (right side of Figure 2): one unified step
  learns both ``pi`` and ``W`` from the *same* stream of fresh
  production traffic.  ``N`` parallel cores each sample a candidate,
  score it on a fresh batch (the policy consumes the batch first),
  cross-shard-update the policy, and then cross-shard-update the
  shared weights on the same batches.
* :class:`TunasSearch` (left side of Figure 2): alternating steps — a
  weight-training step on the training split, then a policy step on
  the validation split — with data reuse across epochs, as required
  when data is scarce.

Per-core stages fan out across the engine's execution backend
(``SearchConfig.backend`` / ``--backend threads``); results are
bit-identical to serial execution by the backend contract
(:mod:`repro.core.engine.backends`).
"""

from __future__ import annotations

from .engine import (
    CandidateRecord,
    DrawnCandidate,
    PerformanceFn,
    SearchConfig,
    SearchEngine,
    SearchResult,
    StepRecord,
    SuperNetwork,
    group_unique_architectures,
)
from .eval_runtime import (
    STAGE_FETCH_SHARD,
    STAGE_POLICY_UPDATE,
    STAGE_PRICE,
    STAGE_REWARD,
    STAGE_SAMPLE,
    STAGE_SCORE,
    STAGE_WEIGHT_UPDATE,
)

__all__ = [
    "CandidateRecord",
    "DrawnCandidate",
    "PerformanceFn",
    "SearchConfig",
    "SearchResult",
    "SingleStepSearch",
    "StepRecord",
    "SuperNetwork",
    "TunasSearch",
    "group_unique_architectures",
]


class SingleStepSearch(SearchEngine):
    """H2O-NAS massively parallel unified single-step search.

    One step = one pass over the full stage graph, every stage on the
    same shard of fresh, single-use batches.
    """

    def _batches_used(self) -> int:
        return self.pipeline.batches_issued

    def _step(self, step: int) -> StepRecord:
        cfg = self.config
        runtime = self.runtime
        warming_up = step < cfg.warmup_steps
        # Stage 1: the shard's candidates — one vectorized policy draw
        # (or uniform draws during weight-only warmup).
        with runtime.timed(STAGE_SAMPLE):
            drawn = self.sample_shard(cfg.num_cores, warming_up)
        # Stage 2: every core draws a fresh batch from the stream.
        with runtime.timed(STAGE_FETCH_SHARD):
            batches = self.pipeline.next_shard(cfg.num_cores)
        groups = group_unique_architectures(drawn) if cfg.group_unique else None
        # Stage 3: score the shard with the shared weights on its fresh
        # batches (the policy consumes the batches first) — grouped
        # passes fan out across the backend's workers.
        with runtime.timed(STAGE_SCORE):
            qualities = self.score_shard(drawn, batches, groups)
            for batch in batches:
                self.pipeline.mark_policy_use(batch)
        # Stage 4: price the whole shard through the memoized runtime in
        # one batched call.
        with runtime.timed(STAGE_PRICE):
            all_metrics = self.price_shard(drawn)
        # Stage 5: fold qualities and hardware metrics into rewards.
        with runtime.timed(STAGE_REWARD):
            candidates, samples = self.assemble_candidates(
                drawn, qualities, all_metrics
            )
        # Stage 6: cross-shard policy update (skipped during warmup).
        if not warming_up:
            with runtime.timed(STAGE_POLICY_UPDATE):
                self.policy_update(samples)
        # Stage 7: cross-shard weight update on the same batches.
        with runtime.timed(STAGE_WEIGHT_UPDATE):
            self.supernet.zero_grad()
            self.accumulate_shard_gradient(drawn, batches, groups)
            for batch in batches:
                self.pipeline.mark_weight_use(batch)
            self.optimizer_step()
        return self.make_record(step, candidates)


class TunasSearch(SearchEngine):
    """TuNAS-style two-step baseline: alternate W and pi learning.

    The stage graph rearranged for the alternating regime: the weight
    update runs *first*, on its own train-split candidate, then the
    policy half (fetch/sample/score/price/reward/policy-update) runs on
    one shared validation batch.
    """

    def _batches_used(self) -> int:
        return self.pipeline.train_size + self.pipeline.valid_size

    def _step(self, step: int) -> StepRecord:
        cfg = self.config
        runtime = self.runtime
        warming_up = step < cfg.warmup_steps
        # Weight-training step on the training split.
        with runtime.timed(STAGE_WEIGHT_UPDATE):
            if warming_up:
                arch = self.space.sample(self._warmup_rng)
            else:
                arch, _ = self.controller.sample()
            self.train_weights_on(arch, self.pipeline.next_train_batch())
        # Policy step on the validation split: one vectorized draw, then
        # score and price the whole shard on the shared batch.
        with runtime.timed(STAGE_FETCH_SHARD):
            valid_batch = self.pipeline.next_valid_batch()
        with runtime.timed(STAGE_SAMPLE):
            drawn = self.controller.sample_many(cfg.num_cores)
        with runtime.timed(STAGE_SCORE):
            qualities = self.score_on_batch(drawn, valid_batch)
        with runtime.timed(STAGE_PRICE):
            all_metrics = self.price_shard(drawn)
        with runtime.timed(STAGE_REWARD):
            candidates, samples = self.assemble_candidates(
                drawn, qualities, all_metrics
            )
        if not warming_up:
            with runtime.timed(STAGE_POLICY_UPDATE):
                self.policy_update(samples)
        return self.make_record(step, candidates)
