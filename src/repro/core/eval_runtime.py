"""Memoized candidate-evaluation runtime for the search hot path.

RL policies resample the same architectures thousands of times as they
converge, yet every search step used to re-price each sampled candidate
through the full analytical pipeline (op-graph lowering + simulation).
The paper's performance model exists precisely because candidate pricing
must be an O(ms) lookup at hyperscale (Section 6.2); this module makes
the repo's search loops behave the same way:

* :class:`ArchMetricsCache` — an LRU cache keyed by the architecture's
  canonical decision-index tuple, memoizing ``performance_fn`` results;
* :class:`EvalRuntime` — the layer between the search algorithms and the
  performance signal: cached pricing plus lightweight instrumentation
  (cache hits/misses, per-stage wall time for every engine stage:
  sample/fetch-shard/score/price/reward/policy-update/weight-update);
* :class:`MemoizedEvaluate` — the same memoization for the multi-trial
  baselines, whose ``evaluate_fn`` stands for one full trial.

Searches expose the collected counters on ``SearchResult.eval_stats`` so
deployments can see where search time goes and how well the cache works.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..searchspace.base import Architecture, SearchSpace

#: Canonical cache key: one integer index per search-space decision.
ArchKey = Tuple[int, ...]

#: The canonical stage names, shared by every ``timed()`` caller and by
#: telemetry span names.  A free-form string here used to silently open
#: a new timing bucket that ``EvalRuntimeStats.summary`` then dropped;
#: callers must use these constants, and :meth:`EvalRuntime.timed`
#: rejects anything else.
STAGE_SAMPLE = "sample"
STAGE_FETCH_SHARD = "fetch_shard"
STAGE_SCORE = "score"
STAGE_PRICE = "price"
STAGE_REWARD = "reward"
STAGE_POLICY_UPDATE = "policy_update"
STAGE_WEIGHT_UPDATE = "weight_update"

#: Stage names the searches report wall time for, in pipeline order
#: (the engine's stage graph: sample -> fetch_shard -> score -> price
#: -> reward -> policy_update -> weight_update).
STAGES = (
    STAGE_SAMPLE,
    STAGE_FETCH_SHARD,
    STAGE_SCORE,
    STAGE_PRICE,
    STAGE_REWARD,
    STAGE_POLICY_UPDATE,
    STAGE_WEIGHT_UPDATE,
)


@runtime_checkable
class BatchPerformanceFn(Protocol):
    """A performance function that can price a whole shard in one call.

    A plain ``performance_fn`` maps one architecture to its metric
    mapping.  Vectorized backends — an MLP performance model whose
    forward pass batches trivially, a simulator pool — additionally
    expose :meth:`price_batch`, and :meth:`EvalRuntime.price_many`
    prices all cache misses of a shard through it in a single call
    instead of one Python round-trip per candidate.  Functions without
    ``price_batch`` fall back to per-architecture evaluation.
    """

    def __call__(self, arch: Architecture) -> Mapping[str, float]: ...

    def price_batch(
        self, archs: Sequence[Architecture]
    ) -> Sequence[Mapping[str, float]]: ...


def arch_key(indices: Sequence[int]) -> ArchKey:
    """The canonical decision-index tuple of an architecture."""
    return tuple(int(i) for i in indices)


class ArchMetricsCache:
    """Bounded LRU cache from decision-index tuples to cached values.

    Hit/miss/eviction counters are public so callers can report cache
    effectiveness without wrapping every access.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[ArchKey, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ArchKey) -> bool:
        return key in self._entries

    def get(self, key: ArchKey) -> Optional[Any]:
        """Cached value for ``key`` (marking it most-recently used)."""
        try:
            entry = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: ArchKey, value: Any) -> None:
        """Insert ``key``, evicting the least-recently-used overflow."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()

    def plan(self, keys: Sequence[ArchKey]) -> List[bool]:
        """Hit/miss outcome of a sequential get/put pass over ``keys``.

        Simulates the LRU discipline (recency promotion on hit,
        insertion plus oldest-entry eviction on miss) against a
        keys-only copy of the current contents, without touching the
        real entries or counters.  This is what lets
        :meth:`EvalRuntime.price_many` know, *before* evaluating
        anything, exactly which shard positions a sequential
        ``price()`` loop would have had to evaluate — including a
        duplicate whose first occurrence gets evicted mid-shard and so
        misses twice.
        """
        simulated: "OrderedDict[ArchKey, None]" = OrderedDict(
            (key, None) for key in self._entries
        )
        outcomes: List[bool] = []
        for key in keys:
            if key in simulated:
                simulated.move_to_end(key)
                outcomes.append(True)
            else:
                simulated[key] = None
                if len(simulated) > self.capacity:
                    simulated.popitem(last=False)
                outcomes.append(False)
        return outcomes

    def export_state(self) -> dict:
        """JSON-ready snapshot: counters plus entries in LRU order."""
        return {
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": [[list(key), value] for key, value in self._entries.items()],
        }

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output (contents and counters)."""
        self.capacity = int(state["capacity"])
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.evictions = int(state["evictions"])
        self._entries = OrderedDict(
            (arch_key(key), value) for key, value in state["entries"]
        )


@dataclass
class EvalRuntimeStats:
    """Snapshot of one runtime's counters (attached to ``SearchResult``)."""

    cache_enabled: bool
    cache_hits: int
    cache_misses: int
    cache_entries: int
    cache_capacity: int
    evaluations: int  #: candidates actually evaluated (not cache-answered)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    stage_calls: Dict[str, int] = field(default_factory=dict)
    candidates_priced: int = 0  #: total price()/price_many() items served

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def price_throughput(self) -> float:
        """Candidates priced per second of price-stage wall time."""
        seconds = self.stage_seconds.get("price", 0.0)
        return self.candidates_priced / seconds if seconds > 0 else 0.0

    def stage_mean_seconds(self, stage: str) -> float:
        """Mean wall time of one ``timed(stage)`` block."""
        calls = self.stage_calls.get(stage, 0)
        return self.stage_seconds.get(stage, 0.0) / calls if calls else 0.0

    @property
    def unknown_stages(self) -> Tuple[str, ...]:
        """Timing buckets outside :data:`STAGES` (legacy imported state).

        ``timed()`` rejects unknown stage names, so these can only come
        from a checkpoint written before validation existed; surfacing
        them keeps their wall time from vanishing from the summary.
        """
        return tuple(sorted(s for s in self.stage_seconds if s not in STAGES))

    def summary(self) -> str:
        """One-line human-readable view for reports and the CLI.

        Every timing bucket is rendered — canonical stages in pipeline
        order first, then any unknown (legacy) buckets flagged with
        ``!``, so no recorded wall time is ever silently dropped.
        """
        if self.cache_enabled:
            cache = (
                f"cache {self.cache_hits}/{self.cache_hits + self.cache_misses} hits "
                f"({100.0 * self.hit_rate:.1f}%), {self.evaluations} evaluations"
            )
        else:
            cache = f"cache off, {self.evaluations} evaluations"
        if self.price_throughput > 0:
            cache += f", {self.price_throughput:.0f} candidates/s priced"
        ordered = [s for s in STAGES if s in self.stage_seconds]
        ordered += [f"!{s}" for s in self.unknown_stages]
        stages = ", ".join(
            f"{label}={self.stage_seconds[label.lstrip('!')] * 1e3:.1f}ms"
            f" ({self.stage_mean_seconds(label.lstrip('!')) * 1e3:.2f}ms/call)"
            for label in ordered
        )
        return f"{cache}; {stages}" if stages else cache


class EvalRuntime:
    """Cached, instrumented gateway to a ``performance_fn``.

    Sits between the search algorithms and the performance signal.  All
    pricing goes through :meth:`price` (one candidate) or
    :meth:`price_many` (a whole shard, batched); searches wrap their
    stages in :meth:`timed` so :meth:`stats` can report where wall time
    goes.

    One runtime may be shared across several searches (e.g. every sweep
    point of :func:`repro.core.pareto_search.trace_front`) so repeated
    candidates are priced once for the whole campaign.
    """

    def __init__(
        self,
        performance_fn: Callable[[Architecture], Mapping[str, float]],
        space: Optional[SearchSpace] = None,
        use_cache: bool = True,
        cache_capacity: int = 4096,
        telemetry: Optional[Any] = None,
    ):
        self.performance_fn = performance_fn
        self.space = space
        self.cache: Optional[ArchMetricsCache] = (
            ArchMetricsCache(cache_capacity) if use_cache else None
        )
        #: vectorized pricing entry point, when the fn offers one
        #: (see :class:`BatchPerformanceFn`)
        self.batch_fn: Optional[
            Callable[[Sequence[Architecture]], Sequence[Mapping[str, float]]]
        ] = getattr(performance_fn, "price_batch", None)
        self.evaluations = 0
        self.candidates_priced = 0
        self._stage_seconds: Dict[str, float] = {}
        self._stage_calls: Dict[str, int] = {}
        #: shared :class:`repro.telemetry.Telemetry`; cache/pricing
        #: counters and stage spans mirror into it when attached
        self.telemetry = telemetry
        #: execution backend for fanning out per-architecture cache-miss
        #: evaluations (see :meth:`attach_backend`)
        self.backend: Optional[Any] = None

    def attach_telemetry(self, telemetry: Any) -> None:
        """Attach a telemetry handle unless one is already set."""
        if self.telemetry is None:
            self.telemetry = telemetry

    def attach_backend(self, backend: Any) -> None:
        """Attach the search engine's execution backend.

        With a multi-worker backend attached, :meth:`_evaluate_batch`'s
        per-architecture fallback fans out across workers — but only
        for performance functions that declare ``parallel_safe = True``:
        pricing backends are frequently stateful (simulators, testbed
        clients, counting test doubles), and racing those would break
        both their bookkeeping and the backend-equivalence contract.
        Vectorized ``price_batch`` functions are unaffected; they
        already amortize the shard in one call.
        """
        self.backend = backend

    def _pricing_marks(self) -> Tuple[int, int, int, int]:
        cache = self.cache
        if cache is None:
            return (0, 0, 0, self.evaluations)
        return (cache.hits, cache.misses, cache.evictions, self.evaluations)

    def _record_pricing(self, priced: int, before: Tuple[int, int, int, int]) -> None:
        """Mirror one pricing call's counter deltas into telemetry."""
        telemetry = self.telemetry
        if telemetry is None:
            return
        after = self._pricing_marks()
        telemetry.counter("eval.candidates_priced").inc(priced)
        telemetry.counter("eval.evaluations").inc(after[3] - before[3])
        if self.cache is not None:
            telemetry.counter("eval.cache.hits").inc(after[0] - before[0])
            telemetry.counter("eval.cache.misses").inc(after[1] - before[1])
            telemetry.counter("eval.cache.evictions").inc(after[2] - before[2])
            telemetry.gauge("eval.cache.entries").set(len(self.cache))

    # ------------------------------------------------------------------
    def _key(
        self, arch: Architecture, indices: Optional[Sequence[int]]
    ) -> ArchKey:
        if indices is None:
            if self.space is None:
                raise ValueError(
                    "EvalRuntime needs either explicit indices or a search "
                    "space to derive the cache key"
                )
            indices = self.space.indices_of(arch)
        return arch_key(indices)

    def _evaluate_batch(
        self, archs: Sequence[Architecture]
    ) -> List[Dict[str, float]]:
        """Evaluate ``archs`` in one vectorized call when possible.

        Order of preference: the fn's own ``price_batch`` (one
        vectorized call), then a worker fan-out through the attached
        backend for ``parallel_safe`` functions, then a sequential
        per-architecture loop.
        """
        self.evaluations += len(archs)
        if self.batch_fn is not None:
            metrics_list = [dict(m) for m in self.batch_fn(archs)]
            if len(metrics_list) != len(archs):
                raise ValueError(
                    f"price_batch returned {len(metrics_list)} results for "
                    f"{len(archs)} architectures"
                )
            return metrics_list
        backend = self.backend
        if (
            backend is not None
            and backend.workers > 1
            and len(archs) > 1
            and getattr(self.performance_fn, "parallel_safe", False)
        ):
            return [dict(m) for m in backend.map(self.performance_fn, list(archs))]
        return [dict(self.performance_fn(a)) for a in archs]

    # ------------------------------------------------------------------
    def price(
        self, arch: Architecture, indices: Optional[Sequence[int]] = None
    ) -> Dict[str, float]:
        """Performance metrics for ``arch``, memoized when caching is on.

        ``indices`` is the architecture's decision-index vector; passing
        it avoids re-deriving the cache key (the searches already hold
        it).  Without it the runtime needs ``space`` to compute the key.
        """
        marks = self._pricing_marks()
        self.candidates_priced += 1
        try:
            if self.cache is None:
                self.evaluations += 1
                return dict(self.performance_fn(arch))
            key = self._key(arch, indices)
            cached = self.cache.get(key)
            if cached is not None:
                return dict(cached)
            self.evaluations += 1
            metrics = dict(self.performance_fn(arch))
            self.cache.put(key, metrics)
            return dict(metrics)
        finally:
            self._record_pricing(1, marks)

    def price_many(
        self,
        drawn: Sequence[Tuple[Architecture, Optional[Sequence[int]]]],
    ) -> List[Dict[str, float]]:
        """Price a whole shard of ``(arch, indices)`` pairs in one pass.

        Sequentially equivalent by construction: a *plan* pass
        (:meth:`ArchMetricsCache.plan`) simulates the LRU discipline
        over the shard's keys to learn which positions a sequential
        ``[price(a, i) for a, i in drawn]`` loop would have evaluated —
        including re-evaluations of a duplicate whose first occurrence
        was evicted mid-shard under eviction pressure.  Those positions
        are evaluated together (one :class:`BatchPerformanceFn` call
        when the fn is batchable, a worker fan-out for ``parallel_safe``
        fns, a sequential loop otherwise), and then a *replay* pass
        applies the shard to the real cache in sequential order,
        splicing in the precomputed metrics.  Returned metrics, cache
        counters, evaluation counts, and final LRU contents are
        bit-identical to the sequential loop in every regime, eviction
        pressure included — pinned by
        ``tests/test_eval_runtime.py::TestPriceManyEvictionPressure``.
        """
        pairs = list(drawn)
        marks = self._pricing_marks()
        self.candidates_priced += len(pairs)
        try:
            if self.cache is None:
                return self._evaluate_batch([arch for arch, _ in pairs])
            keys = [self._key(arch, indices) for arch, indices in pairs]
            will_hit = self.cache.plan(keys)
            miss_archs = [
                pairs[position][0]
                for position, hit in enumerate(will_hit)
                if not hit
            ]
            miss_metrics = iter(
                self._evaluate_batch(miss_archs) if miss_archs else ()
            )
            results: List[Dict[str, float]] = []
            for key in keys:
                cached = self.cache.get(key)
                if cached is not None:
                    results.append(dict(cached))
                else:
                    metrics = next(miss_metrics)
                    self.cache.put(key, metrics)
                    results.append(dict(metrics))
            return results
        finally:
            self._record_pricing(len(pairs), marks)

    # ------------------------------------------------------------------
    @contextmanager
    def timed(self, stage: str) -> Iterator[None]:
        """Accumulate wall time of the enclosed block under ``stage``.

        ``stage`` must be one of :data:`STAGES` — a free-form name used
        to open a phantom bucket that the summary silently dropped.  The
        elapsed time is also forwarded to the attached telemetry trace
        as a ``span.<stage>`` observation.
        """
        if stage not in STAGES:
            raise ValueError(
                f"unknown stage {stage!r}; use one of the STAGE_* constants "
                f"({', '.join(STAGES)})"
            )
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stage_seconds[stage] = self._stage_seconds.get(stage, 0.0) + elapsed
            self._stage_calls[stage] = self._stage_calls.get(stage, 0) + 1
            if self.telemetry is not None:
                self.telemetry.trace.record(stage, elapsed)

    def stage_seconds(self, stage: str) -> float:
        return self._stage_seconds.get(stage, 0.0)

    # ------------------------------------------------------------------
    def stats(self) -> EvalRuntimeStats:
        """Immutable snapshot of the counters collected so far."""
        return EvalRuntimeStats(
            cache_enabled=self.cache is not None,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
            cache_entries=len(self.cache) if self.cache else 0,
            cache_capacity=self.cache.capacity if self.cache else 0,
            evaluations=self.evaluations,
            stage_seconds=dict(self._stage_seconds),
            stage_calls=dict(self._stage_calls),
            candidates_priced=self.candidates_priced,
        )

    def export_state(self) -> dict:
        """Checkpoint-ready snapshot of cache contents and instrumentation.

        Wall-time accumulators are included so a resumed run's stage
        report continues from the snapshot rather than restarting at
        zero; they are the one part of the state that is *not* expected
        to be bit-identical across a crash/resume cycle.
        """
        return {
            "cache": self.cache.export_state() if self.cache is not None else None,
            "evaluations": self.evaluations,
            "candidates_priced": self.candidates_priced,
            "stage_seconds": dict(self._stage_seconds),
            "stage_calls": dict(self._stage_calls),
        }

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output in place."""
        cache_state = state["cache"]
        if (cache_state is None) != (self.cache is None):
            raise ValueError(
                "checkpoint cache state does not match this runtime's "
                "use_cache setting"
            )
        if self.cache is not None and cache_state is not None:
            self.cache.import_state(cache_state)
        self.evaluations = int(state["evaluations"])
        self.candidates_priced = int(state["candidates_priced"])
        self._stage_seconds = {
            stage: float(v) for stage, v in state["stage_seconds"].items()
        }
        self._stage_calls = {
            stage: int(v) for stage, v in state["stage_calls"].items()
        }

    def reset_counters(self) -> None:
        """Zero the instrumentation (cache contents are kept)."""
        self.evaluations = 0
        self.candidates_priced = 0
        self._stage_seconds.clear()
        self._stage_calls.clear()
        if self.cache is not None:
            self.cache.hits = 0
            self.cache.misses = 0
            self.cache.evictions = 0


class MemoizedEvaluate:
    """LRU-memoized ``evaluate_fn`` for the multi-trial baselines.

    One ``evaluate_fn`` call stands for a full independent trial, so a
    duplicate candidate (random search resampling, evolution re-rolling
    a mutation back to a seen genotype) need not pay for a second trial.
    """

    def __init__(
        self,
        space: SearchSpace,
        evaluate_fn: Callable[[Architecture], Tuple[float, Mapping[str, float]]],
        capacity: int = 4096,
    ):
        self.space = space
        self.evaluate_fn = evaluate_fn
        self.cache = ArchMetricsCache(capacity)

    def __call__(self, arch: Architecture) -> Tuple[float, Mapping[str, float]]:
        key = arch_key(self.space.indices_of(arch))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        result = self.evaluate_fn(arch)
        self.cache.put(key, result)
        return result

    def export_state(self) -> dict:
        """Checkpoint-ready snapshot ((quality, metrics) pairs as lists)."""
        state = self.cache.export_state()
        state["entries"] = [
            [key, [quality, dict(metrics)]]
            for key, (quality, metrics) in state["entries"]
        ]
        return state

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output in place."""
        state = dict(state)
        state["entries"] = [
            [key, (float(quality), dict(metrics))]
            for key, (quality, metrics) in state["entries"]
        ]
        self.cache.import_state(state)
