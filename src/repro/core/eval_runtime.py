"""Memoized candidate-evaluation runtime for the search hot path.

RL policies resample the same architectures thousands of times as they
converge, yet every search step used to re-price each sampled candidate
through the full analytical pipeline (op-graph lowering + simulation).
The paper's performance model exists precisely because candidate pricing
must be an O(ms) lookup at hyperscale (Section 6.2); this module makes
the repo's search loops behave the same way:

* :class:`ArchMetricsCache` — an LRU cache keyed by the architecture's
  canonical decision-index tuple, memoizing ``performance_fn`` results;
* :class:`EvalRuntime` — the layer between the search algorithms and the
  performance signal: cached pricing plus lightweight instrumentation
  (cache hits/misses, per-stage wall time for
  sample/score/price/policy-update/weight-update);
* :class:`MemoizedEvaluate` — the same memoization for the multi-trial
  baselines, whose ``evaluate_fn`` stands for one full trial.

Searches expose the collected counters on ``SearchResult.eval_stats`` so
deployments can see where search time goes and how well the cache works.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..searchspace.base import Architecture, SearchSpace

#: Canonical cache key: one integer index per search-space decision.
ArchKey = Tuple[int, ...]

#: Stage names the searches report wall time for, in pipeline order.
STAGES = ("sample", "score", "price", "policy_update", "weight_update")


def arch_key(indices: Sequence[int]) -> ArchKey:
    """The canonical decision-index tuple of an architecture."""
    return tuple(int(i) for i in indices)


class ArchMetricsCache:
    """Bounded LRU cache from decision-index tuples to cached values.

    Hit/miss/eviction counters are public so callers can report cache
    effectiveness without wrapping every access.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[ArchKey, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ArchKey) -> bool:
        return key in self._entries

    def get(self, key: ArchKey) -> Optional[Any]:
        """Cached value for ``key`` (marking it most-recently used)."""
        try:
            entry = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: ArchKey, value: Any) -> None:
        """Insert ``key``, evicting the least-recently-used overflow."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class EvalRuntimeStats:
    """Snapshot of one runtime's counters (attached to ``SearchResult``)."""

    cache_enabled: bool
    cache_hits: int
    cache_misses: int
    cache_entries: int
    cache_capacity: int
    evaluations: int  #: actual ``performance_fn`` invocations
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    stage_calls: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> str:
        """One-line human-readable view for reports and the CLI."""
        if self.cache_enabled:
            cache = (
                f"cache {self.cache_hits}/{self.cache_hits + self.cache_misses} hits "
                f"({100.0 * self.hit_rate:.1f}%), {self.evaluations} evaluations"
            )
        else:
            cache = f"cache off, {self.evaluations} evaluations"
        stages = ", ".join(
            f"{stage}={self.stage_seconds[stage] * 1e3:.1f}ms"
            for stage in STAGES
            if stage in self.stage_seconds
        )
        return f"{cache}; {stages}" if stages else cache


class EvalRuntime:
    """Cached, instrumented gateway to a ``performance_fn``.

    Sits between the search algorithms and the performance signal.  All
    pricing goes through :meth:`price`; searches wrap their stages in
    :meth:`timed` so :meth:`stats` can report where wall time goes.

    One runtime may be shared across several searches (e.g. every sweep
    point of :func:`repro.core.pareto_search.trace_front`) so repeated
    candidates are priced once for the whole campaign.
    """

    def __init__(
        self,
        performance_fn: Callable[[Architecture], Mapping[str, float]],
        space: Optional[SearchSpace] = None,
        use_cache: bool = True,
        cache_capacity: int = 4096,
    ):
        self.performance_fn = performance_fn
        self.space = space
        self.cache: Optional[ArchMetricsCache] = (
            ArchMetricsCache(cache_capacity) if use_cache else None
        )
        self.evaluations = 0
        self._stage_seconds: Dict[str, float] = {}
        self._stage_calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def price(
        self, arch: Architecture, indices: Optional[Sequence[int]] = None
    ) -> Dict[str, float]:
        """Performance metrics for ``arch``, memoized when caching is on.

        ``indices`` is the architecture's decision-index vector; passing
        it avoids re-deriving the cache key (the searches already hold
        it).  Without it the runtime needs ``space`` to compute the key.
        """
        if self.cache is None:
            self.evaluations += 1
            return dict(self.performance_fn(arch))
        if indices is None:
            if self.space is None:
                raise ValueError(
                    "EvalRuntime needs either explicit indices or a search "
                    "space to derive the cache key"
                )
            indices = self.space.indices_of(arch)
        key = arch_key(indices)
        cached = self.cache.get(key)
        if cached is not None:
            return dict(cached)
        self.evaluations += 1
        metrics = dict(self.performance_fn(arch))
        self.cache.put(key, metrics)
        return dict(metrics)

    # ------------------------------------------------------------------
    @contextmanager
    def timed(self, stage: str) -> Iterator[None]:
        """Accumulate wall time of the enclosed block under ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stage_seconds[stage] = self._stage_seconds.get(stage, 0.0) + elapsed
            self._stage_calls[stage] = self._stage_calls.get(stage, 0) + 1

    def stage_seconds(self, stage: str) -> float:
        return self._stage_seconds.get(stage, 0.0)

    # ------------------------------------------------------------------
    def stats(self) -> EvalRuntimeStats:
        """Immutable snapshot of the counters collected so far."""
        return EvalRuntimeStats(
            cache_enabled=self.cache is not None,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
            cache_entries=len(self.cache) if self.cache else 0,
            cache_capacity=self.cache.capacity if self.cache else 0,
            evaluations=self.evaluations,
            stage_seconds=dict(self._stage_seconds),
            stage_calls=dict(self._stage_calls),
        )

    def reset_counters(self) -> None:
        """Zero the instrumentation (cache contents are kept)."""
        self.evaluations = 0
        self._stage_seconds.clear()
        self._stage_calls.clear()
        if self.cache is not None:
            self.cache.hits = 0
            self.cache.misses = 0
            self.cache.evictions = 0


class MemoizedEvaluate:
    """LRU-memoized ``evaluate_fn`` for the multi-trial baselines.

    One ``evaluate_fn`` call stands for a full independent trial, so a
    duplicate candidate (random search resampling, evolution re-rolling
    a mutation back to a seen genotype) need not pay for a second trial.
    """

    def __init__(
        self,
        space: SearchSpace,
        evaluate_fn: Callable[[Architecture], Tuple[float, Mapping[str, float]]],
        capacity: int = 4096,
    ):
        self.space = space
        self.evaluate_fn = evaluate_fn
        self.cache = ArchMetricsCache(capacity)

    def __call__(self, arch: Architecture) -> Tuple[float, Mapping[str, float]]:
        key = arch_key(self.space.indices_of(arch))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        result = self.evaluate_fn(arch)
        self.cache.put(key, result)
        return result
