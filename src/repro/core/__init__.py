"""H2O-NAS core: rewards, RL controller, search algorithms, facade."""

from .controller import BaselineTracker, CategoricalPolicy, ReinforceController
from .cost import NasCostModel
from .engine import (
    ExecutionBackend,
    ProcessPoolBackend,
    ResumableLoop,
    SearchEngine,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
    shutdown_pools,
)
from .elastic import ElasticTraining, SpecializationSearch
from .eval_runtime import (
    ArchMetricsCache,
    BatchPerformanceFn,
    EvalRuntime,
    EvalRuntimeStats,
    MemoizedEvaluate,
    arch_key,
)
from .multitrial import (
    EvolutionConfig,
    EvolutionarySearch,
    MultiTrialResult,
    RandomSearch,
    Trial,
)
from .facade import H2ONas
from .gradient_search import DartsConfig, DartsResult, DartsSearch
from .reward import (
    PerformanceObjective,
    RewardFunction,
    absolute_reward,
    relu_reward,
)
from .serialize import (
    load_performance_model,
    load_policy,
    policy_from_dict,
    policy_to_dict,
    save_performance_model,
    save_policy,
)
from .pareto_search import (
    FrontPoint,
    FrontResult,
    FrontSearchConfig,
    trace_front,
)
from .surrogate import SurrogateSuperNetwork
from .search import (
    CandidateRecord,
    SearchConfig,
    SearchResult,
    SingleStepSearch,
    StepRecord,
    TunasSearch,
    group_unique_architectures,
)


def __getattr__(name: str):
    # Lazy (PEP 562), mirroring repro.core.engine: the distributed
    # backend's transport imports repro.service, which must not load
    # while this package is still initializing.
    if name in ("DistributedBackend", "run_worker"):
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArchMetricsCache",
    "BaselineTracker",
    "BatchPerformanceFn",
    "CandidateRecord",
    "CategoricalPolicy",
    "ElasticTraining",
    "EvalRuntime",
    "DistributedBackend",
    "EvalRuntimeStats",
    "ExecutionBackend",
    "MemoizedEvaluate",
    "ProcessPoolBackend",
    "run_worker",
    "ResumableLoop",
    "SearchEngine",
    "SerialBackend",
    "ThreadPoolBackend",
    "arch_key",
    "resolve_backend",
    "shutdown_pools",
    "group_unique_architectures",
    "EvolutionConfig",
    "EvolutionarySearch",
    "MultiTrialResult",
    "NasCostModel",
    "RandomSearch",
    "Trial",
    "FrontPoint",
    "FrontResult",
    "FrontSearchConfig",
    "DartsConfig",
    "DartsResult",
    "DartsSearch",
    "H2ONas",
    "PerformanceObjective",
    "ReinforceController",
    "RewardFunction",
    "SearchConfig",
    "SearchResult",
    "SingleStepSearch",
    "SpecializationSearch",
    "StepRecord",
    "SurrogateSuperNetwork",
    "TunasSearch",
    "absolute_reward",
    "load_performance_model",
    "load_policy",
    "policy_from_dict",
    "policy_to_dict",
    "save_performance_model",
    "save_policy",
    "trace_front",
    "relu_reward",
]
