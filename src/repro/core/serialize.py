"""Serialization of searched policies and performance models.

Production NAS runs are long-lived: searches checkpoint their policies,
and performance models are trained once per (search space, hardware)
pair and reused across searches.  These helpers persist both as plain
JSON/NPZ so a deployment can resume or ship them.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Union

import numpy as np

from ..perfmodel.model import PerformanceModel
from ..runtime.atomic import atomic_write_bytes, atomic_write_json
from ..searchspace.base import SearchSpace
from .controller import CategoricalPolicy

PathLike = Union[str, pathlib.Path]

_POLICY_VERSION = 1
_PERF_MODEL_VERSION = 1


def policy_to_dict(policy: CategoricalPolicy) -> dict:
    """JSON-ready snapshot of a policy's logits."""
    return {
        "version": _POLICY_VERSION,
        "space": policy.space.name,
        "decisions": {
            decision.name: logits.tolist()
            for decision, logits in zip(policy.space.decisions, policy.logits)
        },
    }


def policy_from_dict(space: SearchSpace, payload: dict) -> CategoricalPolicy:
    """Rebuild a policy over ``space`` from :func:`policy_to_dict` output."""
    if payload.get("version") != _POLICY_VERSION:
        raise ValueError(f"unsupported policy payload version {payload.get('version')!r}")
    if payload.get("space") != space.name:
        raise ValueError(
            f"policy was saved for space {payload.get('space')!r}, not {space.name!r}"
        )
    decisions = payload["decisions"]
    policy = CategoricalPolicy(space)
    for i, decision in enumerate(space.decisions):
        if decision.name not in decisions:
            raise ValueError(f"payload missing decision {decision.name!r}")
        logits = np.asarray(decisions[decision.name], dtype=np.float64)
        if logits.shape != (decision.num_choices,):
            raise ValueError(
                f"decision {decision.name!r}: expected {decision.num_choices} "
                f"logits, got {logits.shape}"
            )
        policy.logits[i] = logits
    return policy


def save_policy(policy: CategoricalPolicy, path: PathLike) -> None:
    """Write a policy snapshot as JSON (atomically: temp file + rename)."""
    atomic_write_json(path, policy_to_dict(policy))


def load_policy(space: SearchSpace, path: PathLike) -> CategoricalPolicy:
    """Load a policy snapshot saved by :func:`save_policy`."""
    return policy_from_dict(space, json.loads(pathlib.Path(path).read_text()))


def save_performance_model(model: PerformanceModel, path: PathLike) -> None:
    """Persist a performance model's weights and normalization as NPZ.

    Written atomically so a crash mid-save never leaves a truncated
    model file behind (the NPZ is staged in memory, then temp file +
    rename).  Like ``np.savez``, a missing ``.npz`` suffix is appended.
    """
    arrays = {
        "version": np.array(_PERF_MODEL_VERSION),
        "log_mean": model.log_mean,
        "log_std": model.log_std,
    }
    for i, param in enumerate(model.parameters()):
        arrays[f"param_{i}"] = param.data
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    atomic_write_bytes(path, buffer.getvalue())


def load_performance_model(model: PerformanceModel, path: PathLike) -> PerformanceModel:
    """Restore weights into a compatibly-shaped ``model`` in place."""
    with np.load(pathlib.Path(path)) as payload:
        if int(payload["version"]) != _PERF_MODEL_VERSION:
            raise ValueError("unsupported performance-model payload version")
        params = model.parameters()
        for i, param in enumerate(params):
            key = f"param_{i}"
            if key not in payload:
                raise ValueError(f"payload missing {key}")
            saved = payload[key]
            if saved.shape != param.data.shape:
                raise ValueError(
                    f"{key}: shape {saved.shape} does not match model "
                    f"{param.data.shape} (different architecture?)"
                )
            param.data[:] = saved
        model.set_normalization(payload["log_mean"], payload["log_std"])
    return model
