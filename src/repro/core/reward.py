"""Multi-objective reward functions (Section 6.1 of the paper).

The paper's contribution is the *single-sided ReLU reward*:

``R(alpha) = Q(alpha) + sum_i beta_i * relu(T_i(alpha)/T_i0 - 1)``

with ``beta_i < 0``: candidates that exceed a performance target are
penalized linearly, candidates at or under the target are not penalized
at all — so the search is free to find over-achieving models.  The
baseline it improves on is TuNAS' absolute-value reward

``R(alpha) = Q(alpha) + sum_i beta_i * |T_i(alpha)/T_i0 - 1|``

which also penalizes candidates that are *better* than target.  With a
single performance objective the two behave the same (Section 6.1);
with multiple objectives the ReLU reward dominates (Figure 5), which
``benchmarks/bench_fig5_reward.py`` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence


@dataclass(frozen=True)
class PerformanceObjective:
    """One performance target ``T_i0`` with its penalty weight ``beta_i``.

    Attributes:
        metric: key into the candidate's performance-metric mapping
            (e.g. ``"train_step_time"``, ``"serving_latency"``,
            ``"model_size"``).
        target: the launch-constraint value ``T_i0`` (same units as the
            metric; must be positive — the reward normalizes by it).
        beta: finite negative scalar controlling the penalty strength.
    """

    metric: str
    target: float
    beta: float = -1.0

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError(f"target for {self.metric!r} must be positive")
        if not self.beta < 0:
            raise ValueError(f"beta for {self.metric!r} must be negative")

    def overshoot(self, metrics: Mapping[str, float]) -> float:
        """Normalized deviation ``T_i/T_i0 - 1`` of a candidate."""
        try:
            value = metrics[self.metric]
        except KeyError:
            raise KeyError(
                f"candidate metrics missing objective {self.metric!r}"
            ) from None
        return value / self.target - 1.0


RewardFn = Callable[[float, Mapping[str, float]], float]


class RewardFunction:
    """A reward combining quality with a set of performance objectives."""

    def __init__(self, objectives: Sequence[PerformanceObjective], kind: str = "relu"):
        if kind not in ("relu", "absolute"):
            raise ValueError("kind must be 'relu' or 'absolute'")
        self.objectives = tuple(objectives)
        self.kind = kind

    def __call__(self, quality: float, metrics: Mapping[str, float]) -> float:
        """Reward of a candidate with ``quality`` and performance ``metrics``."""
        penalty = 0.0
        for objective in self.objectives:
            deviation = objective.overshoot(metrics)
            if self.kind == "relu":
                term = max(0.0, deviation)
            else:
                term = abs(deviation)
            penalty += objective.beta * term
        return quality + penalty

    def penalty_only(self, metrics: Mapping[str, float]) -> float:
        """The performance part of the reward (quality excluded)."""
        return self(0.0, metrics)


def relu_reward(objectives: Sequence[PerformanceObjective]) -> RewardFunction:
    """The paper's single-sided ReLU reward (Equation 1)."""
    return RewardFunction(objectives, kind="relu")


def absolute_reward(objectives: Sequence[PerformanceObjective]) -> RewardFunction:
    """TuNAS' absolute-value reward (Equation 2), the baseline."""
    return RewardFunction(objectives, kind="absolute")
