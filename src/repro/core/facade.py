"""High-level entry point tying the H2O-NAS pillars together.

:class:`H2ONas` wires a search space, a weight-sharing super-network,
an in-memory production-traffic source, performance objectives, and a
performance predictor into the massively parallel single-step search —
the full colored path of Figure 1.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from ..data.batch import Batch
from ..data.pipeline import SingleStepPipeline
from ..searchspace.base import Architecture, SearchSpace
from .reward import PerformanceObjective, absolute_reward, relu_reward
from .search import (
    PerformanceFn,
    SearchConfig,
    SearchResult,
    SingleStepSearch,
    SuperNetwork,
)


class H2ONas:
    """End-to-end Hyperscale Hardware Optimized NAS."""

    def __init__(
        self,
        space: SearchSpace,
        supernet: SuperNetwork,
        batch_source: Callable[[], Batch],
        performance_fn: PerformanceFn,
        objectives: Sequence[PerformanceObjective],
        reward_kind: str = "relu",
        config: Optional[SearchConfig] = None,
        max_batches: Optional[int] = None,
    ):
        config = config if config is not None else SearchConfig()
        self.space = space
        self.supernet = supernet
        self.pipeline = SingleStepPipeline(batch_source, max_batches=max_batches)
        reward_factory = relu_reward if reward_kind == "relu" else absolute_reward
        if reward_kind not in ("relu", "absolute"):
            raise ValueError("reward_kind must be 'relu' or 'absolute'")
        self.reward_fn = reward_factory(objectives)
        self.search_algorithm = SingleStepSearch(
            space=space,
            supernet=supernet,
            pipeline=self.pipeline,
            reward_fn=self.reward_fn,
            performance_fn=performance_fn,
            config=config,
        )
        #: the memoized candidate-evaluation runtime (cache + timers);
        #: controlled by ``config.use_cache`` / ``config.cache_size``.
        self.eval_runtime = self.search_algorithm.runtime

    def search(
        self,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 10,
        resume: bool = True,
        keep_last: int = 3,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> SearchResult:
        """Run the search and return the Pareto-optimized architecture.

        The returned ``SearchResult.eval_stats`` reports cache hit rate
        and per-stage wall time for the run.

        With a ``checkpoint_dir`` the search snapshots its full state
        every ``checkpoint_every`` steps (see :mod:`repro.runtime`) and,
        when ``resume`` is set, restores from the newest good snapshot
        before running — a resumed search is bit-identical to an
        uninterrupted one.

        ``should_stop`` enables graceful shutdown: polled at every step
        boundary, and when true the run writes a final checkpoint (if a
        ``checkpoint_dir`` is set) and raises
        :class:`~repro.runtime.errors.SearchInterrupted`.
        """
        if checkpoint_dir is None and should_stop is None:
            return self.search_algorithm.run()
        from ..runtime import CheckpointStore, run_with_checkpoints

        store = (
            CheckpointStore(checkpoint_dir, keep_last=keep_last)
            if checkpoint_dir is not None
            else None
        )
        run = run_with_checkpoints(
            self.search_algorithm,
            store=store,
            checkpoint_every=checkpoint_every,
            resume=resume,
            should_stop=should_stop,
        )
        return run.result

    def evaluate(self, arch: Architecture, batch: Batch) -> float:
        """Quality of ``arch`` on a held-out batch (post-search check)."""
        return self.supernet.quality(arch, batch.inputs, batch.labels)
