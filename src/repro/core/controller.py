"""REINFORCE controller over categorical search-space decisions.

The RL algorithm "learns a policy pi, a probability distribution over a
collection of independent multinomial variables.  Each variable
controls a decision of the search space" (Section 4.1).  The policy is
a per-decision logit vector; sampling is independent across decisions;
updates follow REINFORCE with a moving-average reward baseline (the
standard variance reduction TuNAS also uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..searchspace.base import Architecture, SearchSpace


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class CategoricalPolicy:
    """Independent multinomial distributions, one per decision."""

    def __init__(self, space: SearchSpace):
        self.space = space
        self.logits: List[np.ndarray] = [
            np.zeros(d.num_choices) for d in space.decisions
        ]

    # ------------------------------------------------------------------
    def probabilities(self) -> List[np.ndarray]:
        """Per-decision choice probabilities."""
        return [_softmax(logit) for logit in self.logits]

    def sample(self, rng: np.random.Generator) -> Tuple[Architecture, np.ndarray]:
        """Draw an architecture; returns it with its index vector."""
        return self.sample_batch(rng, 1)[0]

    def sample_batch(
        self, rng: np.random.Generator, count: int
    ) -> List[Tuple[Architecture, np.ndarray]]:
        """Draw ``count`` independent architectures in one vectorized step.

        Consumes the generator stream exactly like ``count`` sequential
        :meth:`sample` calls (one uniform per decision, row-major), so a
        batched search step reproduces the per-core Python loop draw for
        draw given the same seed — only without ``count x decisions``
        round-trips through ``rng.choice``.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        probs = self.probabilities()
        uniforms = rng.random((count, len(probs)))
        columns = []
        for d, p in enumerate(probs):
            cdf = np.cumsum(p)
            cdf /= cdf[-1]
            columns.append(np.searchsorted(cdf, uniforms[:, d], side="right"))
        index_matrix = np.stack(columns, axis=1).astype(np.int64)
        return [
            (self.space.architecture_from_indices(row), row) for row in index_matrix
        ]

    def log_prob(self, indices: Sequence[int]) -> float:
        """Log-probability of the architecture encoded by ``indices``."""
        total = 0.0
        for probs, idx in zip(self.probabilities(), indices):
            total += float(np.log(probs[int(idx)] + 1e-12))
        return total

    def entropy(self) -> float:
        """Summed entropy across decisions (search-convergence signal)."""
        total = 0.0
        for probs in self.probabilities():
            total += float(-(probs * np.log(probs + 1e-12)).sum())
        return total

    def most_probable_architecture(self) -> Architecture:
        """Independently pick the argmax of every decision (end of search)."""
        indices = [int(np.argmax(logit)) for logit in self.logits]
        return self.space.architecture_from_indices(indices)

    def state_dict(self) -> dict:
        """Copies of the per-decision logit vectors."""
        return {"logits": [logit.copy() for logit in self.logits]}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        logits = state["logits"]
        if len(logits) != len(self.logits):
            raise ValueError("policy state comes from a different search space")
        for mine, saved in zip(self.logits, logits):
            saved = np.asarray(saved, dtype=mine.dtype)
            if saved.shape != mine.shape:
                raise ValueError("policy state comes from a different search space")
            mine[:] = saved

    # ------------------------------------------------------------------
    def reinforce_update(
        self,
        samples: Sequence[Tuple[np.ndarray, float]],
        learning_rate: float,
        entropy_coef: float = 0.0,
    ) -> None:
        """One cross-shard REINFORCE step.

        ``samples`` is a list of ``(index_vector, advantage)`` pairs —
        one per parallel core — and the gradients are averaged across
        cores before being applied (the paper's cross-shard policy
        update).  The per-decision gradient of ``log pi`` w.r.t. the
        logits is ``onehot(choice) - probs``.

        ``entropy_coef`` adds an entropy bonus to the maximized
        objective, preventing premature convergence when constraint
        penalties dominate the early reward signal.  Both terms are
        computed from one probability snapshot (taken before any logit
        moves) and applied as a single combined step with consistent
        scaling: the shard mean of the per-sample REINFORCE gradients
        plus ``entropy_coef`` times the entropy gradient, all times the
        learning rate.  The entropy bonus is therefore invariant to the
        shard size, exactly like the averaged REINFORCE term.
        """
        if not samples:
            return
        probs = self.probabilities()
        grads = [np.zeros_like(logit) for logit in self.logits]
        for indices, advantage in samples:
            for d, idx in enumerate(indices):
                onehot = np.zeros_like(grads[d])
                onehot[int(idx)] = 1.0
                grads[d] += advantage * (onehot - probs[d])
        for d, (logit, grad) in enumerate(zip(self.logits, grads)):
            update = (learning_rate / len(samples)) * grad
            if entropy_coef > 0:
                p = probs[d]
                log_p = np.log(p + 1e-12)
                entropy = float(-(p * log_p).sum())
                update += learning_rate * entropy_coef * (-p * (log_p + entropy))
            logit += update


@dataclass
class BaselineTracker:
    """Exponential moving average of rewards (REINFORCE baseline)."""

    momentum: float = 0.9
    value: Optional[float] = None

    def advantage(self, reward: float) -> float:
        """Advantage of ``reward`` against the current baseline."""
        return reward if self.value is None else reward - self.value

    def update(self, rewards: Sequence[float]) -> None:
        if not len(rewards):
            return
        mean = float(np.mean(rewards))
        if self.value is None:
            self.value = mean
        else:
            self.value = self.momentum * self.value + (1 - self.momentum) * mean


class ReinforceController:
    """Policy + baseline, exposing the per-step update the searches use."""

    def __init__(
        self,
        space: SearchSpace,
        learning_rate: float = 0.2,
        baseline_momentum: float = 0.9,
        entropy_coef: float = 0.0,
        seed: int = 0,
    ):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if entropy_coef < 0:
            raise ValueError("entropy_coef must be non-negative")
        self.policy = CategoricalPolicy(space)
        self.learning_rate = learning_rate
        self.entropy_coef = entropy_coef
        self.baseline = BaselineTracker(momentum=baseline_momentum)
        self._rng = np.random.default_rng(seed)

    def sample(self) -> Tuple[Architecture, np.ndarray]:
        return self.policy.sample(self._rng)

    def sample_many(self, count: int) -> List[Tuple[Architecture, np.ndarray]]:
        """Independent samples, one per parallel core (vectorized draw)."""
        return self.policy.sample_batch(self._rng, count)

    def update(self, samples: Sequence[Tuple[np.ndarray, float]]) -> None:
        """REINFORCE update from ``(indices, reward)`` pairs."""
        for _, reward in samples:
            if not np.isfinite(reward):
                raise ValueError(
                    "non-finite reward reached the controller; check the "
                    "quality signal and performance metrics"
                )
        advantaged = [
            (indices, self.baseline.advantage(reward)) for indices, reward in samples
        ]
        self.policy.reinforce_update(
            advantaged, self.learning_rate, entropy_coef=self.entropy_coef
        )
        self.baseline.update([reward for _, reward in samples])

    def best_architecture(self) -> Architecture:
        return self.policy.most_probable_architecture()

    def entropy(self) -> float:
        return self.policy.entropy()

    def state_dict(self) -> dict:
        """Full controller state: policy logits, baseline, rng stream.

        The rng bit-generator state is included so a restored controller
        continues sampling the *same* stream — the property the
        checkpoint subsystem needs for crash-identical resume.
        """
        return {
            "policy": self.policy.state_dict(),
            "baseline_value": self.baseline.value,
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        self.policy.load_state_dict(state["policy"])
        value = state["baseline_value"]
        self.baseline.value = None if value is None else float(value)
        self._rng.bit_generator.state = state["rng"]

    def warm_start(self, policy: CategoricalPolicy) -> None:
        """Resume from a previously trained policy (same search space).

        Production searches checkpoint their policies (see
        :mod:`repro.core.serialize`); warm-starting a new controller
        from a checkpoint continues the search rather than restarting
        from uniform.
        """
        if len(policy.logits) != len(self.policy.logits):
            raise ValueError("policy comes from a different search space")
        for mine, theirs in zip(self.policy.logits, policy.logits):
            if mine.shape != theirs.shape:
                raise ValueError("policy comes from a different search space")
            mine[:] = theirs
