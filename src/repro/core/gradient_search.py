"""Gradient-based (DARTS-style) search baseline.

First-order differentiable architecture search over a
:class:`~repro.supernet.mixture.MixtureSuperNetwork`: architecture
parameters ``alpha`` (one logit vector per decision) are relaxed
through a softmax into choice mixtures, and the search alternates

* a **weight step** — update the shared weights ``W`` on a *training*
  batch with ``alpha`` frozen;
* an **architecture step** — update ``alpha`` on a *validation* batch
  with ``W`` frozen (first-order approximation of the bilevel problem).

The method needs the two-dataset split by construction (the relaxation
is trained like weights, so learning it on training data overfits) and
every step evaluates *all* choice branches — the two structural costs
the paper's Sections 2.1/3 cite for preferring the single-step RL
algorithm at hyperscale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.pipeline import TwoStreamPipeline
from ..nn import Adam, Tensor
from ..searchspace.base import Architecture
from ..supernet.mixture import MixtureSuperNetwork, mixture_search_space


@dataclass(frozen=True)
class DartsConfig:
    """Knobs of the gradient-based search."""

    steps: int = 100
    weight_lr: float = 0.005
    alpha_lr: float = 0.05
    warmup_steps: int = 10  # weight-only steps before alpha learning

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.warmup_steps < 0:
            raise ValueError("warmup_steps must be >= 0")
        if self.weight_lr <= 0 or self.alpha_lr <= 0:
            raise ValueError("learning rates must be positive")


@dataclass
class DartsResult:
    """Outcome of a gradient-based search."""

    final_architecture: Architecture
    train_losses: List[float] = field(default_factory=list)
    valid_losses: List[float] = field(default_factory=list)
    #: Sub-network branch evaluations performed per step (cost metric).
    branch_evaluations_per_step: int = 0


class DartsSearch:
    """First-order DARTS over the mixture super-network."""

    def __init__(
        self,
        supernet: MixtureSuperNetwork,
        pipeline: TwoStreamPipeline,
        config: Optional[DartsConfig] = None,
        seed: int = 0,
    ):
        config = config if config is not None else DartsConfig()
        self.supernet = supernet
        self.pipeline = pipeline
        self.config = config
        self.space = mixture_search_space(supernet.config)
        self.alphas: Dict[str, Tensor] = {
            decision.name: Tensor(
                np.zeros(decision.num_choices), requires_grad=True, name=decision.name
            )
            for decision in self.space.decisions
        }
        self._weight_optimizer = Adam(supernet.parameters(), lr=config.weight_lr)
        self._alpha_optimizer = Adam(list(self.alphas.values()), lr=config.alpha_lr)

    # ------------------------------------------------------------------
    def probabilities(self) -> Dict[str, Tensor]:
        """Softmax relaxation of every decision (gradients flow to alpha)."""
        return {name: alpha.softmax() for name, alpha in self.alphas.items()}

    def derive_architecture(self) -> Architecture:
        """Discretize: the argmax choice of every decision."""
        indices = [int(np.argmax(self.alphas[d.name].data)) for d in self.space.decisions]
        return self.space.architecture_from_indices(indices)

    def run(self) -> DartsResult:
        result = DartsResult(
            final_architecture=self.space.default_architecture(),
            branch_evaluations_per_step=2 * self.supernet.mixture_branch_count,
        )
        for step in range(self.config.steps):
            # Weight step on the training split (alphas fixed).
            train_batch = self.pipeline.next_train_batch()
            self.supernet.zero_grad()
            for alpha in self.alphas.values():
                alpha.zero_grad()
            train_loss = self.supernet.loss_mixture(
                self.probabilities(), train_batch.inputs, train_batch.labels
            )
            train_loss.backward()
            self._weight_optimizer.step()
            result.train_losses.append(train_loss.item())
            if step < self.config.warmup_steps:
                continue
            # Architecture step on the validation split (weights fixed).
            valid_batch = self.pipeline.next_valid_batch()
            self.supernet.zero_grad()
            for alpha in self.alphas.values():
                alpha.zero_grad()
            valid_loss = self.supernet.loss_mixture(
                self.probabilities(), valid_batch.inputs, valid_batch.labels
            )
            valid_loss.backward()
            self._alpha_optimizer.step()
            result.valid_losses.append(valid_loss.item())
        result.final_architecture = self.derive_architecture()
        return result
