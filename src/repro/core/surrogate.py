"""Surrogate super-network: search with an analytical quality model.

At hyperscale the paper's quality signal comes from forward passes of a
trained super-network on production traffic.  The benchmark harness
replays those searches on CPU with a calibrated analytical quality
surrogate instead (see :mod:`repro.quality`); this adapter exposes a
quality function through the super-network protocol the search
algorithms expect, with a no-op weight-training path.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..nn import Tensor
from ..searchspace.base import Architecture

QualityFn = Callable[[Architecture], float]


class SurrogateSuperNetwork:
    """Adapts ``arch -> quality`` functions to the SuperNetwork protocol.

    Optionally adds observation noise so the RL controller faces the
    same stochastic quality estimates it would see from minibatch
    evaluation of a real super-network.
    """

    def __init__(
        self,
        quality_fn: QualityFn,
        noise_sigma: float = 0.0,
        seed: int = 0,
        split_noise: bool = False,
    ):
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self._quality_fn = quality_fn
        self._noise_sigma = noise_sigma
        self._rng = np.random.default_rng(seed)
        # One dummy parameter so optimizers have something to hold.
        self._dummy = Tensor(np.zeros(1), requires_grad=True, name="surrogate.dummy")
        if split_noise:
            # Opt into the engine's split-rng scoring path: noise comes
            # from deterministically split per-task streams instead of
            # this instance's sequential stream, so scoring may fan out
            # across backend workers while staying bit-identical to
            # serial execution.  Exposed as an instance attribute so the
            # engine's getattr probe only sees it when enabled.
            self.quality_split = self._quality_split

    def quality(self, arch: Architecture, inputs, labels) -> float:
        value = float(self._quality_fn(arch))
        if self._noise_sigma > 0:
            value += float(self._rng.normal(0.0, self._noise_sigma))
        return value

    def _quality_split(
        self, arch: Architecture, inputs, labels, rng: np.random.Generator
    ) -> float:
        """Quality with observation noise drawn from a caller-split rng."""
        value = float(self._quality_fn(arch))
        if self._noise_sigma > 0:
            value += float(rng.normal(0.0, self._noise_sigma))
        return value

    def loss(self, arch: Architecture, inputs, labels) -> Tensor:
        """No weights to train: a zero loss keeps the step structure."""
        return (self._dummy * 0.0).sum()

    def parameters(self) -> List[Tensor]:
        return [self._dummy]

    def zero_grad(self) -> None:
        self._dummy.zero_grad()

    def state_dict(self) -> dict:
        """Dummy parameter plus the observation-noise rng stream.

        The rng state matters for checkpointing: a resumed search must
        see the same noisy quality draws an uninterrupted run would.
        """
        return {
            "dummy": self._dummy.data.copy(),
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        self._dummy.data[:] = np.asarray(state["dummy"])
        self._rng.bit_generator.state = state["rng"]
