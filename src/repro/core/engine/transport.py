"""Socket message transport for the distributed execution backend.

The controller and its workers exchange pickled message dicts over TCP,
framed by the same 8-byte length prefix the service protocol exposes
(:func:`repro.service.protocol.read_frame` / ``write_frame``) — one
framing layer, two consumers.  NDJSON stays the right shape for the
human-debuggable service verbs; stage traffic carries numpy batch
arrays and pickled generators, so it rides binary frames instead.

Every message is a dict with a ``"type"`` key; the set of types and
their fields is defined where they are produced and consumed
(:mod:`repro.core.engine.distributed`).  This module only knows how to
move one message: pickle, frame, unframe, unpickle.

Trust model: the transport carries *pickles*, so a connection is as
privileged as the process that accepted it.  Bind to loopback (the
default) or an interface the cluster's network policy already treats as
trusted, exactly like the multiprocessing ``Listener`` transports this
replaces.
"""

from __future__ import annotations

import pickle
import socket
from typing import Any, Dict, Optional, Tuple

from ...service.protocol import ProtocolError, read_frame, write_frame

#: Stamped into the worker's hello message; a controller refuses a
#: worker speaking another version instead of failing mid-shard.
TRANSPORT_VERSION = 1

#: Largest frame either side will accept — weight broadcasts for big
#: supernets dominate, and 1 GiB is far above any real payload while
#: still catching a corrupt or hostile length prefix.
MAX_FRAME_BYTES = 1 << 30

#: Where a cluster listens when nothing is specified: loopback, ephemeral
#: port.  Cross-host deployments bind an explicit ``host:port``.
DEFAULT_BIND = "127.0.0.1:0"


def parse_address(spec: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``, with typed errors.

    The port may be 0 (ephemeral, controller-side bind only).
    """
    text = str(spec).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address {spec!r} is not 'host:port' (e.g. '127.0.0.1:7077')"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"address {spec!r} has a non-integer port {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"address {spec!r} port is out of range")
    return host, port


def format_address(address: Tuple[str, int]) -> str:
    host, port = address
    return f"{host}:{port}"


def send_message(sock: socket.socket, message: Dict[str, Any]) -> int:
    """Pickle and frame one message; returns the payload byte count."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    write_frame(sock, payload)
    return len(payload)


def recv_message(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one message; ``None`` on clean EOF at a frame boundary.

    Truncated or oversized frames, and frames that do not unpickle to a
    ``{"type": ...}`` dict, raise :class:`ProtocolError` — the caller
    treats the connection as lost, never as "empty result".
    """
    payload = read_frame(sock, max_bytes=max_bytes)
    if payload is None:
        return None
    try:
        message = pickle.loads(payload)
    except Exception as error:
        raise ProtocolError(f"frame does not unpickle: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(
            f"message must be a dict with a 'type' key, got {type(message).__name__}"
        )
    return message


__all__ = [
    "DEFAULT_BIND",
    "MAX_FRAME_BYTES",
    "TRANSPORT_VERSION",
    "format_address",
    "parse_address",
    "recv_message",
    "send_message",
]
