"""Cross-host controller/worker execution backend.

This is the last rung of the backend ladder and the paper's actual
deployment shape: one controller owns the policy and the search loop,
and ``N`` workers — on this host or others — score shards against
supernets they rehydrated once from a serialized spec.  Where the
process backend (:mod:`.backends`) moves weights through a shared-memory
seqlock, hosts have no shared memory; the same versioning becomes a
*push*: every ``optimizer_step()`` republish broadcasts a versioned
weight message, every task is stamped with the version it must score
against, and a worker holding older weights re-fetches before scoring
(:class:`WorkerHost` below).  The determinism contract is unchanged —
per-task ``SeedSequence`` streams ride inside the pickled payloads and
the gather is order-preserving — so a distributed search is
bit-identical to a serial one.

Fault tolerance generalizes the process pool's whole-map resubmission
into *per-task* resubmission: a lost host (connection drop, worker
SIGKILL) orphans only the tasks assigned to it, which are re-sent to
surviving workers with a bounded per-task retry budget; exhaustion (or
losing every worker) raises the retryable
:class:`~repro.runtime.errors.WorkerCrashError`, handing the step to the
supervisor's checkpoint/restart path.

Topology: a :class:`_Cluster` (one per ``(workers, bind)`` key, shared
through the executor-pool registry) binds a TCP listener and accepts
workers whenever they arrive.  By default it also spawns ``workers``
loopback worker threads running the exact code path an external
``repro worker --connect host:port`` process runs, so ``--backend
distributed`` works out of the box on one machine and the wire protocol
is exercised end-to-end even in tier-1 CI.
"""

from __future__ import annotations

import itertools
import os
import pickle
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np

from .backends import (
    ExecutionBackend,
    _discard_shared_pool,
    _shared_pool,
    default_worker_count,
)
from ...service.protocol import ProtocolError
from .transport import (
    DEFAULT_BIND,
    TRANSPORT_VERSION,
    format_address,
    parse_address,
    recv_message,
    send_message,
)
from .worker import (
    RemoteContextRef,
    StageTask,
    build_supernet_from_spec,
    execute_stage_kind,
    next_context_id,
    register_local_context,
    run_stage_task,
    unregister_local_context,
    worker_spec_for,
)

T = TypeVar("T")
R = TypeVar("R")

#: Where the controller listens when a search does not say —
#: loopback/ephemeral unless this env var names a ``host:port``.
DIST_BIND_ENV_VAR = "REPRO_DIST_BIND"


def _crash_error(message: str) -> Exception:
    from ...runtime.errors import WorkerCrashError

    return WorkerCrashError(message)


def _weights_layout(
    arrays: Sequence[np.ndarray],
) -> List[Tuple[Tuple[int, ...], int, int]]:
    """``(shape, offset, size)`` per array, in float64 *elements* — the
    same layout convention the shared-memory segment uses, so
    :class:`~.worker.RemoteContextRef` is meaningful on both backends."""
    layout: List[Tuple[Tuple[int, ...], int, int]] = []
    offset = 0
    for array in arrays:
        layout.append((tuple(array.shape), offset, int(array.size)))
        offset += int(array.size)
    return layout


def _snapshot_weights(arrays: Sequence[np.ndarray]) -> bytes:
    """The concatenated float64 bytes a weight broadcast carries."""
    return b"".join(
        np.ascontiguousarray(a, dtype=np.float64).tobytes() for a in arrays
    )


def _picklable_error(error: BaseException) -> BaseException:
    """``error`` if it survives pickling, else a faithful stand-in.

    An unpicklable exception must not kill the worker's send path — that
    would surface as a *host loss* and burn retries on a deterministic
    failure the controller should just propagate.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _HostContext:
    """One rehydrated supernet plus its last-applied weight version."""

    def __init__(self, supernet: Any, layout: Sequence[Tuple[Tuple[int, ...], int, int]]):
        self.supernet = supernet
        self.param_arrays = [p.data for p in supernet.parameters()]
        self.layout = [
            (tuple(shape), int(offset), int(size)) for shape, offset, size in layout
        ]
        shapes = [tuple(a.shape) for a in self.param_arrays]
        expected = [shape for shape, _, _ in self.layout]
        if shapes != expected:
            raise RuntimeError(
                f"rehydrated supernet parameters {shapes} do not match the "
                f"broadcast layout {expected}"
            )
        self.applied_version = 0

    def apply(self, version: int, data: bytes) -> None:
        if version <= self.applied_version:
            return
        flat = np.frombuffer(data, dtype=np.float64)
        for array, (shape, offset, size) in zip(self.param_arrays, self.layout):
            np.copyto(array, flat[offset : offset + size].reshape(shape))
        self.applied_version = int(version)


class WorkerHost:
    """One worker's connection to a controller: the ``repro worker`` loop.

    Single-threaded by design: one socket, one message at a time, with a
    small backlog deque for messages that arrive while the worker is
    blocked waiting for a context or weight version it asked for.  The
    same loop runs as an external process (``repro worker``) and as the
    cluster's loopback worker threads — one code path, tested both ways.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        worker_id: Optional[str] = None,
        max_tasks: Optional[int] = None,
        connect_timeout: float = 10.0,
    ):
        target = parse_address(address) if isinstance(address, str) else tuple(address)
        self.address = (target[0], int(target[1]))
        self.worker_id = worker_id or f"{socket.gethostname()}/{os.getpid()}"
        #: execute-and-reply budget; ``None`` serves until shutdown/EOF.
        #: A bounded worker exits *abruptly* once spent — no goodbye —
        #: which is exactly a host loss from the controller's viewpoint,
        #: giving tests a deterministic kill-mid-shard lever.
        self.max_tasks = max_tasks
        self.connect_timeout = connect_timeout
        self.executed = 0
        self._contexts: Dict[str, Union[_HostContext, Exception]] = {}
        self._backlog: "deque[Dict[str, Any]]" = deque()
        self._sock: Optional[socket.socket] = None

    # -- lifecycle ------------------------------------------------------
    def run(self) -> int:
        """Serve until shutdown, EOF, or the ``max_tasks`` budget is
        spent; returns the number of tasks executed."""
        sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        try:
            send_message(
                sock,
                {
                    "type": "hello",
                    "transport": TRANSPORT_VERSION,
                    "worker_id": self.worker_id,
                    "host": socket.gethostname(),
                    "pid": os.getpid(),
                },
            )
            self._serve()
        finally:
            self._sock = None
            sock.close()
        return self.executed

    def _next_message(self) -> Optional[Dict[str, Any]]:
        if self._backlog:
            return self._backlog.popleft()
        try:
            return recv_message(self._sock)
        except (ProtocolError, OSError):
            return None

    def _serve(self) -> None:
        while True:
            message = self._next_message()
            if message is None:
                return
            kind = message["type"]
            if kind == "shutdown":
                return
            if kind in ("context", "weights", "release"):
                self._apply_control(message)
            elif kind in ("task", "call"):
                if not self._handle_work(message):
                    return
                if self.max_tasks is not None and self.executed >= self.max_tasks:
                    # Budget spent: vanish mid-conversation, like a
                    # SIGKILLed host would.
                    return
            # unknown types are ignored: forward-compatible controllers

    # -- control messages ----------------------------------------------
    def _apply_control(self, message: Dict[str, Any]) -> None:
        kind = message["type"]
        context_id = message["context_id"]
        if kind == "release":
            self._contexts.pop(context_id, None)
            return
        if kind == "weights":
            ctx = self._contexts.get(context_id)
            if isinstance(ctx, _HostContext):
                ctx.apply(message["version"], message["data"])
            return
        # context: build the supernet once; a failure is remembered and
        # reported per-task rather than killing the worker.
        if message.get("missing"):
            self._contexts[context_id] = RuntimeError(
                f"controller has no context {context_id!r} (already released?)"
            )
            return
        try:
            supernet = build_supernet_from_spec(pickle.loads(message["spec"]))
            ctx: Union[_HostContext, Exception] = _HostContext(
                supernet, message["layout"]
            )
            if message.get("weights") is not None:
                ctx.apply(message["version"], message["weights"])
        except Exception as error:
            ctx = error
        self._contexts[context_id] = ctx

    def _await(self, predicate: Callable[[], bool]) -> bool:
        """Drain messages until ``predicate`` holds, backlogging work.

        Control messages apply immediately (they may be exactly what the
        predicate waits for); tasks and shutdown go to the backlog in
        arrival order.  ``False`` means the connection died first.
        """
        while not predicate():
            try:
                message = recv_message(self._sock)
            except (ProtocolError, OSError):
                return False
            if message is None:
                return False
            if message["type"] in ("context", "weights", "release"):
                self._apply_control(message)
            else:
                self._backlog.append(message)
        return True

    # -- work messages --------------------------------------------------
    def _context_for_task(self, ref: RemoteContextRef) -> _HostContext:
        context_id = ref.context_id
        if context_id not in self._contexts:
            # The task overtook the context broadcast (we joined while a
            # search was mid-flight); ask for it and wait.
            send_message(
                self._sock, {"type": "fetch_context", "context_id": context_id}
            )
            if not self._await(lambda: context_id in self._contexts):
                raise ConnectionError("controller went away during fetch_context")
        ctx = self._contexts[context_id]
        if isinstance(ctx, Exception):
            raise ctx
        if ctx.applied_version < ref.version:
            # Stale weights: this task was stamped after a publish whose
            # broadcast we have not seen (reconnect races, lost frames
            # are impossible but joins are not) — re-fetch before
            # scoring, exactly like the shm copy-in on version mismatch.
            send_message(
                self._sock,
                {
                    "type": "fetch_weights",
                    "context_id": context_id,
                    "version": ref.version,
                },
            )
            if not self._await(lambda: ctx.applied_version >= ref.version):
                raise ConnectionError("controller went away during fetch_weights")
        return ctx

    def _handle_work(self, message: Dict[str, Any]) -> bool:
        """Execute one task/call and reply; ``False`` if the link died."""
        task_id = message["task_id"]
        try:
            start = time.perf_counter()
            if message["type"] == "call":
                value = message["fn"](message["item"])
            else:
                task: StageTask = message["task"]
                ctx = self._context_for_task(task.context)
                value = execute_stage_kind(ctx.supernet, task.kind, task.payload)
            seconds = time.perf_counter() - start
        except ConnectionError:
            return False
        except Exception as error:  # deterministic task failure: report it
            self.executed += 1
            return self._send(
                {"type": "error", "task_id": task_id, "error": _picklable_error(error)}
            )
        self.executed += 1
        if self._send({"type": "result", "task_id": task_id, "value": value,
                       "seconds": seconds}):
            return True
        return False

    def _send(self, message: Dict[str, Any]) -> bool:
        try:
            send_message(self._sock, message)
            return True
        except Exception as error:
            # A result that cannot pickle must come back as a typed task
            # error, not a dead worker.
            if not isinstance(error, (OSError, ProtocolError)):
                try:
                    send_message(
                        self._sock,
                        {
                            "type": "error",
                            "task_id": message.get("task_id"),
                            "error": _picklable_error(
                                error if isinstance(error, Exception)
                                else RuntimeError(str(error))
                            ),
                        },
                    )
                    return True
                except Exception:
                    return False
            return False


def run_worker(
    address: Union[str, Tuple[str, int]],
    worker_id: Optional[str] = None,
    max_tasks: Optional[int] = None,
    connect_timeout: float = 10.0,
) -> int:
    """Connect to a controller and serve stage tasks until told to stop.

    The entry point behind ``repro worker --connect host:port`` and the
    cluster's loopback worker threads; returns the task count executed.
    """
    host = WorkerHost(
        address,
        worker_id=worker_id,
        max_tasks=max_tasks,
        connect_timeout=connect_timeout,
    )
    return host.run()


# ----------------------------------------------------------------------
# Controller side
# ----------------------------------------------------------------------
class _TaskRecord:
    """One submitted task: its wire message, result slot, retry count."""

    __slots__ = ("task_id", "index", "message", "retries", "link", "run")

    def __init__(self, task_id: int, index: int, message: Dict[str, Any], run: "_MapRun"):
        self.task_id = task_id
        self.index = index
        self.message = message
        self.retries = 0
        self.link: Optional["_WorkerLink"] = None
        self.run = run


class _MapRun:
    """Controller-side state of one in-flight order-preserving map."""

    __slots__ = ("results", "remaining", "failure", "max_retries")

    def __init__(self, count: int, max_retries: int):
        self.results: List[Optional[Tuple[Any, float, str]]] = [None] * count
        self.remaining = count
        self.failure: Optional[BaseException] = None
        self.max_retries = max_retries


class _WorkerLink:
    """One connected worker: socket, send lock, outstanding tasks."""

    def __init__(self, sock: socket.socket, worker_id: str, host: str, pid: int):
        self.sock = sock
        self.worker_id = worker_id
        self.host = host
        self.pid = pid
        self.alive = True
        self.outstanding: Dict[int, _TaskRecord] = {}
        self._send_lock = threading.Lock()

    def send(self, message: Dict[str, Any]) -> None:
        with self._send_lock:
            send_message(self.sock, message)


class _Cluster:
    """Listener + worker links + context state, shared across backends.

    Registered in the executor-pool registry under ``("distributed",
    workers, bind, spawn_local)`` and duck-types ``shutdown(wait=...)``,
    so ``shutdown_pools()`` (and interpreter exit) reaps it like any
    executor.  One cluster serves every search in the process that picks
    the same key — the point: tests and sweeps run hundreds of searches,
    and workers rehydrate supernets per *context*, not per search
    object, so connection churn is zero.
    """

    def __init__(self, workers: int, bind: str = DEFAULT_BIND, spawn_local: bool = True):
        self.workers = workers
        self.spawn_local = spawn_local
        self.worker_losses = 0
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._links: Dict[str, _WorkerLink] = {}
        self._contexts: Dict[str, Dict[str, Any]] = {}
        self._pending: Dict[int, _TaskRecord] = {}
        self._task_ids = itertools.count(1)
        self._rr = 0
        self._closed = False
        host, port = parse_address(bind)
        self._listener = socket.create_server((host, port))
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-dist-accept", daemon=True
        )
        self._accept_thread.start()
        self._local_threads: List[threading.Thread] = []
        if spawn_local:
            base = f"{socket.gethostname()}/{os.getpid()}"
            for index in range(workers):
                thread = threading.Thread(
                    target=self._run_local_worker,
                    args=(f"{base}/w{index}",),
                    name=f"repro-dist-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._local_threads.append(thread)

    def _run_local_worker(self, worker_id: str) -> None:
        try:
            run_worker(self.address, worker_id=worker_id)
        except Exception:
            pass  # loss is observed (and accounted) controller-side

    # -- membership -----------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: cluster shut down
            threading.Thread(
                target=self._admit, args=(conn,), name="repro-dist-admit", daemon=True
            ).start()

    def _admit(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(10.0)
            hello = recv_message(conn)
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("transport") != TRANSPORT_VERSION
            ):
                conn.close()
                return
            conn.settimeout(None)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (ProtocolError, OSError):
            conn.close()
            return
        link = _WorkerLink(
            conn,
            str(hello.get("worker_id") or "unknown/0"),
            str(hello.get("host") or "unknown"),
            int(hello.get("pid") or 0),
        )
        with self._cond:
            if self._closed:
                conn.close()
                return
            base, n = link.worker_id, 1
            while link.worker_id in self._links:
                n += 1
                link.worker_id = f"{base}#{n}"
            self._links[link.worker_id] = link
            contexts = [dict(state) for state in self._contexts.values()]
            self._cond.notify_all()
        try:
            for state in contexts:
                link.send(self._context_message(state))
        except (OSError, ProtocolError):
            self._handle_link_loss(link)
            return
        threading.Thread(
            target=self._recv_loop,
            args=(link,),
            name=f"repro-dist-recv-{link.worker_id}",
            daemon=True,
        ).start()

    def wait_for_workers(self, count: int, timeout: float) -> int:
        """Block until ``count`` workers are connected (or timeout)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._links) < count and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return len(self._links)

    @property
    def host_count(self) -> int:
        with self._lock:
            return len(self._links)

    # -- context / weight state ----------------------------------------
    @staticmethod
    def _context_message(state: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "type": "context",
            "context_id": state["context_id"],
            "spec": state["spec"],
            "layout": state["layout"],
            "version": state["version"],
            "weights": state["weights"],
        }

    def register_context(
        self,
        context_id: str,
        spec: bytes,
        layout: Tuple[Tuple[Tuple[int, ...], int, int], ...],
        version: int,
        weights: bytes,
    ) -> None:
        state = {
            "context_id": context_id,
            "spec": spec,
            "layout": layout,
            "version": int(version),
            "weights": weights,
        }
        with self._lock:
            self._contexts[context_id] = state
            links = list(self._links.values())
        self._broadcast(links, self._context_message(state))

    def update_weights(self, context_id: str, version: int, weights: bytes) -> None:
        with self._lock:
            state = self._contexts.get(context_id)
            if state is None:
                return
            state["version"] = int(version)
            state["weights"] = weights
            links = list(self._links.values())
        self._broadcast(
            links,
            {
                "type": "weights",
                "context_id": context_id,
                "version": int(version),
                "data": weights,
            },
        )

    def release_context(self, context_id: str) -> None:
        with self._lock:
            self._contexts.pop(context_id, None)
            links = list(self._links.values())
        self._broadcast(links, {"type": "release", "context_id": context_id})

    def _broadcast(self, links: Sequence[_WorkerLink], message: Dict[str, Any]) -> None:
        for link in links:
            try:
                link.send(message)
            except (OSError, ProtocolError):
                self._handle_link_loss(link)

    # -- the map --------------------------------------------------------
    def run_map(
        self, messages: Sequence[Dict[str, Any]], max_retries: int
    ) -> List[Tuple[Any, float, str]]:
        """Fan ``messages`` out, gather ``(value, seconds, worker_id)``
        in submission order; resubmit orphans of lost workers."""
        run = _MapRun(len(messages), max_retries)
        records: List[_TaskRecord] = []
        with self._cond:
            if self._closed:
                raise _crash_error("distributed cluster is shut down")
            for index, message in enumerate(messages):
                task_id = next(self._task_ids)
                message = dict(message)
                message["task_id"] = task_id
                record = _TaskRecord(task_id, index, message, run)
                records.append(record)
                self._pending[task_id] = record
                self._assign_locked(record)
        for record in records:
            link = record.link
            if link is None:
                continue  # no worker was available; resolved below
            try:
                link.send(record.message)
            except (OSError, ProtocolError):
                self._handle_link_loss(link)
        with self._cond:
            # Tasks that never found a worker fail the run up front.
            if any(r.link is None for r in records) and run.failure is None:
                self._fail_run_locked(
                    run, _crash_error("no distributed workers are connected")
                )
            while run.remaining > 0 and run.failure is None:
                if self._closed:
                    self._fail_run_locked(
                        run, _crash_error("distributed cluster shut down mid-map")
                    )
                    break
                self._cond.wait(timeout=0.5)
            if run.failure is not None:
                raise run.failure
            return [result for result in run.results]  # type: ignore[misc]

    def _assign_locked(self, record: _TaskRecord) -> Optional[_WorkerLink]:
        """Pick a live link round-robin; caller sends outside the lock."""
        links = [link for link in self._links.values() if link.alive]
        if not links:
            record.link = None
            return None
        link = links[self._rr % len(links)]
        self._rr += 1
        record.link = link
        link.outstanding[record.task_id] = record
        return link

    # -- per-link receive path ------------------------------------------
    def _recv_loop(self, link: _WorkerLink) -> None:
        try:
            while True:
                message = recv_message(link.sock)
                if message is None:
                    break
                kind = message["type"]
                if kind == "result":
                    self._complete(
                        link,
                        message["task_id"],
                        message.get("value"),
                        float(message.get("seconds", 0.0)),
                    )
                elif kind == "error":
                    self._fail_task(link, message["task_id"], message["error"])
                elif kind == "fetch_weights":
                    self._serve_fetch(link, message["context_id"], weights_only=True)
                elif kind == "fetch_context":
                    self._serve_fetch(link, message["context_id"], weights_only=False)
        except (ProtocolError, OSError):
            pass
        finally:
            self._handle_link_loss(link)

    def _serve_fetch(self, link: _WorkerLink, context_id: str, weights_only: bool) -> None:
        with self._lock:
            state = self._contexts.get(context_id)
            state = dict(state) if state is not None else None
        try:
            if state is None:
                link.send({"type": "context", "context_id": context_id, "missing": True})
            elif weights_only:
                link.send(
                    {
                        "type": "weights",
                        "context_id": context_id,
                        "version": state["version"],
                        "data": state["weights"],
                    }
                )
            else:
                link.send(self._context_message(state))
        except (OSError, ProtocolError):
            self._handle_link_loss(link)

    def _complete(
        self, link: _WorkerLink, task_id: int, value: Any, seconds: float
    ) -> None:
        with self._cond:
            record = self._pending.pop(task_id, None)
            link.outstanding.pop(task_id, None)
            if record is None:
                return  # stale: its run already failed
            run = record.run
            run.results[record.index] = (value, seconds, link.worker_id)
            run.remaining -= 1
            if run.remaining == 0:
                self._cond.notify_all()

    def _fail_task(self, link: _WorkerLink, task_id: int, error: BaseException) -> None:
        """A task raised deterministically: propagate, never retry."""
        with self._cond:
            record = self._pending.pop(task_id, None)
            link.outstanding.pop(task_id, None)
            if record is None:
                return
            self._fail_run_locked(record.run, error)

    def _fail_run_locked(self, run: _MapRun, error: BaseException) -> None:
        if run.failure is None:
            run.failure = error
        for task_id in [t for t, r in self._pending.items() if r.run is run]:
            record = self._pending.pop(task_id)
            if record.link is not None:
                record.link.outstanding.pop(task_id, None)
        self._cond.notify_all()

    def _handle_link_loss(self, link: _WorkerLink) -> None:
        """A worker vanished: drop the link, resubmit its orphans."""
        resubmissions: List[Tuple[_WorkerLink, _TaskRecord]] = []
        with self._cond:
            if not link.alive:
                return
            link.alive = False
            self._links.pop(link.worker_id, None)
            orphans = list(link.outstanding.values())
            link.outstanding.clear()
            if not self._closed:
                self.worker_losses += 1
            for record in orphans:
                if record.task_id not in self._pending:
                    continue
                run = record.run
                record.retries += 1
                if record.retries > run.max_retries:
                    self._pending.pop(record.task_id, None)
                    self._fail_run_locked(
                        run,
                        _crash_error(
                            f"task resubmitted {run.max_retries} times across "
                            f"lost workers; giving up"
                        ),
                    )
                    continue
                target = self._assign_locked(record)
                if target is None:
                    self._pending.pop(record.task_id, None)
                    self._fail_run_locked(
                        run,
                        _crash_error(
                            "lost the last distributed worker with tasks in flight"
                        ),
                    )
                    continue
                resubmissions.append((target, record))
            self._cond.notify_all()
        try:
            link.sock.close()
        except OSError:
            pass
        for target, record in resubmissions:
            try:
                target.send(record.message)
            except (OSError, ProtocolError):
                self._handle_link_loss(target)

    # -- shutdown -------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            links = list(self._links.values())
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for link in links:
            try:
                link.send({"type": "shutdown"})
            except (OSError, ProtocolError):
                pass
        if wait:
            for thread in self._local_threads:
                thread.join(timeout=5.0)
        for link in links:
            try:
                link.sock.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Engine-side context handle
# ----------------------------------------------------------------------
class DistributedContext:
    """Engine-side handle on one supernet published to the cluster.

    The same surface :class:`~.worker.RemoteShardContext` offers the
    engine — ``ref()`` / ``publish()`` / ``fast_forward()`` /
    ``release()`` — with the seqlock segment replaced by versioned
    broadcast state held in the cluster.
    """

    def __init__(self, cluster: _Cluster, supernet: Any, spec_bytes: bytes):
        self.cluster = cluster
        self.supernet = supernet
        self.param_arrays = [p.data for p in supernet.parameters()]
        self.layout = _weights_layout(self.param_arrays)
        self.context_id = next_context_id()
        self.version = 1
        self._released = False
        register_local_context(self.context_id, supernet)
        cluster.register_context(
            self.context_id,
            spec_bytes,
            tuple(self.layout),
            self.version,
            _snapshot_weights(self.param_arrays),
        )

    def ref(self) -> RemoteContextRef:
        """A picklable reference stamped with the current version.

        No shared-memory segments exist here: the spec travelled in the
        context broadcast and weights travel in version messages, so the
        segment fields are empty and only ``context_id``/``version`` do
        the work.
        """
        return RemoteContextRef(
            context_id=self.context_id,
            spec_segment="",
            weights_segment=None,
            layout=tuple(self.layout),
            version=self.version,
        )

    def publish(self) -> int:
        """Broadcast the live parameters as the next weight version."""
        self.version += 1
        self.cluster.update_weights(
            self.context_id, self.version, _snapshot_weights(self.param_arrays)
        )
        return self.version

    def fast_forward(self, version: int) -> int:
        """Republish past a checkpoint's recorded version (monotonic
        across crash/resume, so stale workers always refresh)."""
        self.version = max(self.version, int(version)) + 1
        self.cluster.update_weights(
            self.context_id, self.version, _snapshot_weights(self.param_arrays)
        )
        return self.version

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        unregister_local_context(self.context_id)
        self.cluster.release_context(self.context_id)


def build_distributed_context(
    supernet: Any, cluster_factory: Callable[[], _Cluster]
) -> Optional[DistributedContext]:
    """Validate and publish ``supernet``, or ``None`` if it cannot travel.

    The same strict registration-time probe the process backend runs: the
    spec must survive a pickle round trip and rebuild into a supernet
    whose parameter shapes and dtypes match exactly, and parameters must
    be float64 (the broadcast byte layout assumes it).  Any failure keeps
    the search on the always-correct in-process path — and skips cluster
    startup entirely.
    """
    try:
        arrays = [p.data for p in supernet.parameters()]
        if not arrays or any(a.dtype != np.float64 for a in arrays):
            return None
        spec_bytes = pickle.dumps(worker_spec_for(supernet))
        rebuilt = build_supernet_from_spec(pickle.loads(spec_bytes))
        rebuilt_arrays = [p.data for p in rebuilt.parameters()]
        if [(a.shape, a.dtype) for a in rebuilt_arrays] != [
            (a.shape, a.dtype) for a in arrays
        ]:
            return None
        return DistributedContext(cluster_factory(), supernet, spec_bytes)
    except Exception:
        return None


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class DistributedBackend(ExecutionBackend):
    """Fan picklable tasks out across worker *hosts* over TCP.

    The cross-host leg of the ladder: same determinism contract, same
    engine surface as :class:`~.backends.ProcessPoolBackend`, different
    failure domain.  Key differences from the process pool:

    * **weights are pushed, not shared** — ``publish()`` broadcasts a
      versioned weight message; a worker scoring a task stamped with a
      newer version re-fetches first (the shm seqlock, generalized);
    * **loss is per-task, not per-map** — a dead host orphans only its
      assigned tasks, which are resubmitted to survivors under a bounded
      per-task retry budget before
      :class:`~repro.runtime.errors.WorkerCrashError` surfaces;
    * **membership is open** — workers may join at any time (``repro
      worker --connect``); by default the cluster also spawns loopback
      worker threads so the backend works standalone.
    """

    name = "distributed"
    remote = True

    #: per-task resubmissions tolerated before the map gives up
    max_task_retries = 2

    def __init__(
        self,
        workers: Optional[int] = None,
        seed: int = 0,
        bind: Optional[str] = None,
        spawn_local: Optional[bool] = None,
        shared: bool = True,
        worker_timeout: float = 30.0,
    ):
        super().__init__(
            seed=seed,
            workers=workers if workers is not None else default_worker_count(),
        )
        env_bind = os.environ.get(DIST_BIND_ENV_VAR)
        self._bind = bind if bind is not None else (env_bind or DEFAULT_BIND)
        # An explicit bind (flag or env) implies external workers will
        # connect; the loopback complement is for the standalone case.
        if spawn_local is None:
            spawn_local = bind is None and not env_bind
        self._spawn_local = spawn_local
        self._shared = shared
        self._owned_cluster: Optional[_Cluster] = None
        self._active_cluster: Optional[_Cluster] = None
        self._losses_before = 0
        self._context: Optional[DistributedContext] = None
        self.worker_timeout = worker_timeout

    # -- cluster lifecycle ----------------------------------------------
    def _cluster_key(self) -> Tuple[Any, ...]:
        return ("distributed", self.workers, self._bind, self._spawn_local)

    def _cluster(self) -> _Cluster:
        if self._active_cluster is not None and not self._active_cluster._closed:
            return self._active_cluster
        factory = lambda: _Cluster(  # noqa: E731
            self.workers, bind=self._bind, spawn_local=self._spawn_local
        )
        if self._shared:
            cluster = _shared_pool(self._cluster_key(), factory)  # type: ignore[arg-type]
            if cluster._closed:
                # A shutdown_pools() happened since; replace the corpse.
                _discard_shared_pool(self._cluster_key(), cluster)  # type: ignore[arg-type]
                cluster = _shared_pool(self._cluster_key(), factory)  # type: ignore[arg-type]
        else:
            if self._owned_cluster is None or self._owned_cluster._closed:
                self._owned_cluster = factory()
            cluster = self._owned_cluster
        if self._active_cluster is not cluster:
            self._active_cluster = cluster
            self._losses_before = cluster.worker_losses
        return cluster

    @property
    def address(self) -> str:
        """``host:port`` external workers connect to (binds lazily)."""
        return format_address(self._cluster().address)

    @property
    def worker_losses(self) -> int:
        """Hosts lost since this backend first touched its cluster."""
        if self._active_cluster is None:
            return 0
        return self._active_cluster.worker_losses - self._losses_before

    @property
    def host_count(self) -> int:
        """Currently connected workers (the ``engine.hosts`` gauge)."""
        if self._active_cluster is None:
            return 0
        return self._active_cluster.host_count

    def wait_for_workers(self, count: Optional[int] = None, timeout: Optional[float] = None) -> int:
        """Block until ``count`` (default: all) workers are connected."""
        return self._cluster().wait_for_workers(
            count if count is not None else self.workers,
            timeout if timeout is not None else self.worker_timeout,
        )

    # -- supernet context ----------------------------------------------
    def register_context(self, supernet: Any) -> Optional[DistributedContext]:
        """Publish ``supernet`` to the cluster (or ``None`` if it cannot
        travel / remote execution buys nothing at one worker)."""
        if self.workers <= 1:
            return None
        if self._context is not None:
            self._context.release()
        self._context = build_distributed_context(supernet, self._cluster)
        return self._context

    # -- execution ------------------------------------------------------
    def _can_ship(self, fn: Callable, items: Sequence) -> bool:
        try:
            pickle.dumps(fn)
            if items:
                pickle.dumps(items[0])
            return True
        except Exception:
            return False

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        if fn is run_stage_task and all(isinstance(i, StageTask) for i in items):
            ctx = self._context
            if ctx is None or any(
                t.context.context_id != ctx.context_id for t in items  # type: ignore[attr-defined]
            ):
                return [fn(item) for item in items]
            messages = [{"type": "task", "task": task} for task in items]
            unwrap = False
        elif self._can_ship(fn, items):
            messages = [{"type": "call", "fn": fn, "item": item} for item in items]
            unwrap = True
        else:
            return [fn(item) for item in items]
        cluster = self._cluster()
        if cluster.wait_for_workers(1, self.worker_timeout) < 1:
            # Nobody ever connected: the in-process path is always right.
            return [fn(item) for item in items]
        results = cluster.run_map(messages, self.max_task_retries)
        if unwrap:
            return [value for value, _, _ in results]
        # Stage tasks keep the (value, seconds, worker_id) triple —
        # the same contract run_stage_task has, with the worker id
        # replacing the pid so spans are labelled per host.
        return results  # type: ignore[return-value]

    # -- checkpoint state ----------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["weights_version"] = (
            int(self._context.version) if self._context is not None else 0
        )
        return state

    def load_state_dict(self, state) -> None:
        super().load_state_dict(state)
        if self._context is not None:
            self._context.fast_forward(int(state.get("weights_version", 0)))

    def close(self) -> None:
        if self._context is not None:
            self._context.release()
            self._context = None
        if self._owned_cluster is not None:
            self._owned_cluster.shutdown(wait=True)
            self._owned_cluster = None
        self._active_cluster = None


__all__ = [
    "DIST_BIND_ENV_VAR",
    "DistributedBackend",
    "DistributedContext",
    "WorkerHost",
    "build_distributed_context",
    "run_worker",
]
