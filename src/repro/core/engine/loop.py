"""Resumable unit loops: the shared checkpoint-driven driver.

The multi-trial baselines and the per-scale Pareto sweep each grew
their own copy of the same scaffolding — "resume from the newest good
snapshot if its algorithm matches mine, then advance one unit at a
time, snapshotting every ``k`` completed units".  :class:`ResumableLoop`
is that scaffolding once, parameterized over what a *unit* is (a trial,
a sweep point); subclasses supply the unit semantics and the state
dictionary, the loop supplies resume, periodic snapshots, and the
algorithm-mismatch guard.

(The RL searches use the richer stepwise protocol in
:func:`repro.runtime.supervisor.run_with_checkpoints` instead, because
their snapshots also carry the step history and a resume report — but
the payload shape and algorithm check are the same ones used here, via
:mod:`repro.runtime.checkpoint`.)
"""

from __future__ import annotations

from typing import Any, Mapping, Optional


class ResumableLoop:
    """Checkpointed execution of a loop of discrete, countable units.

    Subclasses implement:

    * :meth:`_completed_units` / :meth:`_target_units` — progress
      accounting (completed units must be derivable from restored
      state, so a resumed loop knows where it is);
    * :meth:`_advance` — run one unit;
    * :meth:`state_dict` / :meth:`load_state_dict` — everything the
      loop mutates, sufficient for bit-identical resume;
    * :meth:`build_result` — assemble the final result.
    """

    def _completed_units(self) -> int:
        raise NotImplementedError

    def _target_units(self) -> int:
        raise NotImplementedError

    def _advance(self) -> None:
        raise NotImplementedError

    def build_result(self) -> Any:
        raise NotImplementedError

    def state_dict(self) -> dict:
        raise NotImplementedError

    def load_state_dict(self, state: Mapping) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _checkpoint_payload(self) -> dict:
        from ...runtime.checkpoint import CHECKPOINT_FORMAT

        return {
            "format": CHECKPOINT_FORMAT,
            "algorithm": type(self).__name__,
            "search": self.state_dict(),
        }

    def _restore_latest(self, store: Any) -> bool:
        """Restore from the store's newest good snapshot, if any.

        Returns whether a snapshot was restored.  A snapshot taken by a
        different algorithm raises rather than silently loading a
        lookalike state dictionary.
        """
        from ...runtime.checkpoint import CheckpointError
        from ...runtime.recovery import resume_latest

        loaded = resume_latest(store)
        if loaded is None:
            return False
        algorithm = loaded.state.get("algorithm")
        if algorithm != type(self).__name__:
            raise CheckpointError(
                f"checkpoint was taken by {algorithm!r}, cannot "
                f"restore into {type(self).__name__}"
            )
        self.load_state_dict(loaded.state["search"])
        return True

    def run_resumable(
        self,
        store: Optional[Any] = None,
        checkpoint_every: int = 25,
        resume: bool = True,
    ) -> Any:
        """Run to the unit target, optionally checkpointing to ``store``."""
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if store is not None and resume:
            self._restore_latest(store)
        target = self._target_units()
        while self._completed_units() < target:
            self._advance()
            done = self._completed_units()
            if store is not None and done % checkpoint_every == 0 and done < target:
                store.save(done, self._checkpoint_payload())
        return self.build_result()
