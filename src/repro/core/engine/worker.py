"""Serializable stage tasks and the per-process worker context.

The engine's score stages historically captured live search objects in
closures — fine for threads, impossible for processes.  This module is
the picklable boundary: a :class:`StageTask` carries only plain data
(architectures, batch arrays, rng generators) plus a
:class:`RemoteContextRef` naming the shared-memory segments a worker
needs to rebuild the scoring context, and :func:`run_stage_task` is the
module-level entry point a process pool can import by qualified name.

Worker lifecycle:

* the pool initializer (:func:`initialize_worker`) marks the process as
  a worker and drops any state inherited over ``fork`` — contexts must
  be rebuilt from their refs, never reused from the parent's memory;
* the first task referencing a context **rehydrates** it: the pickled
  spec blob is loaded from shared memory, the supernet is rebuilt from
  its ``(class, config)`` factory (or unpickled), its parameter shapes
  are validated against the shared-weights layout, and the weights
  segment is attached — once per worker process, cached thereafter;
* before scoring, a task whose ``version`` is newer than the context's
  last-applied version copies the current weights out of shared memory
  (a torn-read-safe seqlock copy, see :mod:`.shm`).

When :func:`run_stage_task` runs on the *engine* thread instead — the
process backend degrades to a serial loop for single-task maps or
unpicklable supernets — the context ref resolves to the live supernet
registered at context creation, so no copy and no segment attachment
happens and results are trivially identical.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .shm import SharedBlob, SharedWeights, shared_memory_available

#: Stage-task kinds the worker knows how to run.
TASK_KINDS = ("quality_many", "quality", "quality_split")

#: Worker-side context cache capacity.  Tests and sweeps create many
#: short-lived searches against one long-lived pool; each context holds
#: a full supernet, so the cache stays small and evicts oldest-first.
CONTEXT_CACHE_CAPACITY = 4


@dataclass(frozen=True)
class RemoteContextRef:
    """Everything a worker needs to (re)build one scoring context.

    ``layout`` and segment names describe where the supernet spec and
    the current weights live in shared memory; ``version`` stamps the
    weight state this task must score against — a worker whose applied
    version is older refreshes from the segment before scoring.
    """

    context_id: str
    spec_segment: str
    weights_segment: Optional[str]
    layout: Tuple[Tuple[Tuple[int, ...], int, int], ...]
    version: int


@dataclass(frozen=True)
class StageTask:
    """One unit of remote stage work: pure data plus a context ref."""

    stage: str
    kind: str
    context: RemoteContextRef
    payload: Tuple[Any, ...]


# ----------------------------------------------------------------------
# Per-process state
# ----------------------------------------------------------------------
_IS_WORKER = False
#: worker-side rehydrated contexts, keyed by context_id (LRU)
_CONTEXTS: "OrderedDict[str, _WorkerContext]" = OrderedDict()
#: engine-side live contexts, for the serial-fallback path
_LOCAL: Dict[str, Any] = {}

_CONTEXT_COUNTER = itertools.count()


def initialize_worker() -> None:
    """Process-pool initializer: mark this process as a worker.

    Under the ``fork`` start method the child inherits the parent's
    module state — including live engine-side contexts whose supernets
    must NOT be scored against (their weights stop tracking the engine's
    the moment the fork happens).  Everything is dropped; contexts are
    rebuilt from their refs on first use.
    """
    global _IS_WORKER
    _IS_WORKER = True
    _CONTEXTS.clear()
    _LOCAL.clear()


def in_worker() -> bool:
    """Whether this process is a pool worker (vs the engine process)."""
    return _IS_WORKER


class _WorkerContext:
    """A rehydrated supernet plus its shared-weights attachment."""

    def __init__(self, supernet: Any, weights: Optional[SharedWeights]):
        self.supernet = supernet
        self.weights = weights
        self.param_arrays = [p.data for p in supernet.parameters()]
        self.applied_version = 0

    def sync_weights(self, version: int) -> None:
        if self.weights is not None and self.applied_version < version:
            self.applied_version = self.weights.copy_into(self.param_arrays)

    def close(self) -> None:
        if self.weights is not None:
            self.weights.close()


def build_supernet_from_spec(spec: Tuple[Any, ...]) -> Any:
    """Instantiate a supernet from its serialized spec.

    Specs come in two flavors: ``("factory", cls, args, kwargs)`` —
    rebuild by calling the class (the normal path; config objects are
    tiny and the constructor re-creates every parameter array, which
    the shared weights then overwrite) — and ``("pickle", supernet)``
    for hosts without a usable constructor spec.
    """
    kind = spec[0]
    if kind == "factory":
        _, cls, args, kwargs = spec
        return cls(*args, **kwargs)
    if kind == "pickle":
        return spec[1]
    raise ValueError(f"unknown supernet spec kind {kind!r}")


def _rehydrate(ref: RemoteContextRef) -> _WorkerContext:
    """Build this worker's copy of the context named by ``ref``."""
    blob = SharedBlob.attach(ref.spec_segment)
    try:
        spec = pickle.loads(blob.load())
    finally:
        blob.close()
    supernet = build_supernet_from_spec(spec)
    arrays = [p.data for p in supernet.parameters()]
    shapes = [tuple(a.shape) for a in arrays]
    expected = [tuple(shape) for shape, _, _ in ref.layout]
    if shapes != expected:
        raise RuntimeError(
            f"rehydrated supernet parameters {shapes} do not match the "
            f"shared-weights layout {expected}"
        )
    weights = None
    if ref.weights_segment is not None:
        weights = SharedWeights.attach(ref.weights_segment, list(ref.layout))
    return _WorkerContext(supernet, weights)


def _context_for(ref: RemoteContextRef) -> Any:
    """The scoring context for ``ref``: live on the engine thread,
    rehydrated-and-cached in a worker process."""
    if not _IS_WORKER:
        supernet = _LOCAL.get(ref.context_id)
        if supernet is None:
            raise RuntimeError(
                f"stage task references unknown local context {ref.context_id!r}"
            )
        return supernet
    ctx = _CONTEXTS.get(ref.context_id)
    if ctx is None:
        ctx = _rehydrate(ref)
        _CONTEXTS[ref.context_id] = ctx
        while len(_CONTEXTS) > CONTEXT_CACHE_CAPACITY:
            _, evicted = _CONTEXTS.popitem(last=False)
            evicted.close()
    else:
        _CONTEXTS.move_to_end(ref.context_id)
    ctx.sync_weights(ref.version)
    return ctx.supernet


def register_local_context(context_id: str, supernet: Any) -> None:
    """Engine-side registration backing the serial-fallback path."""
    _LOCAL[context_id] = supernet


def unregister_local_context(context_id: str) -> None:
    _LOCAL.pop(context_id, None)


def next_context_id() -> str:
    """A context id unique across processes and engine instances."""
    return f"{os.getpid()}-{next(_CONTEXT_COUNTER)}"


# ----------------------------------------------------------------------
# Task execution
# ----------------------------------------------------------------------
def execute_stage_kind(supernet: Any, kind: str, payload: Tuple[Any, ...]) -> Any:
    """Run one stage-task kind against ``supernet``.

    The single kind dispatch shared by every remote executor: process
    pools call it through :func:`run_stage_task`, distributed worker
    hosts call it directly against their rehydrated supernet.
    """
    if kind == "quality_many":
        arch, inputs_seq, labels_seq = payload
        return [float(v) for v in supernet.quality_many(arch, inputs_seq, labels_seq)]
    if kind == "quality":
        arch, inputs, labels = payload
        return float(supernet.quality(arch, inputs, labels))
    if kind == "quality_split":
        arch, inputs, labels, rng = payload
        return float(supernet.quality_split(arch, inputs, labels, rng))
    raise ValueError(f"unknown stage-task kind {kind!r}")


def run_stage_task(task: StageTask) -> Tuple[Any, float, int]:
    """Execute one stage task; returns ``(value, seconds, pid)``.

    The wall time is measured here, inside the worker, so the engine
    can account per-process ``span.worker`` durations without workers
    ever touching the metrics registry.
    """
    start = time.perf_counter()
    supernet = _context_for(task.context)
    value = execute_stage_kind(supernet, task.kind, task.payload)
    return value, time.perf_counter() - start, os.getpid()


# ----------------------------------------------------------------------
# Payload builders (the engine's closure-free stage decomposition)
# ----------------------------------------------------------------------
def quality_many_payloads(
    drawn: Sequence[Tuple[Any, Sequence[int]]],
    batches: Sequence[Any],
    groups: Sequence[List[int]],
) -> List[Tuple[Any, ...]]:
    """One grouped-scoring payload per unique architecture."""
    return [
        (
            drawn[positions[0]][0],
            [batches[i].inputs for i in positions],
            [batches[i].labels for i in positions],
        )
        for positions in groups
    ]


def quality_payloads(
    drawn: Sequence[Tuple[Any, Sequence[int]]], batch: Any
) -> List[Tuple[Any, ...]]:
    """One shared-batch scoring payload per candidate."""
    return [(arch, batch.inputs, batch.labels) for arch, _ in drawn]


def quality_split_payloads(
    drawn: Sequence[Tuple[Any, Sequence[int]]],
    batches: Sequence[Any],
    streams: Sequence[np.random.Generator],
) -> List[Tuple[Any, ...]]:
    """One split-rng scoring payload per candidate.

    ``batches`` aligns with ``drawn`` — pass ``[batch] * len(drawn)``
    for the shared-batch variant.  Generators pickle with their exact
    bit-generator state, so a worker draws the same stream the engine
    thread would have.
    """
    return [
        (arch, batch.inputs, batch.labels, stream)
        for (arch, _), batch, stream in zip(drawn, batches, streams)
    ]


def payload_nbytes(tasks: Sequence[StageTask]) -> int:
    """Approximate pickled payload volume of a fan-out, for telemetry.

    Counts ndarray bytes (the dominant term — batch arrays) found
    anywhere in the payloads; container and spec overhead is noise by
    comparison and not worth a pickle round-trip to measure.
    """
    total = 0

    def walk(value: Any) -> None:
        nonlocal total
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, dict):
            for item in value.values():
                walk(item)
        elif isinstance(value, (list, tuple)):
            for item in value:
                walk(item)

    for task in tasks:
        walk(task.payload)
    return total


# ----------------------------------------------------------------------
# Engine-side context construction
# ----------------------------------------------------------------------
def worker_spec_for(supernet: Any) -> Tuple[Any, ...]:
    """The serialized-rebuild spec of ``supernet``.

    Preference order: an explicit ``worker_spec()`` hook, then the
    ``(class, config)`` factory convention, then whole-object pickling
    as a last resort.
    """
    hook = getattr(supernet, "worker_spec", None)
    if hook is not None:
        return hook()
    config = getattr(supernet, "config", None)
    if config is not None:
        return ("factory", type(supernet), (config,), {})
    return ("pickle", supernet)


class RemoteShardContext:
    """Engine-side handle on one supernet published to workers.

    Owns the spec blob and weights segments, tracks the published
    version, and registers the live supernet for the serial-fallback
    path.  Built through :func:`build_remote_context`, which validates
    the whole round trip before any worker sees a task.
    """

    def __init__(
        self,
        supernet: Any,
        weights: SharedWeights,
        spec_blob: SharedBlob,
    ):
        self.supernet = supernet
        self.param_arrays = [p.data for p in supernet.parameters()]
        self.weights = weights
        self.spec_blob = spec_blob
        self.context_id = next_context_id()
        self.version = weights.version
        self._released = False
        register_local_context(self.context_id, supernet)

    def ref(self) -> RemoteContextRef:
        """A picklable reference stamped with the current version."""
        return RemoteContextRef(
            context_id=self.context_id,
            spec_segment=self.spec_blob.name,
            weights_segment=self.weights.name,
            layout=tuple(self.weights.layout),
            version=self.version,
        )

    def publish(self) -> int:
        """Push the live parameter arrays into the shared segment."""
        self.version = self.weights.publish(self.param_arrays)
        return self.version

    def fast_forward(self, version: int) -> int:
        """Republish past ``version`` (a checkpoint's recorded version).

        Keeps the version monotonic across crash/resume so a surviving
        worker whose applied version predates the crash still refreshes
        on its first post-resume task.
        """
        self.version = self.weights.publish(
            self.param_arrays, minimum_version=int(version) + 1
        )
        return self.version

    def release(self) -> None:
        """Tear down segments and the local registration (idempotent)."""
        if self._released:
            return
        self._released = True
        unregister_local_context(self.context_id)
        self.weights.release()
        self.spec_blob.release()


def build_remote_context(supernet: Any) -> Optional[RemoteShardContext]:
    """Publish ``supernet`` for worker processes, or ``None`` if it
    cannot travel.

    The probe is strict so failures surface *here*, at registration,
    rather than as a crashed worker mid-step: the spec must survive a
    pickle round trip and rebuild into a supernet whose parameter
    shapes and dtypes match the live one exactly (shared weights
    overwrite values, not structure).  Any failure keeps the search on
    the always-correct in-process path.
    """
    if not shared_memory_available():
        return None
    weights = None
    blob = None
    try:
        params = list(supernet.parameters())
        arrays = [p.data for p in params]
        spec_bytes = pickle.dumps(worker_spec_for(supernet))
        rebuilt = build_supernet_from_spec(pickle.loads(spec_bytes))
        rebuilt_arrays = [p.data for p in rebuilt.parameters()]
        if [(a.shape, a.dtype) for a in rebuilt_arrays] != [
            (a.shape, a.dtype) for a in arrays
        ]:
            return None
        weights = SharedWeights.create(arrays)
        blob = SharedBlob.create(spec_bytes)
        return RemoteShardContext(supernet, weights, blob)
    except Exception:
        if weights is not None:
            weights.release()
        if blob is not None:
            blob.release()
        return None
