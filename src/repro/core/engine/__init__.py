"""Composable search engine: shared step pipeline, pluggable backends.

See :mod:`repro.core.engine.engine` for the stage graph and
:mod:`repro.core.engine.backends` for the execution/determinism
contract.
"""

from .backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    MP_CONTEXT_ENV_VAR,
    WORKERS_ENV_VAR,
    BackendSpec,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    default_worker_count,
    process_start_method,
    resolve_backend,
    shutdown_pools,
)
from .worker import (
    RemoteContextRef,
    StageTask,
    in_worker,
    run_stage_task,
)
from .engine import (
    CandidateRecord,
    DrawnCandidate,
    PerformanceFn,
    SearchConfig,
    SearchEngine,
    SearchResult,
    StepRecord,
    SuperNetwork,
    group_unique_architectures,
)
from .loop import ResumableLoop

#: Distributed-backend names resolved lazily (PEP 562): importing
#: .distributed eagerly would pull the socket transport — and through it
#: repro.service — into every `import repro.core`, re-entering the
#: partially-initialized core package via runtime.checkpoint.
_DISTRIBUTED_EXPORTS = (
    "DIST_BIND_ENV_VAR",
    "DistributedBackend",
    "DistributedContext",
    "WorkerHost",
    "run_worker",
)


def __getattr__(name: str):
    if name in _DISTRIBUTED_EXPORTS:
        from . import distributed

        return getattr(distributed, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "DIST_BIND_ENV_VAR",
    "MP_CONTEXT_ENV_VAR",
    "WORKERS_ENV_VAR",
    "BackendSpec",
    "CandidateRecord",
    "DistributedBackend",
    "DistributedContext",
    "DrawnCandidate",
    "ExecutionBackend",
    "PerformanceFn",
    "ProcessPoolBackend",
    "RemoteContextRef",
    "ResumableLoop",
    "SearchConfig",
    "SearchEngine",
    "SearchResult",
    "SerialBackend",
    "StageTask",
    "StepRecord",
    "SuperNetwork",
    "ThreadPoolBackend",
    "WorkerHost",
    "default_worker_count",
    "group_unique_architectures",
    "in_worker",
    "process_start_method",
    "resolve_backend",
    "run_stage_task",
    "run_worker",
    "shutdown_pools",
]
