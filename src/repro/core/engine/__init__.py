"""Composable search engine: shared step pipeline, pluggable backends.

See :mod:`repro.core.engine.engine` for the stage graph and
:mod:`repro.core.engine.backends` for the execution/determinism
contract.
"""

from .backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    MP_CONTEXT_ENV_VAR,
    WORKERS_ENV_VAR,
    BackendSpec,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    default_worker_count,
    process_start_method,
    resolve_backend,
    shutdown_pools,
)
from .worker import (
    RemoteContextRef,
    StageTask,
    in_worker,
    run_stage_task,
)
from .engine import (
    CandidateRecord,
    DrawnCandidate,
    PerformanceFn,
    SearchConfig,
    SearchEngine,
    SearchResult,
    StepRecord,
    SuperNetwork,
    group_unique_architectures,
)
from .loop import ResumableLoop

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "MP_CONTEXT_ENV_VAR",
    "WORKERS_ENV_VAR",
    "BackendSpec",
    "CandidateRecord",
    "DrawnCandidate",
    "ExecutionBackend",
    "PerformanceFn",
    "ProcessPoolBackend",
    "RemoteContextRef",
    "ResumableLoop",
    "SearchConfig",
    "SearchEngine",
    "SearchResult",
    "SerialBackend",
    "StageTask",
    "StepRecord",
    "SuperNetwork",
    "ThreadPoolBackend",
    "default_worker_count",
    "group_unique_architectures",
    "in_worker",
    "process_start_method",
    "resolve_backend",
    "run_stage_task",
    "shutdown_pools",
]
