"""Composable search engine: shared step pipeline, pluggable backends.

See :mod:`repro.core.engine.engine` for the stage graph and
:mod:`repro.core.engine.backends` for the execution/determinism
contract.
"""

from .backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    WORKERS_ENV_VAR,
    BackendSpec,
    ExecutionBackend,
    SerialBackend,
    ThreadPoolBackend,
    default_worker_count,
    resolve_backend,
)
from .engine import (
    CandidateRecord,
    DrawnCandidate,
    PerformanceFn,
    SearchConfig,
    SearchEngine,
    SearchResult,
    StepRecord,
    SuperNetwork,
    group_unique_architectures,
)
from .loop import ResumableLoop

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "WORKERS_ENV_VAR",
    "BackendSpec",
    "CandidateRecord",
    "DrawnCandidate",
    "ExecutionBackend",
    "PerformanceFn",
    "ResumableLoop",
    "SearchConfig",
    "SearchEngine",
    "SearchResult",
    "SerialBackend",
    "StepRecord",
    "SuperNetwork",
    "ThreadPoolBackend",
    "default_worker_count",
    "group_unique_architectures",
    "resolve_backend",
]
