"""The shared search-step engine behind both RL search strategies.

Historically :class:`~repro.core.search.SingleStepSearch` and
:class:`~repro.core.search.TunasSearch` were two ~250-line monoliths
that each re-implemented the same pipeline — sampling, shard scoring,
pricing, reward assembly, policy and weight updates — with small,
easy-to-diverge differences.  This module factors that pipeline into a
:class:`SearchEngine` base class of explicit, individually-timed stages

    ``sample -> fetch_shard -> score -> price -> reward ->
    policy_update -> weight_update``

so a strategy is reduced to *stage configuration*: which stages run, in
which order, on which data stream (TuNAS alternates a weight step on the
train split with a policy step on the validation split; the H2O
single-step strategy runs one unified step on fresh production traffic).

Per-core work — shard scoring, per-core weight-gradient computation,
cache-miss pricing — fans out through an
:class:`~repro.core.engine.backends.ExecutionBackend`.  Three rules keep
every backend bit-identical to serial execution:

* only scheduling-independent tasks are fanned out: deterministic pure
  functions (stacked supernet passes, parallel-safe performance
  functions) or tasks drawing from deterministically split rng streams
  (:meth:`ExecutionBackend.rng_streams`);
* reductions are order-preserving — per-core results are gathered in
  shard order, so means, REINFORCE updates, and gradient accumulation
  see the same operand order regardless of completion order;
* everything stateful that is *not* scheduling-independent (stochastic
  quality signals without split-rng support, autograd ``backward`` into
  shared parameters, pipeline bookkeeping, the controller) stays on the
  engine thread in strict shard order.

The engine also owns the stepwise checkpoint protocol (``step()`` /
``build_result()`` / ``state_dict()``) that the fault-tolerant runtime
drives; backend worker/rng-split state rides in every snapshot so a
crash-resumed run keeps its bit-identity guarantee.
"""

from __future__ import annotations

import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ...data.batch import Batch
from ...searchspace.base import Architecture, SearchSpace
from ...supernet.batching import StackedScoring
from ..controller import ReinforceController
from ..eval_runtime import (
    STAGE_FETCH_SHARD,
    STAGE_POLICY_UPDATE,
    STAGE_PRICE,
    STAGE_REWARD,
    STAGE_SAMPLE,
    STAGE_SCORE,
    STAGE_WEIGHT_UPDATE,
    ArchKey,
    EvalRuntime,
    EvalRuntimeStats,
    arch_key,
)
from ..reward import RewardFunction
from .backends import BackendSpec, ExecutionBackend, resolve_backend
from .worker import (
    StageTask,
    payload_nbytes,
    quality_many_payloads,
    quality_payloads,
    quality_split_payloads,
    run_stage_task,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ...nn import Optimizer
    from ...telemetry import Telemetry

PerformanceFn = Callable[[Architecture], Mapping[str, float]]

#: One sampled candidate: (architecture, decision-index vector).
DrawnCandidate = Tuple[Architecture, Sequence[int]]


class SuperNetwork(Protocol):
    """What the searches need from a super-network."""

    def quality(self, arch: Architecture, inputs, labels) -> float: ...

    def loss(self, arch: Architecture, inputs, labels): ...

    def parameters(self): ...

    def zero_grad(self) -> None: ...


def group_unique_architectures(
    drawn: Sequence[DrawnCandidate],
) -> List[List[int]]:
    """Shard positions grouped by sampled architecture, first-seen order.

    Late in a search the policy has converged and most of the
    ``num_cores`` cores sample the *same* architecture; grouping them
    lets the score and weight-update stages run one super-network pass
    per unique architecture instead of one per core — and gives the
    execution backend its unit of fan-out.
    """
    groups: "OrderedDict[ArchKey, List[int]]" = OrderedDict()
    for position, (_, indices) in enumerate(drawn):
        groups.setdefault(arch_key(indices), []).append(position)
    return list(groups.values())


@dataclass
class CandidateRecord:
    """One evaluated candidate within one search step."""

    architecture: Architecture
    quality: float
    metrics: Dict[str, float]
    reward: float


@dataclass
class StepRecord:
    """Aggregate view of one search step."""

    step: int
    mean_reward: float
    mean_quality: float
    policy_entropy: float
    candidates: List[CandidateRecord] = field(default_factory=list)


@dataclass
class SearchResult:
    """Outcome of a completed search.

    ``eval_stats`` carries the evaluation runtime's instrumentation:
    cache hit/miss counters and per-stage wall time
    (sample/fetch_shard/score/price/reward/policy_update/weight_update).
    """

    final_architecture: Architecture
    history: List[StepRecord]
    batches_used: int
    eval_stats: Optional[EvalRuntimeStats] = None

    @property
    def all_candidates(self) -> List[CandidateRecord]:
        return [c for step in self.history for c in step.candidates]

    def rewards(self) -> np.ndarray:
        return np.array([s.mean_reward for s in self.history])

    def entropies(self) -> np.ndarray:
        return np.array([s.policy_entropy for s in self.history])


@dataclass(frozen=True)
class SearchConfig:
    """Knobs shared by both search algorithms."""

    steps: int = 100
    num_cores: int = 4  # parallel accelerators (single-step search only)
    policy_lr: float = 0.3
    weight_lr: float = 0.005
    policy_entropy_coef: float = 0.0  # exploration bonus for the controller
    warmup_steps: int = 10  # weight-only steps before policy updates begin
    record_candidates: bool = True
    seed: int = 0
    use_cache: bool = True  # memoize performance_fn by decision indices
    cache_size: int = 4096  # LRU capacity of the metrics cache
    #: run one supernet pass per *unique* sampled architecture by
    #: stacking same-arch core batches (needs a supernet implementing
    #: the StackedScoring protocol, e.g. via StackedScoringMixin; other
    #: supernets keep the per-core path)
    group_unique: bool = True
    #: execution backend for per-core fan-out: an
    #: :class:`ExecutionBackend` instance, a name (``"serial"`` /
    #: ``"threads"`` / ``"processes"``), or ``None`` to consult
    #: ``$REPRO_BACKEND`` and default to serial.  All backends are
    #: bit-identical by contract.
    backend: Optional[Union[str, ExecutionBackend]] = field(
        default=None, compare=False
    )
    #: worker count for pooled backends (``None``: ``$REPRO_WORKERS``,
    #: then min(4, cores))
    workers: Optional[int] = None
    #: optional learning-rate schedule for the weight optimizer (any
    #: object with ``multiplier(step)``, e.g.
    #: :class:`repro.nn.CosineSchedule`).  When set, the engine wraps
    #: its Adam in a :class:`repro.nn.ScheduledOptimizer`, whose
    #: schedule position rides in every checkpoint snapshot.
    weight_schedule: Optional[Any] = field(default=None, compare=False)
    #: shared :class:`repro.telemetry.Telemetry` handle; when set, the
    #: search records per-step spans, reward/entropy/penalty gauges and
    #: step events, attaches it to its eval runtime and pipeline, and
    #: includes run-scoped counter state in checkpoint snapshots
    telemetry: Optional["Telemetry"] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.steps < 1 or self.num_cores < 1:
            raise ValueError("steps and num_cores must be >= 1")
        if self.warmup_steps < 0:
            raise ValueError("warmup_steps must be >= 0")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")


def _record_step_telemetry(
    telemetry: Optional["Telemetry"], record: StepRecord
) -> None:
    """Account one completed step to the shared telemetry (no-op if off).

    ``search.penalty`` is the mean cost the reward function charged the
    shard (quality minus reward) — positive when hardware targets are
    being missed, ~0 once the policy prices candidates on target.
    """
    if telemetry is None:
        return
    telemetry.counter("search.steps").inc()
    telemetry.gauge("search.reward").set(record.mean_reward)
    telemetry.gauge("search.quality").set(record.mean_quality)
    telemetry.gauge("search.entropy").set(record.policy_entropy)
    telemetry.gauge("search.penalty").set(record.mean_quality - record.mean_reward)
    telemetry.event(
        "search.step",
        step=record.step,
        reward=record.mean_reward,
        quality=record.mean_quality,
        entropy=record.policy_entropy,
    )


class SearchEngine:
    """Composable step pipeline shared by every RL search strategy.

    Subclasses implement :meth:`_step` by composing the stage primitives
    below and :meth:`_batches_used` for result accounting; everything
    else — construction, telemetry wiring, the stepwise checkpoint
    protocol, and the backend fan-out discipline — is shared here.
    """

    def __init__(
        self,
        space: SearchSpace,
        supernet: SuperNetwork,
        pipeline: Any,
        reward_fn: RewardFunction,
        performance_fn: PerformanceFn,
        config: Optional[SearchConfig] = None,
        eval_runtime: Optional[EvalRuntime] = None,
    ):
        config = config if config is not None else SearchConfig()
        self.space = space
        self.supernet = supernet
        self.pipeline = pipeline
        self.reward_fn = reward_fn
        self.performance_fn = performance_fn
        self.config = config
        self.telemetry = config.telemetry
        self.backend = resolve_backend(
            config.backend, workers=config.workers, seed=config.seed
        )
        self.runtime = eval_runtime or EvalRuntime(
            performance_fn,
            space=space,
            use_cache=config.use_cache,
            cache_capacity=config.cache_size,
        )
        self.runtime.attach_backend(self.backend)
        if self.telemetry is not None:
            self.runtime.attach_telemetry(self.telemetry)
            self.pipeline.attach_telemetry(self.telemetry)
            self.telemetry.gauge("engine.workers").set(
                self.backend.workers, backend=self.backend.name
            )
        self.controller = ReinforceController(
            space,
            learning_rate=config.policy_lr,
            entropy_coef=config.policy_entropy_coef,
            seed=config.seed,
        )
        from ...nn import Adam, ScheduledOptimizer

        self._optimizer: "Optimizer" = Adam(
            supernet.parameters(), lr=config.weight_lr
        )
        if config.weight_schedule is not None:
            self._optimizer = ScheduledOptimizer(
                self._optimizer, config.weight_schedule
            )
        self._warmup_rng = np.random.default_rng(config.seed + 1)
        self._tape_totals: Dict[str, int] = {}
        self._worker_loss_total = 0
        # Remote backends (process pools) score against a supernet each
        # worker rehydrates from shared memory; publishing happens here,
        # lazily, only when the weights actually changed since the last
        # fan-out.  Backends that cannot host this supernet remotely
        # return None and every stage stays on the in-process path.
        self._remote_ctx = None
        self._weights_dirty = False
        register_context = getattr(self.backend, "register_context", None)
        if register_context is not None:
            ctx = register_context(supernet)
            if ctx is not None:
                self._remote_ctx = ctx
                weakref.finalize(self, ctx.release)

    # ------------------------------------------------------------------
    # Stepwise driver protocol (checkpointed execution)
    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        history = [self.step(step) for step in range(self.config.steps)]
        return self.build_result(history)

    def step(self, step: int) -> StepRecord:
        """Run one search step; the unit the supervisor checkpoints at."""
        if self.telemetry is None:
            return self._step(step)
        with self.telemetry.span("step"):
            record = self._step(step)
        _record_step_telemetry(self.telemetry, record)
        self._record_tape_telemetry()
        self._record_backend_telemetry()
        return record

    def _record_backend_telemetry(self) -> None:
        """Mirror the backend's worker-loss counter into telemetry.

        Worker losses are real external events (a process died), not
        replayable search state, so they land on the churn-scoped
        ``supervisor.`` prefix — like restarts and testbed retries, they
        must keep counting across a crash/resume rather than roll back
        with the snapshot.
        """
        hosts = getattr(self.backend, "host_count", None)
        if hosts is not None:
            # Connected worker hosts is live membership, not replayable
            # state: a gauge, refreshed every step (hosts join and drop
            # at any time under the distributed backend).
            self.telemetry.gauge("engine.hosts").set(
                float(hosts), backend=self.backend.name
            )
        losses = getattr(self.backend, "worker_losses", None)
        if losses is None:
            return
        delta = int(losses) - self._worker_loss_total
        if delta > 0:
            self.telemetry.counter("supervisor.worker_losses").inc(
                delta, backend=self.backend.name
            )
        self._worker_loss_total = int(losses)

    def _record_tape_telemetry(self) -> None:
        """Mirror the supernet's tape-cache counters into telemetry.

        The cache's counters are process-lifetime totals; the engine
        publishes per-step deltas on the engine thread so workers never
        touch the metrics registry.  The ``nn.`` prefix is churn-scoped
        (the cache is rebuilt empty on restart), so these counters stay
        out of checkpoint identity.
        """
        tape_stats = getattr(self.supernet, "tape_stats", None)
        if tape_stats is None:
            return
        stats = tape_stats()
        for key in ("hits", "misses", "evictions"):
            total = int(stats.get(key, 0))
            delta = total - self._tape_totals.get(key, 0)
            if delta > 0:
                self.telemetry.counter(f"nn.tape.{key}").inc(delta)
            self._tape_totals[key] = total
        self.telemetry.gauge("nn.tape.size").set(float(stats.get("size", 0)))

    def build_result(self, history: Sequence[StepRecord]) -> SearchResult:
        """Assemble the result from externally-driven step records."""
        return SearchResult(
            final_architecture=self.controller.best_architecture(),
            history=list(history),
            batches_used=self._batches_used(),
            eval_stats=self.runtime.stats(),
        )

    def _step(self, step: int) -> StepRecord:
        raise NotImplementedError

    def _batches_used(self) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything this search mutates, for bit-identical resume."""
        from ...runtime.checkpoint import supernet_state

        state = {
            "controller": self.controller.state_dict(),
            "optimizer": self._optimizer.state_dict(),
            "supernet": supernet_state(self.supernet),
            "warmup_rng": self._warmup_rng.bit_generator.state,
            "pipeline": self.pipeline.state_dict(),
            "runtime": self.runtime.export_state(),
            "backend": self.backend.state_dict(),
        }
        if self.telemetry is not None:
            state["telemetry"] = self.telemetry.export_state()
        return state

    def load_state_dict(self, state: Mapping) -> None:
        from ...runtime.checkpoint import restore_supernet_state

        self.controller.load_state_dict(state["controller"])
        self._optimizer.load_state_dict(state["optimizer"])
        restore_supernet_state(self.supernet, state["supernet"])
        self._warmup_rng.bit_generator.state = state["warmup_rng"]
        self.pipeline.load_state_dict(state["pipeline"])
        self.runtime.import_state(state["runtime"])
        backend_state = state.get("backend")
        if backend_state is not None:  # absent in pre-engine snapshots
            self.backend.load_state_dict(backend_state)
        # The restored weights must reach workers before the next remote
        # fan-out (the backend's own load may have fast-forwarded the
        # shared segment already; one extra publish is cheap and safe).
        self._weights_dirty = True
        telemetry_state = state.get("telemetry")
        if self.telemetry is not None and telemetry_state is not None:
            self.telemetry.import_state(telemetry_state)

    # ------------------------------------------------------------------
    # Backend fan-out
    # ------------------------------------------------------------------
    def _fan_out(self, stage: str, fn: Callable[[Any], Any], items: Sequence) -> List:
        """Run per-core tasks through the backend, order-preserving.

        Tasks handed here must be scheduling-independent (see the module
        docstring).  Per-task wall time is measured inside the worker
        (an index-slotted write, safe under concurrent execution) and
        accounted to the ``span.worker`` histogram after the gather, on
        the engine thread — the metrics registry itself is not touched
        from workers.
        """
        items = list(items)
        if not items:
            return []
        telemetry = self.telemetry
        if telemetry is None:
            return self.backend.map(fn, items)
        durations = [0.0] * len(items)

        def timed_task(slot_item: Tuple[int, Any]) -> Any:
            slot, item = slot_item
            start = time.perf_counter()
            result = fn(item)
            durations[slot] = time.perf_counter() - start
            return result

        results = self.backend.map(timed_task, list(enumerate(items)))
        telemetry.counter("engine.tasks").inc(
            len(items), stage=stage, backend=self.backend.name
        )
        for seconds in durations:
            telemetry.trace.record(
                "worker", seconds, stage=stage, backend=self.backend.name
            )
        return results

    # ------------------------------------------------------------------
    # Remote (cross-process) fan-out
    # ------------------------------------------------------------------
    def _remote_active(self) -> bool:
        """Whether score stages should ship tasks to worker processes.

        Demands an exact identity match between the registered context's
        supernet and the engine's current one: anything that swapped the
        supernet after construction (fault-injection proxies, test
        doubles) silently falls back to the in-process path, which
        executes whatever object is live.
        """
        ctx = self._remote_ctx
        return (
            ctx is not None
            and getattr(self.backend, "remote", False)
            and ctx.supernet is self.supernet
        )

    def _sync_remote_weights(self) -> None:
        if self._weights_dirty:
            self._remote_ctx.publish()
            self._weights_dirty = False

    def _fan_out_tasks(
        self, stage: str, kind: str, payloads: Sequence[Tuple[Any, ...]]
    ) -> List[Any]:
        """Ship closure-free stage tasks through the backend.

        The current weights are published to the shared segment first
        (if dirty), and every task carries the resulting version so no
        worker scores against stale parameters.  Workers time themselves
        and report their pid; accounting happens here on the engine
        thread, including the pickled-batch IPC volume estimate.
        """
        self._sync_remote_weights()
        ref = self._remote_ctx.ref()
        tasks = [
            StageTask(stage=stage, kind=kind, context=ref, payload=payload)
            for payload in payloads
        ]
        results = self.backend.map(run_stage_task, tasks)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.counter("engine.tasks").inc(
                len(tasks), stage=stage, backend=self.backend.name
            )
            telemetry.counter("engine.ipc.bytes").inc(
                payload_nbytes(tasks), backend=self.backend.name
            )
            for _, seconds, worker in results:
                # Process workers report their pid (int); distributed
                # workers report a host-qualified worker id (str), so
                # spans aggregate per host across the cluster.
                label = {"pid": worker} if isinstance(worker, int) else {"host": worker}
                telemetry.trace.record(
                    "worker",
                    seconds,
                    stage=stage,
                    backend=self.backend.name,
                    **label,
                )
        return [value for value, _, _ in results]

    # ------------------------------------------------------------------
    # Stage primitives
    # ------------------------------------------------------------------
    def sample_shard(self, count: int, warming_up: bool) -> List[DrawnCandidate]:
        """Stage *sample*: draw the shard's candidates.

        Warmup steps draw uniformly from the search space (weight-only
        training); afterwards the shard comes from one vectorized policy
        draw.  Both paths consume their rng streams on the engine thread
        so sampling is identical across backends.
        """
        if warming_up:
            drawn = []
            for _ in range(count):
                arch = self.space.sample(self._warmup_rng)
                drawn.append((arch, self.space.indices_of(arch)))
            return drawn
        return self.controller.sample_many(count)

    def score_shard(
        self,
        drawn: Sequence[DrawnCandidate],
        batches: Sequence[Batch],
        groups: Optional[List[List[int]]],
    ) -> List[float]:
        """Stage *score*: per-core qualities, each core on its own batch.

        Supernets implementing :class:`~repro.supernet.StackedScoring`
        run one deterministic stacked pass per unique architecture,
        fanned out across the backend's workers.  Supernets exposing
        ``quality_split`` (stochastic signals with split-rng support)
        fan out per core with deterministic per-task rng streams.
        Everything else scores serially, in core order, so stochastic
        quality signals consume their rng streams exactly as the
        sequential implementation did.
        """
        quality_split = getattr(self.supernet, "quality_split", None)
        if quality_split is not None:
            streams = self.backend.rng_streams(len(drawn))
            if self._remote_active():
                return [
                    float(v)
                    for v in self._fan_out_tasks(
                        STAGE_SCORE,
                        "quality_split",
                        quality_split_payloads(drawn, batches, streams),
                    )
                ]
            return [
                float(v)
                for v in self._fan_out(
                    STAGE_SCORE,
                    lambda task: quality_split(
                        task[0][0], task[1].inputs, task[1].labels, task[2]
                    ),
                    list(zip(drawn, batches, streams)),
                )
            ]
        if groups is None or not isinstance(self.supernet, StackedScoring):
            return [
                self.supernet.quality(arch, batch.inputs, batch.labels)
                for batch, (arch, _) in zip(batches, drawn)
            ]
        if self._remote_active():
            per_group = self._fan_out_tasks(
                STAGE_SCORE,
                "quality_many",
                quality_many_payloads(drawn, batches, groups),
            )
            qualities_remote: List[float] = [0.0] * len(drawn)
            for positions, values in zip(groups, per_group):
                for position, value in zip(positions, values):
                    qualities_remote[position] = float(value)
            return qualities_remote
        quality_many = self.supernet.quality_many

        def score_group(positions: List[int]) -> List[float]:
            arch = drawn[positions[0]][0]
            return quality_many(
                arch,
                [batches[i].inputs for i in positions],
                [batches[i].labels for i in positions],
            )
        per_group = self._fan_out(STAGE_SCORE, score_group, groups)
        qualities: List[float] = [0.0] * len(drawn)
        for positions, values in zip(groups, per_group):
            for position, value in zip(positions, values):
                qualities[position] = float(value)
        return qualities

    def score_on_batch(
        self, drawn: Sequence[DrawnCandidate], batch: Batch
    ) -> List[float]:
        """Stage *score*, shared-batch variant: every candidate on one
        validation batch (the TuNAS policy step).

        Deterministic supernets fan out one task per candidate;
        split-rng supernets get per-task streams; stochastic supernets
        without split support stay serial in shard order.
        """
        quality_split = getattr(self.supernet, "quality_split", None)
        if quality_split is not None:
            streams = self.backend.rng_streams(len(drawn))
            if self._remote_active():
                return [
                    float(v)
                    for v in self._fan_out_tasks(
                        STAGE_SCORE,
                        "quality_split",
                        quality_split_payloads(
                            drawn, [batch] * len(drawn), streams
                        ),
                    )
                ]
            return [
                float(v)
                for v in self._fan_out(
                    STAGE_SCORE,
                    lambda task: quality_split(
                        task[0][0], batch.inputs, batch.labels, task[1]
                    ),
                    list(zip(drawn, streams)),
                )
            ]
        if isinstance(self.supernet, StackedScoring):
            if self._remote_active():
                return [
                    float(v)
                    for v in self._fan_out_tasks(
                        STAGE_SCORE, "quality", quality_payloads(drawn, batch)
                    )
                ]
            quality = self.supernet.quality
            return self._fan_out(
                STAGE_SCORE,
                lambda cand: quality(cand[0], batch.inputs, batch.labels),
                drawn,
            )
        return [
            self.supernet.quality(cand, batch.inputs, batch.labels)
            for cand, _ in drawn
        ]

    def price_shard(
        self, drawn: Sequence[DrawnCandidate]
    ) -> List[Dict[str, float]]:
        """Stage *price*: the whole shard through the memoized runtime.

        Cache misses share one vectorized evaluation when the
        performance fn is batchable, or fan out across the backend's
        workers when it declares itself ``parallel_safe``.
        """
        return self.runtime.price_many(drawn)

    def assemble_candidates(
        self,
        drawn: Sequence[DrawnCandidate],
        qualities: Sequence[float],
        all_metrics: Sequence[Mapping[str, float]],
    ) -> Tuple[List[CandidateRecord], List[Tuple[np.ndarray, float]]]:
        """Stage *reward*: fold qualities and metrics into rewards.

        Returns the step's candidate records plus the ``(indices,
        reward)`` pairs the policy update consumes.
        """
        candidates: List[CandidateRecord] = []
        samples: List[Tuple[np.ndarray, float]] = []
        for (arch, indices), quality, metrics in zip(drawn, qualities, all_metrics):
            reward = self.reward_fn(quality, metrics)
            samples.append((indices, reward))
            candidates.append(CandidateRecord(arch, quality, dict(metrics), reward))
        return candidates, samples

    def policy_update(self, samples: Sequence[Tuple[np.ndarray, float]]) -> None:
        """Stage *policy_update*: one cross-shard REINFORCE step.

        Always on the engine thread — the update must see the gathered
        shard in order, and stays bit-identical across backends because
        every input to it does.
        """
        self.controller.update(samples)

    def accumulate_shard_gradient(
        self,
        drawn: Sequence[DrawnCandidate],
        batches: Sequence[Batch],
        groups: Optional[List[List[int]]],
    ) -> None:
        """Stage *weight_update* (gradient half): cross-shard gradients.

        The sequential path backprops ``loss_i / num_cores`` per core;
        the grouped path backprops ``loss_many * (group_size /
        num_cores)`` per unique architecture — the same gradient in
        ``len(groups)`` supernet passes.  With a parallel backend the
        *forward* graphs build concurrently (pure reads of the shared
        weights), while every ``backward`` — which accumulates into the
        shared parameter gradients — runs on the engine thread in group
        order, so the float accumulation order matches serial execution
        exactly.
        """
        num_cores = self.config.num_cores
        if groups is None or not isinstance(self.supernet, StackedScoring):
            for batch, (arch, _) in zip(batches, drawn):
                loss = self.supernet.loss(arch, batch.inputs, batch.labels)
                # Seeding backward with the scale replaces the old
                # ``(loss * scale).backward()``: the scale node's
                # backward multiplied the unit seed by the same float,
                # so the seeded gradient is bit-identical — and the
                # backward stays on the loss node, where a compiled
                # graph's cached gradient order applies.
                loss.backward(np.asarray(1.0 / num_cores))
            return
        loss_many = self.supernet.loss_many

        def build_group_loss(positions: List[int]):
            arch = drawn[positions[0]][0]
            loss = loss_many(
                arch,
                [batches[i].inputs for i in positions],
                [batches[i].labels for i in positions],
            )
            return loss, len(positions) / num_cores

        for loss, scale in self._fan_out(
            STAGE_WEIGHT_UPDATE, build_group_loss, groups
        ):
            loss.backward(np.asarray(scale))

    def optimizer_step(self) -> None:
        """Apply the accumulated weight gradients.

        Every weight update must come through here: the dirty flag is
        what tells the remote fan-out path to republish the shared
        weights segment before the next shard is scored in worker
        processes.
        """
        self._optimizer.step()
        self._weights_dirty = True

    def train_weights_on(self, arch: Architecture, batch: Batch) -> None:
        """Stage *weight_update*, single-candidate variant (TuNAS train
        split): one forward/backward plus an optimizer step."""
        self.supernet.zero_grad()
        self.supernet.loss(arch, batch.inputs, batch.labels).backward()
        self.optimizer_step()

    def make_record(
        self, step: int, candidates: Sequence[CandidateRecord]
    ) -> StepRecord:
        """Aggregate one completed step into its history record."""
        return StepRecord(
            step=step,
            mean_reward=float(np.mean([c.reward for c in candidates])),
            mean_quality=float(np.mean([c.quality for c in candidates])),
            policy_entropy=self.controller.entropy(),
            candidates=list(candidates) if self.config.record_candidates else [],
        )
