"""Pluggable execution backends for the search engine.

The paper's first pillar is a *massively parallel* single-step search:
``N`` accelerator cores score one shard of candidates concurrently,
then the policy and the shared weights take one cross-shard update
(Section 4).  The engine (:mod:`repro.core.engine.engine`) expresses
every per-core computation as an order-preserving ``map`` over shard
tasks, and this module supplies the things that map runs on:

* :class:`SerialBackend` — the reference executor: one task after the
  other on the calling thread.  The semantics every other backend must
  reproduce bit-for-bit.
* :class:`ThreadPoolBackend` — fans tasks out across a shared worker
  pool.  Order-preserving reduction (results come back in task order,
  never completion order) plus deterministic rng-stream splitting make
  its results bit-identical to the serial backend: parallelism changes
  wall-clock, never numerics.

**Determinism contract.**  A backend may only be handed tasks whose
outputs are independent of scheduling: pure functions of their inputs,
or functions whose randomness comes from :meth:`rng_streams`.  Streams
are split per *task* (not per worker thread) from a counter-stamped
:class:`numpy.random.SeedSequence`, so task ``i`` of split ``k`` draws
the same stream no matter how many workers exist or which thread runs
it.  The split counter is part of :meth:`state_dict`, rides in search
checkpoints, and restores on resume — crash-resumed runs replay the
same streams an uninterrupted run would have drawn.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, TypeVar, Union

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

#: Environment variables consulted when a search does not pin a backend
#: explicitly — the CI matrix runs the whole test suite under
#: ``REPRO_BACKEND=threads`` to prove backend equivalence at scale.
BACKEND_ENV_VAR = "REPRO_BACKEND"
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Spec names accepted by :func:`resolve_backend`.
BACKEND_NAMES = ("serial", "threads")


class ExecutionBackend(ABC):
    """Order-preserving task executor with deterministic rng splitting."""

    #: short name used in CLI flags, telemetry labels, and snapshots
    name: str = "abstract"

    def __init__(self, seed: int = 0, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._seed = int(seed)
        #: how many stream splits this backend has handed out; part of
        #: the checkpoint state so resumed runs continue the sequence
        self._rng_spawns = 0

    # ------------------------------------------------------------------
    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in item order.

        The reduction is order-preserving by contract: ``result[i]``
        corresponds to ``items[i]`` regardless of which worker finished
        first.  Exceptions raised by any task propagate to the caller.
        """

    def rng_streams(self, count: int) -> List[np.random.Generator]:
        """``count`` independent generators for one fan-out, split
        deterministically.

        Stream ``i`` depends only on ``(seed, split_counter, i)`` — not
        on worker count, thread identity, or scheduling — so serial and
        pooled execution consume identical randomness.  Each call
        advances the split counter (a new fan-out must not reuse the
        previous fan-out's streams).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        sequence = np.random.SeedSequence(entropy=(self._seed, self._rng_spawns))
        self._rng_spawns += 1
        return [np.random.default_rng(child) for child in sequence.spawn(count)]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the backend's replayable state.

        ``name``/``workers`` are recorded for observability only — the
        equivalence contract makes backends interchangeable across a
        resume — while ``rng_spawns`` must be restored for the stream
        sequence to continue bit-identically.
        """
        return {
            "name": self.name,
            "workers": int(self.workers),
            "rng_spawns": int(self._rng_spawns),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output (the split counter)."""
        self._rng_spawns = int(state["rng_spawns"])

    def close(self) -> None:
        """Release any pooled resources (no-op for shared pools)."""


class SerialBackend(ExecutionBackend):
    """Run every task on the calling thread, in order.

    This is the reference semantics: no concurrency, no reordering,
    exactly the execution the original sequential step loop performed.
    """

    name = "serial"

    def __init__(self, seed: int = 0):
        super().__init__(seed=seed, workers=1)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


# Worker pools are shared per worker-count across backend instances:
# tests and sweeps construct hundreds of short-lived searches, and
# spinning an executor up and down for each would dominate their cost.
_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-engine-{workers}"
            )
            _POOLS[workers] = pool
        return pool


def default_worker_count() -> int:
    """Worker count when none is requested: min(4, available cores)."""
    return max(1, min(4, os.cpu_count() or 1))


class ThreadPoolBackend(ExecutionBackend):
    """Fan tasks out across a shared thread pool, gathering in order.

    NumPy releases the GIL inside its kernels and candidate pricing is
    frequently latency- rather than compute-bound (simulator calls,
    testbed measurements), so threads buy real step-time parallelism
    without the serialization cost a process pool would add for
    shard-sized payloads.  ``Executor.map`` yields results in submission
    order, which is what keeps reductions (and therefore policy and
    weight updates) bit-identical to :class:`SerialBackend`.
    """

    name = "threads"

    def __init__(self, workers: Optional[int] = None, seed: int = 0):
        super().__init__(
            seed=seed,
            workers=workers if workers is not None else default_worker_count(),
        )

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        return list(_shared_pool(self.workers).map(fn, items))


BackendSpec = Union[None, str, ExecutionBackend]


def resolve_backend(
    spec: BackendSpec = None,
    workers: Optional[int] = None,
    seed: int = 0,
) -> ExecutionBackend:
    """Build the execution backend a search asked for.

    ``spec`` may be an :class:`ExecutionBackend` instance (returned as
    is), a name from :data:`BACKEND_NAMES`, or ``None`` — in which case
    the :envvar:`REPRO_BACKEND` environment variable decides, defaulting
    to serial.  ``workers`` falls back to :envvar:`REPRO_WORKERS`, then
    to :func:`default_worker_count`.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "serial"
    if workers is None:
        env_workers = os.environ.get(WORKERS_ENV_VAR)
        workers = int(env_workers) if env_workers else None
    spec = str(spec).lower()
    if spec == "serial":
        return SerialBackend(seed=seed)
    if spec in ("threads", "thread", "threadpool"):
        return ThreadPoolBackend(workers=workers, seed=seed)
    raise ValueError(
        f"unknown execution backend {spec!r}; expected one of {BACKEND_NAMES}"
    )
