"""Pluggable execution backends for the search engine.

The paper's first pillar is a *massively parallel* single-step search:
``N`` accelerator cores score one shard of candidates concurrently,
then the policy and the shared weights take one cross-shard update
(Section 4).  The engine (:mod:`repro.core.engine.engine`) expresses
every per-core computation as an order-preserving ``map`` over shard
tasks, and this module supplies the things that map runs on:

* :class:`SerialBackend` — the reference executor: one task after the
  other on the calling thread.  The semantics every other backend must
  reproduce bit-for-bit.
* :class:`ThreadPoolBackend` — fans tasks out across a shared worker
  pool.  Cheap (no serialization) but the GIL caps it on CPU-bound
  scoring; best when tasks are latency-bound or release the GIL in
  NumPy kernels.
* :class:`ProcessPoolBackend` — fans *picklable* tasks out across
  worker processes: true multi-core execution for the compute-dominated
  scoring path.  Supernet weights travel through one shared-memory
  segment (see :mod:`.shm` / :mod:`.worker`), not through task pickles,
  and a killed worker's map is resubmitted (bounded retries) without
  restarting the step.
* :class:`~.distributed.DistributedBackend` — the cross-*host* leg:
  a TCP controller sharding the same stage tasks across worker
  processes that may live on other machines (``repro worker``), with
  versioned weight broadcasts in place of the shared-memory segment and
  per-task resubmission in place of whole-map retry.  Registered here
  lazily; see :mod:`.distributed`.

**Determinism contract.**  A backend may only be handed tasks whose
outputs are independent of scheduling: pure functions of their inputs,
or functions whose randomness comes from :meth:`rng_streams`.  Streams
are split per *task* (not per worker) from a counter-stamped
:class:`numpy.random.SeedSequence`, so task ``i`` of split ``k`` draws
the same stream no matter how many workers exist or which thread or
process runs it.  The split counter is part of :meth:`state_dict`,
rides in search checkpoints, and restores on resume — crash-resumed
runs replay the same streams an uninterrupted run would have drawn.
Order-preserving reduction (results come back in task order, never
completion order) closes the contract: parallelism changes wall-clock,
never numerics.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
from abc import ABC, abstractmethod
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np

from .worker import build_remote_context, initialize_worker

T = TypeVar("T")
R = TypeVar("R")

#: Environment variables consulted when a search does not pin a backend
#: explicitly — the CI matrix runs the whole test suite under
#: ``REPRO_BACKEND=threads`` / ``REPRO_BACKEND=processes`` to prove
#: backend equivalence at scale.
BACKEND_ENV_VAR = "REPRO_BACKEND"
WORKERS_ENV_VAR = "REPRO_WORKERS"
#: Start-method override for the process backend (``fork`` / ``spawn``
#: / ``forkserver``).  Defaults to ``fork`` where the platform offers
#: it: workers inherit the imported modules instead of re-importing
#: them, which keeps pool startup in the milliseconds.
MP_CONTEXT_ENV_VAR = "REPRO_MP_CONTEXT"


def default_worker_count() -> int:
    """Worker count when none is requested: min(4, available cores)."""
    return max(1, min(4, os.cpu_count() or 1))


class ExecutionBackend(ABC):
    """Order-preserving task executor with deterministic rng splitting."""

    #: short name used in CLI flags, telemetry labels, and snapshots
    name: str = "abstract"
    #: whether this backend runs tasks in other *processes* — the engine
    #: routes stage work through serializable task payloads instead of
    #: closures when this is set
    remote: bool = False

    def __init__(self, seed: int = 0, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._seed = int(seed)
        #: how many stream splits this backend has handed out; part of
        #: the checkpoint state so resumed runs continue the sequence
        self._rng_spawns = 0

    # ------------------------------------------------------------------
    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in item order.

        The reduction is order-preserving by contract: ``result[i]``
        corresponds to ``items[i]`` regardless of which worker finished
        first.  Exceptions raised by any task propagate to the caller.
        """

    def rng_streams(self, count: int) -> List[np.random.Generator]:
        """``count`` independent generators for one fan-out, split
        deterministically.

        Stream ``i`` depends only on ``(seed, split_counter, i)`` — not
        on worker count, thread identity, or scheduling — so serial and
        pooled execution consume identical randomness.  Each call
        advances the split counter (a new fan-out must not reuse the
        previous fan-out's streams).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        sequence = np.random.SeedSequence(entropy=(self._seed, self._rng_spawns))
        self._rng_spawns += 1
        return [np.random.default_rng(child) for child in sequence.spawn(count)]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the backend's replayable state.

        ``name``/``workers`` are recorded for observability only — the
        equivalence contract makes backends interchangeable across a
        resume — while ``rng_spawns`` must be restored for the stream
        sequence to continue bit-identically.
        """
        return {
            "name": self.name,
            "workers": int(self.workers),
            "rng_spawns": int(self._rng_spawns),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output (the split counter)."""
        self._rng_spawns = int(state["rng_spawns"])

    def close(self) -> None:
        """Release resources this backend *owns* (shared pools stay up)."""


class SerialBackend(ExecutionBackend):
    """Run every task on the calling thread, in order.

    This is the reference semantics: no concurrency, no reordering,
    exactly the execution the original sequential step loop performed.
    """

    name = "serial"

    def __init__(self, seed: int = 0):
        super().__init__(seed=seed, workers=1)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


# ----------------------------------------------------------------------
# Executor-pool registry
# ----------------------------------------------------------------------
# Worker pools are shared per (kind, configuration) across backend
# instances: tests and sweeps construct hundreds of short-lived
# searches, and spinning an executor up and down for each would
# dominate their cost.  Shared pools live until `shutdown_pools()` —
# registered with atexit so interpreter exit reaps them — while pools a
# backend was asked to own (``shared=False``) are released by that
# backend's `close()`.
_POOLS: Dict[Tuple[Any, ...], Executor] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(key: Tuple[Any, ...], factory: Callable[[], Executor]) -> Executor:
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = _POOLS[key] = factory()
        return pool


def _discard_shared_pool(key: Tuple[Any, ...], pool: Executor) -> None:
    """Drop ``pool`` from the registry (it broke or is being replaced)."""
    with _POOLS_LOCK:
        if _POOLS.get(key) is pool:
            del _POOLS[key]


def shutdown_pools(wait: bool = True) -> None:
    """Shut down every shared executor pool.

    Called automatically at interpreter exit; call it explicitly to
    reclaim workers mid-process (the next backend ``map`` transparently
    builds fresh pools).
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_pools)


def _thread_pool_factory(workers: int) -> Callable[[], Executor]:
    def factory() -> Executor:
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"repro-engine-{workers}"
        )

    return factory


def process_start_method() -> str:
    """The start method process pools use (``$REPRO_MP_CONTEXT`` wins)."""
    override = os.environ.get(MP_CONTEXT_ENV_VAR)
    if override:
        return override
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()


def _process_pool_factory(workers: int, method: str) -> Callable[[], Executor]:
    def factory() -> Executor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method),
            initializer=initialize_worker,
        )

    return factory


class ThreadPoolBackend(ExecutionBackend):
    """Fan tasks out across a thread pool, gathering in order.

    NumPy releases the GIL inside its kernels and candidate pricing is
    frequently latency- rather than compute-bound (simulator calls,
    testbed measurements), so threads buy real step-time parallelism
    without the serialization cost a process pool adds for shard-sized
    payloads.  ``Executor.map`` yields results in submission order,
    which is what keeps reductions (and therefore policy and weight
    updates) bit-identical to :class:`SerialBackend`.
    """

    name = "threads"

    def __init__(
        self,
        workers: Optional[int] = None,
        seed: int = 0,
        shared: bool = True,
    ):
        super().__init__(
            seed=seed,
            workers=workers if workers is not None else default_worker_count(),
        )
        self._shared = shared
        self._owned_pool: Optional[Executor] = None

    def _pool(self) -> Executor:
        if self._shared:
            return _shared_pool(
                ("threads", self.workers), _thread_pool_factory(self.workers)
            )
        if self._owned_pool is None:
            self._owned_pool = _thread_pool_factory(self.workers)()
        return self._owned_pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        return list(self._pool().map(fn, items))

    def close(self) -> None:
        if self._owned_pool is not None:
            self._owned_pool.shutdown(wait=True)
            self._owned_pool = None


class ProcessPoolBackend(ExecutionBackend):
    """Fan picklable tasks out across worker *processes*.

    This is the GIL-free leg: CPU-bound scoring shards scale with the
    machine's cores.  What makes it practical:

    * **tasks are data, not closures** — the engine sends
      :class:`~.worker.StageTask` payloads that a worker executes
      against a supernet it rehydrated once (see
      :meth:`register_context`), so per-task pickles carry batch arrays
      only;
    * **weights travel through shared memory** — one versioned segment
      the engine republishes after each cross-shard weight update;
      workers copy-in at most once per version;
    * **functions that cannot travel run locally** — ``map`` probes the
      function (and a representative item) for picklability and quietly
      degrades to the in-process serial loop, which is always correct;
    * **worker loss is survivable** — a killed worker breaks the pool's
      current map; the backend discards the broken pool, builds a fresh
      one, and resubmits the whole map.  Tasks are pure by the
      determinism contract, so resubmission is idempotent and the
      retried results are bit-identical.  Retries are bounded; on
      exhaustion a retryable
      :class:`~repro.runtime.errors.WorkerCrashError` surfaces so the
      supervisor can restart the step from its snapshot.
    """

    name = "processes"
    remote = True

    #: how many times one ``map`` survives a broken pool before raising
    max_map_retries = 2

    def __init__(
        self,
        workers: Optional[int] = None,
        seed: int = 0,
        shared: bool = True,
        start_method: Optional[str] = None,
    ):
        super().__init__(
            seed=seed,
            workers=workers if workers is not None else default_worker_count(),
        )
        self._shared = shared
        self._method = start_method or process_start_method()
        self._owned_pool: Optional[Executor] = None
        self._context: Optional[Any] = None
        #: workers lost (pool breaks) over this backend's lifetime; the
        #: engine mirrors deltas into the ``supervisor.worker_losses``
        #: churn counter
        self.worker_losses = 0

    # -- pool lifecycle -------------------------------------------------
    def _pool_key(self) -> Tuple[Any, ...]:
        return ("processes", self.workers, self._method)

    def _pool(self) -> Executor:
        if self._shared:
            return _shared_pool(
                self._pool_key(), _process_pool_factory(self.workers, self._method)
            )
        if self._owned_pool is None:
            self._owned_pool = _process_pool_factory(self.workers, self._method)()
        return self._owned_pool

    def _discard_pool(self, pool: Executor) -> None:
        if self._shared:
            _discard_shared_pool(self._pool_key(), pool)
        elif self._owned_pool is pool:
            self._owned_pool = None
        pool.shutdown(wait=True)

    # -- supernet context ----------------------------------------------
    def register_context(self, supernet: Any) -> Optional[Any]:
        """Publish ``supernet`` to workers via shared memory.

        Returns the :class:`~.worker.RemoteShardContext` handle (the
        engine drives `publish()` / `ref()` through it), or ``None``
        when the supernet cannot travel — unpicklable spec, parameter
        mismatch on rebuild, non-float64 parameters, or a single-worker
        pool where remote execution buys nothing.  ``None`` keeps every
        stage on the in-process path.
        """
        if self.workers <= 1:
            return None
        if self._context is not None:
            self._context.release()
        self._context = build_remote_context(supernet)
        return self._context

    # -- execution ------------------------------------------------------
    def _can_ship(self, fn: Callable, items: Sequence) -> bool:
        try:
            pickle.dumps(fn)
            if items:
                pickle.dumps(items[0])
            return True
        except Exception:
            return False

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1 or self.workers == 1 or not self._can_ship(fn, items):
            return [fn(item) for item in items]
        attempts = 0
        while True:
            pool = self._pool()
            try:
                return list(pool.map(fn, items))
            except BrokenProcessPool:
                # A worker died mid-map (OOM-kill, SIGKILL, hard crash).
                # The pool is unusable from here on; replace it and
                # resubmit the whole map — tasks are pure, so the retry
                # recomputes identical results.
                self.worker_losses += 1
                self._discard_pool(pool)
                attempts += 1
                if attempts > self.max_map_retries:
                    from ...runtime.errors import WorkerCrashError

                    raise WorkerCrashError(
                        f"process pool broke {attempts} times while mapping "
                        f"{len(items)} tasks; giving up after "
                        f"{self.max_map_retries} resubmissions"
                    )

    # -- checkpoint state ----------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["weights_version"] = (
            int(self._context.version) if self._context is not None else 0
        )
        return state

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        super().load_state_dict(state)
        if self._context is not None:
            # Republish past the checkpointed version: the restored
            # parameter values reach the segment, and surviving workers
            # whose applied version predates the crash still refresh.
            self._context.fast_forward(int(state.get("weights_version", 0)))

    def close(self) -> None:
        if self._context is not None:
            self._context.release()
            self._context = None
        if self._owned_pool is not None:
            self._owned_pool.shutdown(wait=True)
            self._owned_pool = None


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
def _distributed_backend(workers: Optional[int], seed: int) -> ExecutionBackend:
    # Imported lazily: distributed.py pulls in the socket transport
    # (which shares framing with repro.service) and imports this module
    # back — registry construction must not trigger that cycle.
    from .distributed import DistributedBackend

    return DistributedBackend(workers=workers, seed=seed)


_REGISTRY: Dict[str, Callable[[Optional[int], int], ExecutionBackend]] = {
    "serial": lambda workers, seed: SerialBackend(seed=seed),
    "threads": lambda workers, seed: ThreadPoolBackend(workers=workers, seed=seed),
    "processes": lambda workers, seed: ProcessPoolBackend(workers=workers, seed=seed),
    "distributed": _distributed_backend,
}

_ALIASES: Dict[str, str] = {
    "thread": "threads",
    "threadpool": "threads",
    "process": "processes",
    "procs": "processes",
    "processpool": "processes",
    "mp": "processes",
    "dist": "distributed",
}

#: Spec names accepted by :func:`resolve_backend` — derived from the
#: registry, so a new backend shows up everywhere (CLI choices, error
#: messages) by registration alone.
BACKEND_NAMES = tuple(_REGISTRY)

BackendSpec = Union[None, str, ExecutionBackend]


def resolve_backend(
    spec: BackendSpec = None,
    workers: Optional[int] = None,
    seed: int = 0,
) -> ExecutionBackend:
    """Build the execution backend a search asked for.

    ``spec`` may be an :class:`ExecutionBackend` instance (returned as
    is), a name from :data:`BACKEND_NAMES` (or an alias), or ``None`` —
    in which case the :envvar:`REPRO_BACKEND` environment variable
    decides, defaulting to serial.  ``workers`` falls back to
    :envvar:`REPRO_WORKERS`, then to :func:`default_worker_count`.
    Errors name the source of the bad value — a misspelled environment
    variable should say so, not stack-trace as a bare ``ValueError``.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    source = "backend spec"
    if spec is None:
        env_spec = os.environ.get(BACKEND_ENV_VAR)
        if env_spec:
            spec = env_spec
            source = f"${BACKEND_ENV_VAR}"
        else:
            spec = "serial"
    if workers is None:
        env_workers = os.environ.get(WORKERS_ENV_VAR)
        if env_workers:
            try:
                workers = int(env_workers)
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV_VAR} must be an integer worker count, "
                    f"got {env_workers!r}"
                ) from None
    name = str(spec).lower()
    factory = _REGISTRY.get(_ALIASES.get(name, name))
    if factory is None:
        raise ValueError(
            f"unknown execution backend {spec!r} (from {source}); "
            f"expected one of {BACKEND_NAMES}"
        )
    return factory(workers, seed)
