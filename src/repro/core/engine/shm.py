"""Shared-memory publication of supernet weights for process workers.

The process-pool backend scores shards in worker *processes*, so the
supernet's weights must be visible across address spaces.  Pickling the
weights into every task would ship the full parameter set per task per
step; instead the engine publishes **one** copy into a
:mod:`multiprocessing.shared_memory` segment and updates it in place
after each cross-shard weight update.  Workers attach once and copy the
current weights into their rehydrated supernet before scoring.

Torn reads are prevented with a *seqlock*: the segment header carries a
version counter that the publisher bumps to an odd value before writing
and to the next even value after.  A reader copies the payload, then
re-reads the version — an odd value or a changed value means the copy
raced a write and must be retried.  (In the engine's step loop the
publisher only writes between fan-outs, so retries are a correctness
backstop, not a steady-state cost.)

Two segment flavors live here:

* :class:`SharedWeights` — the flat float64 parameter image plus its
  ``(shape, offset, size)`` layout;
* :class:`SharedBlob` — an immutable pickled payload (the worker
  rehydration spec), written once at publish time.

Every segment this process creates is tracked and unlinked at exit, so
crashed or interrupted runs do not leak ``/dev/shm`` entries.
"""

from __future__ import annotations

import atexit
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on every POSIX platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

#: int64 header slots: ``[0]`` is the seqlock version; the rest are
#: reserved so the payload stays 64-byte aligned.
HEADER_SLOTS = 8
HEADER_BYTES = HEADER_SLOTS * 8

#: ``(shape, offset, size)`` per parameter, offsets in float64 elements.
WeightLayout = List[Tuple[Tuple[int, ...], int, int]]


def shared_memory_available() -> bool:
    """Whether this platform offers ``multiprocessing.shared_memory``."""
    return shared_memory is not None


# ----------------------------------------------------------------------
# Creator-side segment tracking: unlink everything we created at exit.
# ----------------------------------------------------------------------
_CREATED: Dict[str, Any] = {}
_CREATED_LOCK = threading.Lock()


def _track(segment: Any) -> None:
    with _CREATED_LOCK:
        _CREATED[segment.name] = segment


def _untrack(name: str) -> None:
    with _CREATED_LOCK:
        _CREATED.pop(name, None)


def _cleanup_created_segments() -> None:
    """Unlink every still-live segment this process created."""
    with _CREATED_LOCK:
        segments = list(_CREATED.values())
        _CREATED.clear()
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - best-effort exit cleanup
            pass


# Registered at import time, i.e. *before* the executor pools register
# their own atexit hooks in backends.py — atexit runs LIFO, so pools
# shut down (workers stop reading) before their segments are unlinked.
atexit.register(_cleanup_created_segments)


def _attach_segment(name: str) -> Any:
    """Attach to an existing segment without adopting its lifetime.

    Python 3.11's ``SharedMemory`` registers *attachments* with the
    resource tracker too (``track=False`` only exists from 3.13), which
    is wrong both ways: under ``spawn`` the worker's tracker unlinks the
    creator's segment when the worker exits; under ``fork`` the shared
    tracker would double-book and unregistering would strip the
    *creator's* entry.  The creator owns the segment, so registration is
    suppressed for the duration of the attach.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class _Segment:
    """Shared lifecycle plumbing of both segment flavors."""

    def __init__(self, segment: Any, owner: bool):
        self._segment = segment
        self._owner = owner
        self._closed = False

    @property
    def name(self) -> str:
        return self._segment.name

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except Exception:  # pragma: no cover - double-close races
            pass

    def release(self) -> None:
        """Creator-side teardown: unmap *and* unlink the segment."""
        if self._closed:
            return
        self._closed = True
        _untrack(self._segment.name)
        try:
            self._segment.close()
            if self._owner:
                self._segment.unlink()
        except Exception:  # pragma: no cover - already gone
            pass


class SharedWeights(_Segment):
    """One shared, versioned copy of a supernet's parameter arrays.

    The publisher (engine process) calls :meth:`publish` after every
    cross-shard weight update; readers (workers) call :meth:`copy_into`
    before scoring.  The seqlock version makes a torn read impossible:
    readers retry until they observe the same even version before and
    after their copy.
    """

    def __init__(self, segment: Any, layout: WeightLayout, owner: bool):
        super().__init__(segment, owner)
        self.layout = [
            (tuple(shape), int(offset), int(size))
            for shape, offset, size in layout
        ]
        total = sum(size for _, _, size in self.layout)
        self._header = np.ndarray(
            (HEADER_SLOTS,), dtype=np.int64, buffer=segment.buf
        )
        self._data = np.ndarray(
            (total,), dtype=np.float64, buffer=segment.buf, offset=HEADER_BYTES
        )

    @property
    def version(self) -> int:
        """Latest published version (even; odd means write in progress)."""
        return int(self._header[0])

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Sequence[np.ndarray]) -> "SharedWeights":
        """Create a segment sized for ``arrays`` and publish them as v2."""
        layout: WeightLayout = []
        offset = 0
        for array in arrays:
            if array.dtype != np.float64:
                raise TypeError(
                    f"shared weights must be float64, got {array.dtype}"
                )
            layout.append((tuple(array.shape), offset, int(array.size)))
            offset += int(array.size)
        segment = shared_memory.SharedMemory(
            create=True, size=HEADER_BYTES + max(offset, 1) * 8
        )
        _track(segment)
        weights = cls(segment, layout, owner=True)
        weights._header[:] = 0
        weights.publish(arrays)
        return weights

    @classmethod
    def attach(cls, name: str, layout: WeightLayout) -> "SharedWeights":
        """Worker-side view of an existing segment (read-only by use)."""
        return cls(_attach_segment(name), layout, owner=False)

    # ------------------------------------------------------------------
    def publish(
        self, arrays: Sequence[np.ndarray], minimum_version: int = 0
    ) -> int:
        """Write ``arrays`` into the segment under the seqlock.

        ``minimum_version`` lets a resumed run fast-forward the counter
        past the version a checkpoint recorded, keeping it monotonic
        across crash/resume.  Returns the new (even) version.
        """
        if len(arrays) != len(self.layout):
            raise ValueError(
                f"publish got {len(arrays)} arrays for a layout of "
                f"{len(self.layout)}"
            )
        current = self.version
        self._header[0] = current + 1  # odd: write in progress
        for array, (shape, offset, size) in zip(arrays, self.layout):
            self._data[offset : offset + size] = np.asarray(array).reshape(-1)
        target = max(current + 2, int(minimum_version))
        if target & 1:
            target += 1
        self._header[0] = target
        return target

    def copy_into(self, arrays: Sequence[np.ndarray]) -> int:
        """Copy the current weights into ``arrays``; returns the version.

        Retries until a stable even version brackets the copy, so the
        caller never observes a half-written update.
        """
        if len(arrays) != len(self.layout):
            raise ValueError(
                f"copy_into got {len(arrays)} arrays for a layout of "
                f"{len(self.layout)}"
            )
        while True:
            before = self.version
            if before & 1:
                time.sleep(0.0002)
                continue
            for array, (shape, offset, size) in zip(arrays, self.layout):
                np.copyto(array, self._data[offset : offset + size].reshape(shape))
            if self.version == before:
                return before
            time.sleep(0.0002)


class SharedBlob(_Segment):
    """An immutable shared byte payload (worker rehydration specs).

    Written once at creation; the int64 header carries the payload
    length, so no versioning is needed.
    """

    def __init__(self, segment: Any, owner: bool):
        super().__init__(segment, owner)
        self._header = np.ndarray((1,), dtype=np.int64, buffer=segment.buf)

    @classmethod
    def create(cls, payload: bytes) -> "SharedBlob":
        segment = shared_memory.SharedMemory(
            create=True, size=8 + max(len(payload), 1)
        )
        _track(segment)
        blob = cls(segment, owner=True)
        blob._header[0] = len(payload)
        segment.buf[8 : 8 + len(payload)] = payload
        return blob

    @classmethod
    def attach(cls, name: str) -> "SharedBlob":
        return cls(_attach_segment(name), owner=False)

    def load(self) -> bytes:
        """The payload bytes (a copy; safe after :meth:`close`)."""
        length = int(self._header[0])
        return bytes(self._segment.buf[8 : 8 + length])
