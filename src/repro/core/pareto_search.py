"""Pareto-front tracing: sweep performance targets, collect the front.

The paper's Figure 5 methodology as a first-class API: a single search
returns one Pareto-optimized model for one set of launch targets; to
*trace* the quality/performance front, deployments sweep the primary
target (e.g. training step time from 0.75x to 1.5x of baseline) and
run one search per setting.  This module runs that sweep and reduces
the results to the non-dominated front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence

from ..analysis.pareto import pareto_front
from ..data.pipeline import SingleStepPipeline
from ..data.synthetic import NullSource
from ..searchspace.base import Architecture, SearchSpace
from .eval_runtime import EvalRuntime, EvalRuntimeStats
from .reward import PerformanceObjective, RewardFunction, relu_reward
from .search import PerformanceFn, SearchConfig, SingleStepSearch
from .surrogate import SurrogateSuperNetwork

QualityFn = Callable[[Architecture], float]


@dataclass(frozen=True)
class FrontPoint:
    """One searched model on the quality/performance plane."""

    architecture: Architecture
    quality: float
    metrics: Mapping[str, float]
    target_scale: float


@dataclass
class FrontResult:
    """Outcome of a target sweep."""

    points: List[FrontPoint] = field(default_factory=list)
    primary_metric: str = "train_step_time"
    #: sweep-wide evaluation-runtime counters (cache shared across targets)
    eval_stats: Optional[EvalRuntimeStats] = None

    def front(self) -> List[FrontPoint]:
        """The non-dominated subset (max quality, min primary metric)."""
        return pareto_front(
            self.points,
            quality=lambda p: p.quality,
            cost=lambda p: p.metrics[self.primary_metric],
        )

    def best_quality(self) -> FrontPoint:
        return max(self.points, key=lambda p: p.quality)

    def fastest(self) -> FrontPoint:
        return min(self.points, key=lambda p: p.metrics[self.primary_metric])


@dataclass(frozen=True)
class FrontSearchConfig:
    """Knobs of the target sweep."""

    primary_metric: str = "train_step_time"
    target_scales: Sequence[float] = (0.75, 0.9, 1.0, 1.25, 1.5)
    beta: float = -3.0
    quality_weight: float = 2.0
    quality_noise: float = 0.01
    search: SearchConfig = field(
        default_factory=lambda: SearchConfig(
            steps=300,
            num_cores=8,
            warmup_steps=10,
            policy_lr=0.12,
            policy_entropy_coef=0.15,
            record_candidates=False,
        )
    )

    def __post_init__(self) -> None:
        if not self.target_scales:
            raise ValueError("target_scales must be non-empty")
        if any(s <= 0 for s in self.target_scales):
            raise ValueError("target scales must be positive")
        if self.quality_weight <= 0:
            raise ValueError("quality_weight must be positive")


def trace_front(
    space: SearchSpace,
    quality_fn: QualityFn,
    performance_fn: PerformanceFn,
    config: Optional[FrontSearchConfig] = None,
    secondary_objectives: Sequence[PerformanceObjective] = (),
    baseline: Optional[Architecture] = None,
    checkpoint_store=None,
) -> FrontResult:
    """Sweep the primary target and collect one searched model per setting.

    ``quality_fn`` is an analytical/surrogate quality signal (hyperscale
    regime); ``performance_fn`` returns the metric mapping used by the
    reward.  ``secondary_objectives`` (e.g. a neutral model-size target)
    apply unchanged at every sweep point.

    All sweep points share one :class:`EvalRuntime`: the performance
    signal does not depend on the target, so candidates revisited by
    later searches are priced from the cache.  The sweep-wide counters
    land on ``FrontResult.eval_stats``.

    With a ``checkpoint_store`` (:class:`repro.runtime.CheckpointStore`)
    the sweep snapshots after every completed target — each point's
    search is seeded identically, so resuming at a point boundary yields
    the same front an uninterrupted sweep produces.
    """
    config = config if config is not None else FrontSearchConfig()
    baseline = baseline or space.default_architecture()
    runtime = EvalRuntime(
        performance_fn,
        space=space,
        use_cache=config.search.use_cache,
        cache_capacity=config.search.cache_size,
    )
    base_value = runtime.price(baseline)[config.primary_metric]
    result = FrontResult(primary_metric=config.primary_metric)
    finals: List[Architecture] = []
    start_index = 0
    if checkpoint_store is not None:
        from ..runtime.checkpoint import CHECKPOINT_FORMAT, CheckpointError
        from ..runtime.recovery import resume_latest

        loaded = resume_latest(checkpoint_store)
        if loaded is not None:
            state = loaded.state
            if state.get("algorithm") != "trace_front":
                raise CheckpointError(
                    f"checkpoint was taken by {state.get('algorithm')!r}, "
                    "cannot restore into trace_front"
                )
            start_index = int(state["next_scale_index"])
            finals = [
                space.architecture_from_indices(indices)
                for indices in state["finals"]
            ]
            runtime.import_state(state["runtime"])
    scales = list(config.target_scales)
    for index in range(start_index, len(scales)):
        scale = scales[index]
        objectives = [
            PerformanceObjective(
                config.primary_metric, base_value * scale, beta=config.beta
            ),
            *secondary_objectives,
        ]
        search = SingleStepSearch(
            space=space,
            supernet=SurrogateSuperNetwork(
                lambda a: config.quality_weight * quality_fn(a),
                noise_sigma=config.quality_noise,
                seed=config.search.seed,
            ),
            pipeline=SingleStepPipeline(NullSource().next_batch),
            reward_fn=relu_reward(objectives),
            performance_fn=performance_fn,
            config=config.search,
            eval_runtime=runtime,
        )
        finals.append(search.run().final_architecture)
        if checkpoint_store is not None and index + 1 < len(scales):
            checkpoint_store.save(
                index + 1,
                {
                    "format": CHECKPOINT_FORMAT,
                    "algorithm": "trace_front",
                    "next_scale_index": index + 1,
                    "finals": [
                        [int(i) for i in space.indices_of(arch)] for arch in finals
                    ],
                    "runtime": runtime.export_state(),
                },
            )
    # Price all sweep winners in one batched call (usually cache hits —
    # each winner was priced during its own search).
    final_metrics = runtime.price_many([(arch, None) for arch in finals])
    for scale, final, metrics in zip(config.target_scales, finals, final_metrics):
        result.points.append(
            FrontPoint(
                architecture=final,
                quality=quality_fn(final),
                metrics=metrics,
                target_scale=scale,
            )
        )
    result.eval_stats = runtime.stats()
    return result
