"""Once-for-all elastic workflow: train one supernet, specialize many.

The paper amortizes search cost across a fleet of hardware targets; the
OFA line of work (PAPERS.md) shows how: train **one** elastic supernet
whose sub-networks are all simultaneously trained to convergence, then
run cheap *policy-only* searches against the frozen weights for each
deployment target.  N full searches become 1 training + N fast
specializations.  Both halves are stage configurations over the shared
:class:`~repro.core.engine.SearchEngine`:

* :class:`ElasticTraining` — weight-only training of the elastic
  supernet under a progressive-shrinking schedule
  (:class:`~repro.supernet.elastic.ShrinkSchedule`): candidates are
  sampled uniformly from a sub-space that widens on a step schedule
  (baseline only, then width-like decisions, then depth).  No policy,
  no pricing, no reward — the product is the trained weights,
  checkpointed as a versioned artifact
  (:func:`repro.runtime.artifact.save_elastic_artifact`).

* :class:`SpecializationSearch` — the per-target half: a full
  sample/score/price/reward/policy pipeline with **no weight_update
  stage**.  The supernet weights are restored from the artifact before
  construction and never change, so the run stays cache-hot through
  :class:`~repro.core.eval_runtime.EvalRuntime` and — because
  ``optimizer_step`` never fires — remote backends publish the shared
  weights exactly once.  Scored batches are explicitly released back to
  the pipeline (they will never train weights), keeping bookkeeping
  O(outstanding) as in the weight-training regimes.

Both strategies ride the stepwise checkpoint protocol unchanged, so
crash/resumed runs are bit-identical: the shrink phase is a pure
function of the step index and the sampler rng already rides in every
snapshot.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from ..searchspace.base import Architecture, SearchSpace
from ..supernet.elastic import ShrinkSchedule
from .engine import (
    CandidateRecord,
    DrawnCandidate,
    SearchConfig,
    SearchEngine,
    StepRecord,
    SuperNetwork,
    group_unique_architectures,
)
from .eval_runtime import (
    STAGE_FETCH_SHARD,
    STAGE_POLICY_UPDATE,
    STAGE_PRICE,
    STAGE_REWARD,
    STAGE_SAMPLE,
    STAGE_SCORE,
    STAGE_WEIGHT_UPDATE,
)
from .reward import RewardFunction, relu_reward

__all__ = ["ElasticTraining", "SpecializationSearch"]


def _no_metrics(arch: Architecture) -> Mapping[str, float]:
    """Performance stand-in for weight-only training (module-level so
    worker processes can unpickle engine state referencing it)."""
    return {}


class ElasticTraining(SearchEngine):
    """Progressive-shrinking weight training of one elastic supernet.

    One step = uniform candidates from the current shrink phase's
    sub-space, scored on fresh single-use batches (quality is recorded
    for monitoring only), then one cross-shard weight update on the same
    batches.  The policy stages never run; the reward is the identity
    (:func:`~repro.core.reward.relu_reward` with no objectives) purely
    so step records stay comparable with search histories.
    """

    def __init__(
        self,
        space: SearchSpace,
        supernet: SuperNetwork,
        pipeline: Any,
        schedule: Optional[ShrinkSchedule] = None,
        config: Optional[SearchConfig] = None,
        eval_runtime: Optional[Any] = None,
    ):
        config = config if config is not None else SearchConfig()
        super().__init__(
            space,
            supernet,
            pipeline,
            reward_fn=relu_reward([]),
            performance_fn=_no_metrics,
            config=config,
            eval_runtime=eval_runtime,
        )
        self.schedule = schedule or ShrinkSchedule.default(config.steps)

    def _batches_used(self) -> int:
        return self.pipeline.batches_issued

    # ------------------------------------------------------------------
    def sample_phase_shard(self, step: int, count: int) -> List[DrawnCandidate]:
        """Uniform candidates from the shrink phase active at ``step``.

        The restricted space keeps the full decision set (pinned
        decisions have one admissible choice) and consumes exactly one
        rng draw per decision regardless of phase, so the sampler rng
        advances identically across phases — the property crash/resume
        bit-identity rests on.  Index vectors come from the *full* space
        so downstream encodings are phase-independent.
        """
        restricted = self.schedule.space_at(step, self.space)
        drawn: List[DrawnCandidate] = []
        for _ in range(count):
            arch = restricted.sample(self._warmup_rng)
            drawn.append((arch, self.space.indices_of(arch)))
        return drawn

    def _step(self, step: int) -> StepRecord:
        cfg = self.config
        runtime = self.runtime
        with runtime.timed(STAGE_SAMPLE):
            drawn = self.sample_phase_shard(step, cfg.num_cores)
        with runtime.timed(STAGE_FETCH_SHARD):
            batches = self.pipeline.next_shard(cfg.num_cores)
        groups = group_unique_architectures(drawn) if cfg.group_unique else None
        with runtime.timed(STAGE_SCORE):
            qualities = self.score_shard(drawn, batches, groups)
            for batch in batches:
                self.pipeline.mark_policy_use(batch)
        candidates = [
            CandidateRecord(arch, float(q), {}, float(q))
            for (arch, _), q in zip(drawn, qualities)
        ]
        with runtime.timed(STAGE_WEIGHT_UPDATE):
            self.supernet.zero_grad()
            self.accumulate_shard_gradient(drawn, batches, groups)
            for batch in batches:
                self.pipeline.mark_weight_use(batch)
            self.optimizer_step()
        return self.make_record(step, candidates)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["shrink"] = {"schedule": self.schedule.describe()}
        return state

    def load_state_dict(self, state: Mapping) -> None:
        shrink = state.get("shrink")
        if shrink is not None:
            snapshotted = ShrinkSchedule.from_payload(shrink["schedule"])
            if snapshotted != self.schedule:
                from ..runtime.checkpoint import CheckpointError

                raise CheckpointError(
                    "checkpoint was taken under a different shrink schedule "
                    f"({snapshotted!r} != {self.schedule!r})"
                )
        super().load_state_dict(state)


class SpecializationSearch(SearchEngine):
    """Policy-only search against a frozen elastic supernet.

    The full reward pipeline of the single-step search minus its weight
    half: candidates are sampled by the policy, scored with the frozen
    shared weights on fresh batches, priced for the *target* hardware
    platform, and folded into REINFORCE updates.  The optimizer never
    steps, so the weights stay bit-identical to the artifact and every
    backend scores against one never-republished weight snapshot.
    """

    def __init__(
        self,
        space: SearchSpace,
        supernet: SuperNetwork,
        pipeline: Any,
        reward_fn: RewardFunction,
        performance_fn: Any,
        config: Optional[SearchConfig] = None,
        eval_runtime: Optional[Any] = None,
    ):
        super().__init__(
            space,
            supernet,
            pipeline,
            reward_fn=reward_fn,
            performance_fn=performance_fn,
            config=config,
            eval_runtime=eval_runtime,
        )

    def _batches_used(self) -> int:
        return self.pipeline.batches_issued

    def _step(self, step: int) -> StepRecord:
        cfg = self.config
        runtime = self.runtime
        warming_up = step < cfg.warmup_steps
        with runtime.timed(STAGE_SAMPLE):
            drawn = self.sample_shard(cfg.num_cores, warming_up)
        with runtime.timed(STAGE_FETCH_SHARD):
            batches = self.pipeline.next_shard(cfg.num_cores)
        groups = group_unique_architectures(drawn) if cfg.group_unique else None
        with runtime.timed(STAGE_SCORE):
            qualities = self.score_shard(drawn, batches, groups)
            for batch in batches:
                self.pipeline.mark_policy_use(batch)
                # Frozen weights: the batch will never be trained on.
                self.pipeline.release(batch)
        with runtime.timed(STAGE_PRICE):
            all_metrics = self.price_shard(drawn)
        with runtime.timed(STAGE_REWARD):
            candidates, samples = self.assemble_candidates(
                drawn, qualities, all_metrics
            )
        if not warming_up:
            with runtime.timed(STAGE_POLICY_UPDATE):
                self.policy_update(samples)
        return self.make_record(step, candidates)
