"""Multi-trial search baselines: random search and regularized evolution.

The paper's taxonomy (Section 2.1) contrasts one-shot NAS against
multi-trial NAS, where every candidate is trained and evaluated in its
own independent trial — "straightforward to implement, but
cost-prohibitive if the individual trials are large in scale" — and
notes that evolution-based algorithms cannot drive one-shot searches
because their rewards must be comparable across steps.  These baselines
make both points measurable: they consume an ``evaluate_fn`` whose cost
stands for one full trial, so comparing them against the single-step
search at a matched evaluation budget reproduces the efficiency
argument (see ``benchmarks/bench_ablation_strategy.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Mapping, Optional, Tuple

import numpy as np

from ..searchspace.base import Architecture, SearchSpace
from .eval_runtime import MemoizedEvaluate
from .reward import RewardFunction

#: One trial: architecture -> (quality, performance metrics).
EvaluateFn = Callable[[Architecture], Tuple[float, Mapping[str, float]]]


@dataclass
class Trial:
    """One completed independent trial."""

    architecture: Architecture
    quality: float
    metrics: Mapping[str, float]
    reward: float


@dataclass
class MultiTrialResult:
    """Outcome of a multi-trial search.

    ``cache_hits`` counts trials answered from the memoized evaluation
    cache — duplicated candidates that did not pay for a fresh trial.
    """

    best: Trial
    trials: List[Trial] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def rewards(self) -> np.ndarray:
        return np.array([t.reward for t in self.trials])

    def best_reward_curve(self) -> np.ndarray:
        """Running best reward after each trial (sample-efficiency view)."""
        return np.maximum.accumulate(self.rewards())


class RandomSearch:
    """Uniformly sample candidates; keep the best reward."""

    def __init__(
        self,
        space: SearchSpace,
        evaluate_fn: EvaluateFn,
        reward_fn: RewardFunction,
        num_trials: int = 100,
        seed: int = 0,
        use_cache: bool = True,
        cache_size: int = 4096,
    ):
        if num_trials < 1:
            raise ValueError("num_trials must be >= 1")
        self.space = space
        self.evaluate_fn = evaluate_fn
        self.reward_fn = reward_fn
        self.num_trials = num_trials
        self._rng = np.random.default_rng(seed)
        self._evaluate = (
            MemoizedEvaluate(space, evaluate_fn, cache_size) if use_cache else evaluate_fn
        )

    def run(self) -> MultiTrialResult:
        trials = [self._trial(self.space.sample(self._rng)) for _ in range(self.num_trials)]
        return _result(trials, self._evaluate)

    def _trial(self, arch: Architecture) -> Trial:
        quality, metrics = self._evaluate(arch)
        return Trial(arch, quality, metrics, self.reward_fn(quality, metrics))


@dataclass(frozen=True)
class EvolutionConfig:
    """Regularized-evolution hyper-parameters (Real et al., 2019)."""

    population_size: int = 20
    tournament_size: int = 5
    num_trials: int = 100
    mutations_per_child: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not (1 <= self.tournament_size <= self.population_size):
            raise ValueError("tournament_size must be in [1, population_size]")
        if self.num_trials < self.population_size:
            raise ValueError("num_trials must cover the initial population")
        if self.mutations_per_child < 1:
            raise ValueError("mutations_per_child must be >= 1")


def _result(trials: List[Trial], evaluate: EvaluateFn) -> MultiTrialResult:
    """Assemble a result, lifting cache counters off a memoized evaluate."""
    cache = evaluate.cache if isinstance(evaluate, MemoizedEvaluate) else None
    return MultiTrialResult(
        best=max(trials, key=lambda t: t.reward),
        trials=trials,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else 0,
    )


class EvolutionarySearch:
    """Aging evolution: tournament parent selection, mutate, drop oldest."""

    def __init__(
        self,
        space: SearchSpace,
        evaluate_fn: EvaluateFn,
        reward_fn: RewardFunction,
        config: Optional[EvolutionConfig] = None,
        seed: int = 0,
        use_cache: bool = True,
        cache_size: int = 4096,
    ):
        self.space = space
        self.evaluate_fn = evaluate_fn
        self.reward_fn = reward_fn
        self.config = config if config is not None else EvolutionConfig()
        self._rng = np.random.default_rng(seed)
        self._evaluate = (
            MemoizedEvaluate(space, evaluate_fn, cache_size) if use_cache else evaluate_fn
        )

    def run(self) -> MultiTrialResult:
        cfg = self.config
        trials: List[Trial] = []
        population: Deque[Trial] = deque()
        # Seed the population with random candidates.
        for _ in range(cfg.population_size):
            trial = self._trial(self.space.sample(self._rng))
            trials.append(trial)
            population.append(trial)
        # Evolve: tournament -> mutate -> evaluate -> age out the oldest.
        while len(trials) < cfg.num_trials:
            contestants = [
                population[int(self._rng.integers(len(population)))]
                for _ in range(cfg.tournament_size)
            ]
            parent = max(contestants, key=lambda t: t.reward)
            child_arch = self.mutate(parent.architecture)
            child = self._trial(child_arch)
            trials.append(child)
            population.append(child)
            population.popleft()
        return _result(trials, self._evaluate)

    def mutate(self, arch: Architecture) -> Architecture:
        """Re-roll ``mutations_per_child`` random decisions to new values."""
        updates = {}
        for _ in range(self.config.mutations_per_child):
            decision = self.space.decisions[
                int(self._rng.integers(len(self.space.decisions)))
            ]
            current = arch[decision.name]
            alternatives = [c for c in decision.choices if c != current]
            if alternatives:
                updates[decision.name] = alternatives[
                    int(self._rng.integers(len(alternatives)))
                ]
        return arch.replaced(**updates)

    def _trial(self, arch: Architecture) -> Trial:
        quality, metrics = self._evaluate(arch)
        return Trial(arch, quality, metrics, self.reward_fn(quality, metrics))
