"""Multi-trial search baselines: random search and regularized evolution.

The paper's taxonomy (Section 2.1) contrasts one-shot NAS against
multi-trial NAS, where every candidate is trained and evaluated in its
own independent trial — "straightforward to implement, but
cost-prohibitive if the individual trials are large in scale" — and
notes that evolution-based algorithms cannot drive one-shot searches
because their rewards must be comparable across steps.  These baselines
make both points measurable: they consume an ``evaluate_fn`` whose cost
stands for one full trial, so comparing them against the single-step
search at a matched evaluation budget reproduces the efficiency
argument (see ``benchmarks/bench_ablation_strategy.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Mapping, Optional, Tuple

import numpy as np

from ..searchspace.base import Architecture, SearchSpace
from .engine import ResumableLoop
from .eval_runtime import MemoizedEvaluate
from .reward import RewardFunction

#: One trial: architecture -> (quality, performance metrics).
EvaluateFn = Callable[[Architecture], Tuple[float, Mapping[str, float]]]


def _encode_trial(space: SearchSpace, trial: "Trial") -> dict:
    """A trial as plain data (the architecture becomes its index vector)."""
    return {
        "indices": [int(i) for i in space.indices_of(trial.architecture)],
        "quality": float(trial.quality),
        "metrics": {k: float(v) for k, v in trial.metrics.items()},
        "reward": float(trial.reward),
    }


def _decode_trial(space: SearchSpace, payload: Mapping) -> "Trial":
    return Trial(
        architecture=space.architecture_from_indices(payload["indices"]),
        quality=float(payload["quality"]),
        metrics={k: float(v) for k, v in payload["metrics"].items()},
        reward=float(payload["reward"]),
    )


@dataclass
class Trial:
    """One completed independent trial."""

    architecture: Architecture
    quality: float
    metrics: Mapping[str, float]
    reward: float


@dataclass
class MultiTrialResult:
    """Outcome of a multi-trial search.

    ``cache_hits`` counts trials answered from the memoized evaluation
    cache — duplicated candidates that did not pay for a fresh trial.
    """

    best: Trial
    trials: List[Trial] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def rewards(self) -> np.ndarray:
        return np.array([t.reward for t in self.trials])

    def best_reward_curve(self) -> np.ndarray:
        """Running best reward after each trial (sample-efficiency view)."""
        return np.maximum.accumulate(self.rewards())


class _ResumableTrialLoop(ResumableLoop):
    """Shared stepwise/checkpoint machinery of the multi-trial searches.

    Trials accumulate on ``self.trials``; ``step()`` runs one trial, so
    the driver (:meth:`ResumableLoop.run_resumable` via ``run``, or an
    external supervisor) can snapshot at any trial boundary.  The rng
    and the memoized-evaluation cache are part of the state, so a
    resumed search replays the remaining trials bit-identically.
    """

    def _target_trials(self) -> int:
        raise NotImplementedError

    def step(self) -> Trial:
        raise NotImplementedError

    # -- ResumableLoop unit semantics: one unit = one trial -------------
    def _completed_units(self) -> int:
        return len(self.trials)

    def _target_units(self) -> int:
        return self._target_trials()

    def _advance(self) -> None:
        self.step()

    def run(self, store=None, checkpoint_every: int = 25, resume: bool = True) -> MultiTrialResult:
        """Run to the trial budget, optionally checkpointing to ``store``."""
        return self.run_resumable(
            store=store, checkpoint_every=checkpoint_every, resume=resume
        )

    def build_result(self) -> MultiTrialResult:
        return _result(list(self.trials), self._evaluate)

    def state_dict(self) -> dict:
        state = {
            "rng": self._rng.bit_generator.state,
            "trials": [_encode_trial(self.space, t) for t in self.trials],
            "evaluate": (
                self._evaluate.export_state()
                if isinstance(self._evaluate, MemoizedEvaluate)
                else None
            ),
        }
        state.update(self._extra_state())
        return state

    def load_state_dict(self, state: Mapping) -> None:
        self._rng.bit_generator.state = state["rng"]
        self.trials = [_decode_trial(self.space, t) for t in state["trials"]]
        if state["evaluate"] is not None:
            if not isinstance(self._evaluate, MemoizedEvaluate):
                raise ValueError(
                    "checkpoint carries an evaluation cache but this search "
                    "runs with use_cache=False"
                )
            self._evaluate.import_state(state["evaluate"])
        self._load_extra_state(state)

    def _extra_state(self) -> dict:
        return {}

    def _load_extra_state(self, state: Mapping) -> None:
        del state

    def _trial(self, arch: Architecture) -> Trial:
        quality, metrics = self._evaluate(arch)
        return Trial(arch, quality, metrics, self.reward_fn(quality, metrics))


class RandomSearch(_ResumableTrialLoop):
    """Uniformly sample candidates; keep the best reward."""

    def __init__(
        self,
        space: SearchSpace,
        evaluate_fn: EvaluateFn,
        reward_fn: RewardFunction,
        num_trials: int = 100,
        seed: int = 0,
        use_cache: bool = True,
        cache_size: int = 4096,
    ):
        if num_trials < 1:
            raise ValueError("num_trials must be >= 1")
        self.space = space
        self.evaluate_fn = evaluate_fn
        self.reward_fn = reward_fn
        self.num_trials = num_trials
        self.trials: List[Trial] = []
        self._rng = np.random.default_rng(seed)
        self._evaluate = (
            MemoizedEvaluate(space, evaluate_fn, cache_size) if use_cache else evaluate_fn
        )

    def _target_trials(self) -> int:
        return self.num_trials

    def step(self) -> Trial:
        trial = self._trial(self.space.sample(self._rng))
        self.trials.append(trial)
        return trial


@dataclass(frozen=True)
class EvolutionConfig:
    """Regularized-evolution hyper-parameters (Real et al., 2019)."""

    population_size: int = 20
    tournament_size: int = 5
    num_trials: int = 100
    mutations_per_child: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not (1 <= self.tournament_size <= self.population_size):
            raise ValueError("tournament_size must be in [1, population_size]")
        if self.num_trials < self.population_size:
            raise ValueError("num_trials must cover the initial population")
        if self.mutations_per_child < 1:
            raise ValueError("mutations_per_child must be >= 1")


def _result(trials: List[Trial], evaluate: EvaluateFn) -> MultiTrialResult:
    """Assemble a result, lifting cache counters off a memoized evaluate."""
    cache = evaluate.cache if isinstance(evaluate, MemoizedEvaluate) else None
    return MultiTrialResult(
        best=max(trials, key=lambda t: t.reward),
        trials=trials,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else 0,
    )


class EvolutionarySearch(_ResumableTrialLoop):
    """Aging evolution: tournament parent selection, mutate, drop oldest.

    The population is tracked as a deque of *trial indices* so it
    serializes alongside the trial log; one ``step()`` either seeds a
    random founder or runs one tournament/mutate/evaluate/age-out cycle.
    """

    def __init__(
        self,
        space: SearchSpace,
        evaluate_fn: EvaluateFn,
        reward_fn: RewardFunction,
        config: Optional[EvolutionConfig] = None,
        seed: int = 0,
        use_cache: bool = True,
        cache_size: int = 4096,
    ):
        self.space = space
        self.evaluate_fn = evaluate_fn
        self.reward_fn = reward_fn
        self.config = config if config is not None else EvolutionConfig()
        self.trials: List[Trial] = []
        self._population: Deque[int] = deque()
        self._rng = np.random.default_rng(seed)
        self._evaluate = (
            MemoizedEvaluate(space, evaluate_fn, cache_size) if use_cache else evaluate_fn
        )

    def _target_trials(self) -> int:
        return self.config.num_trials

    def step(self) -> Trial:
        cfg = self.config
        if len(self.trials) < cfg.population_size:
            # Still seeding the population with random founders.
            trial = self._trial(self.space.sample(self._rng))
        else:
            contestants = [
                self.trials[self._population[int(self._rng.integers(len(self._population)))]]
                for _ in range(cfg.tournament_size)
            ]
            parent = max(contestants, key=lambda t: t.reward)
            trial = self._trial(self.mutate(parent.architecture))
        self._population.append(len(self.trials))
        self.trials.append(trial)
        if len(self._population) > cfg.population_size:
            self._population.popleft()
        return trial

    def _extra_state(self) -> dict:
        return {"population": [int(i) for i in self._population]}

    def _load_extra_state(self, state: Mapping) -> None:
        self._population = deque(int(i) for i in state["population"])

    def mutate(self, arch: Architecture) -> Architecture:
        """Re-roll ``mutations_per_child`` random decisions to new values."""
        updates = {}
        for _ in range(self.config.mutations_per_child):
            decision = self.space.decisions[
                int(self._rng.integers(len(self.space.decisions)))
            ]
            current = arch[decision.name]
            alternatives = [c for c in decision.choices if c != current]
            if alternatives:
                updates[decision.name] = alternatives[
                    int(self._rng.integers(len(alternatives)))
                ]
        return arch.replaced(**updates)

    def _trial(self, arch: Architecture) -> Trial:
        quality, metrics = self._evaluate(arch)
        return Trial(arch, quality, metrics, self.reward_fn(quality, metrics))
