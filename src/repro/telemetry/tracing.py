"""Span-based tracing over the metrics registry.

A *span* is one timed region of the search loop — a whole step, or one
of its stages (sample/score/price/policy_update/weight_update), or a
checkpoint save.  Spans accumulate into ``span.<name>`` histograms in
the shared :class:`~repro.telemetry.metrics.MetricsRegistry`, so the
report can show per-stage wall time without any separate bookkeeping.
:meth:`EvalRuntime.timed <repro.core.eval_runtime.EvalRuntime.timed>`
forwards its stage timings here when a telemetry handle is attached,
making the runtime's legacy stage accounting one view of the same
spans.

``Trace.record`` exists alongside the ``span`` context manager so hot
paths that already hold an elapsed time (the eval runtime's ``timed``)
can report it with one call instead of nesting a second context
manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from .metrics import MetricsRegistry

#: Histogram-name prefix every span accumulates under.
SPAN_PREFIX = "span."


class Trace:
    """Records timed spans into ``span.<name>`` histograms."""

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.registry = registry
        self._clock = clock

    def record(self, name: str, seconds: float, **labels: object) -> None:
        """Account ``seconds`` of wall time to span ``name``."""
        self.registry.histogram(SPAN_PREFIX + name).observe(seconds, **labels)

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[None]:
        """Time the enclosed block as one span observation."""
        start = self._clock()
        try:
            yield
        finally:
            self.record(name, self._clock() - start, **labels)

    def span_stats(self, name: str, **labels: object):
        """Summary stats of a span (None if it never fired)."""
        return self.registry.histogram(SPAN_PREFIX + name).stats(**labels)
