"""Render a human-readable summary of a telemetry directory.

``python -m repro report telemetry <dir>`` lands here.  The report is
built from the two artifacts a run leaves behind:

* ``summary.json`` — the registry snapshot written at flush/close
  (authoritative totals; survives crash-resume with bit-identical
  run-scoped counters);
* ``events/*.jsonl`` — the sealed event segments (what happened when:
  step trajectory, checkpoint saves, restarts with crash
  classification, corrupt-snapshot fallbacks).

Either artifact may be missing (a run that never flushed, a summary
copied without its events); the report renders whatever exists.
"""

from __future__ import annotations

import pathlib
from collections import Counter as TallyCounter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import json

from . import EVENTS_DIRNAME, SUMMARY_NAME
from .events import read_events

PathLike = Union[str, pathlib.Path]


def load_summary(directory: PathLike) -> Optional[dict]:
    """Parse ``summary.json`` under ``directory`` (None if absent)."""
    path = pathlib.Path(directory) / SUMMARY_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text())


def summarize_events(events: Sequence[Mapping[str, Any]]) -> dict:
    """Aggregate a raw event stream into report-ready facts."""
    kinds = TallyCounter(str(e.get("kind")) for e in events)
    timestamps = [float(e["ts"]) for e in events if "ts" in e]
    duration = max(timestamps) - min(timestamps) if len(timestamps) > 1 else 0.0
    steps = [e for e in events if e.get("kind") == "search.step"]
    unique_steps = {int(e["step"]) for e in steps if "step" in e}
    summary = {
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "duration_s": duration,
        "steps_seen": len(steps),
        "unique_steps": len(unique_steps),
        #: step events minus unique steps = crash-rollback replays
        "replayed_steps": len(steps) - len(unique_steps),
        "step_rate": len(steps) / duration if duration > 0 else 0.0,
    }
    last_step = max(steps, key=lambda e: e.get("step", -1), default=None)
    if last_step is not None:
        summary["last_step"] = {
            k: last_step[k]
            for k in ("step", "reward", "quality", "entropy")
            if k in last_step
        }
    return summary


def _rows(title: str, rows: List[List[str]]) -> str:
    if not rows:
        return ""
    widths = [max(len(str(row[i])) for row in rows) for i in range(len(rows[0]))]
    lines = [title]
    for row in rows:
        lines.append(
            "  " + "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines) + "\n"


def _metric_rows(series: Mapping[str, Mapping[str, Any]], fmt) -> List[List[str]]:
    rows = []
    for name, by_label in sorted(series.items()):
        for labels, value in sorted(by_label.items()):
            shown = f"{name}{{{labels}}}" if labels else name
            rows.append([shown, fmt(value)])
    return rows


def render_report(directory: PathLike) -> str:
    """The full ``report telemetry`` text for one telemetry directory."""
    directory = pathlib.Path(directory)
    out: List[str] = [f"telemetry report: {directory}"]
    summary = load_summary(directory)
    if summary is None:
        out.append(f"(no {SUMMARY_NAME} — run never flushed a summary)")
    else:
        counters = _metric_rows(summary.get("counters", {}), lambda v: f"{v}")
        gauges = _metric_rows(summary.get("gauges", {}), lambda v: f"{v:.6g}")
        spans = _metric_rows(
            summary.get("histograms", {}),
            lambda s: (
                f"n={s['count']} total={s['total'] * 1e3:.1f}ms "
                f"mean={s['mean'] * 1e3:.3f}ms max={s['max'] * 1e3:.3f}ms"
            ),
        )
        out.append(_rows("counters:", counters) or "counters: (none)")
        out.append(_rows("gauges:", gauges) or "gauges: (none)")
        out.append(_rows("spans:", spans) or "spans: (none)")
    events_dir = directory / EVENTS_DIRNAME
    if not events_dir.exists():
        out.append("(no event log)")
        return "\n".join(part.rstrip("\n") for part in out if part) + "\n"
    events = list(read_events(events_dir))
    facts = summarize_events(events)
    out.append(
        f"events: {facts['events']} over {facts['duration_s']:.2f}s "
        f"({facts['step_rate']:.1f} steps/s)"
        if facts["events"]
        else "events: 0"
    )
    if facts["steps_seen"]:
        out.append(
            f"steps: {facts['unique_steps']} unique, "
            f"{facts['replayed_steps']} replayed after crashes"
        )
        last = facts.get("last_step")
        if last:
            detail = " ".join(
                f"{k}={last[k]:.4g}" if isinstance(last[k], float) else f"{k}={last[k]}"
                for k in ("step", "reward", "quality", "entropy")
                if k in last
            )
            out.append(f"last step: {detail}")
    out.append(
        _rows(
            "event kinds:",
            [[kind, str(count)] for kind, count in facts["kinds"].items()],
        )
    )
    return "\n".join(part.rstrip("\n") for part in out if part) + "\n"
