"""Crash-safe JSON-lines event log.

Counters answer "how much"; the event log answers "what happened when":
checkpoint saves and corrupt-snapshot fallbacks, supervisor restarts
with their crash classification, pipeline exhaustion, per-step search
records.  Operators tail it; ``python -m repro report telemetry``
renders a summary from it.

Appending to a single file is not crash-safe — a preempted writer
leaves a torn final line that poisons every later parse.  The log
therefore buffers events in memory and seals each flush into its own
numbered *segment* file written through
:func:`repro.runtime.atomic.atomic_write_text` (full payload to a temp
file, fsync, rename), so a reader only ever sees whole segments of
whole lines.  Buffered events that have not reached a segment die with
the process — acceptable for observability data, and exactly why the
metric *counters* (not the event log) are what checkpoints persist.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Callable, Dict, Iterator, List, Union

from ..runtime.atomic import atomic_write_text

PathLike = Union[str, pathlib.Path]

#: Segment file pattern: events-<seq>.jsonl, sorted lexicographically.
SEGMENT_GLOB = "events-*.jsonl"


class EventLog:
    """Buffered JSONL sink sealing events into atomic segment files."""

    def __init__(
        self,
        directory: PathLike,
        segment_events: int = 256,
        clock: Callable[[], float] = time.time,
    ):
        if segment_events < 1:
            raise ValueError("segment_events must be >= 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_events = segment_events
        self._clock = clock
        self._buffer: List[str] = []
        self.events_emitted = 0
        self.segments_written = 0
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        """Continue numbering after segments an earlier process wrote."""
        last = -1
        for path in self.directory.glob(SEGMENT_GLOB):
            try:
                last = max(last, int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return last + 1

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> None:
        """Buffer one event; seals a segment when the buffer fills."""
        event: Dict[str, Any] = {"ts": self._clock(), "kind": kind}
        event.update(fields)
        self._buffer.append(json.dumps(event, sort_keys=True, default=str))
        self.events_emitted += 1
        if len(self._buffer) >= self.segment_events:
            self.flush()

    def flush(self) -> None:
        """Seal buffered events into a new segment file (no-op if empty)."""
        if not self._buffer:
            return
        path = self.directory / f"events-{self._next_seq:06d}.jsonl"
        atomic_write_text(path, "\n".join(self._buffer) + "\n")
        self._next_seq += 1
        self.segments_written += 1
        self._buffer.clear()

    def close(self) -> None:
        self.flush()

    @property
    def pending(self) -> int:
        """Events buffered but not yet sealed into a segment."""
        return len(self._buffer)


def read_events(directory: PathLike) -> Iterator[Dict[str, Any]]:
    """Yield every sealed event under ``directory``, oldest segment first.

    Only whole segments exist on disk (see :class:`EventLog`), so there
    is no torn-line case to recover from; an unparseable line is a real
    corruption and raises.
    """
    directory = pathlib.Path(directory)
    for path in sorted(directory.glob(SEGMENT_GLOB)):
        for line in path.read_text().splitlines():
            if line:
                yield json.loads(line)
