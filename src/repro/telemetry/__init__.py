"""Search telemetry: metrics registry, span tracing, event log.

The paper's system is a production NAS *service*; what makes a fleet of
search jobs debuggable is seeing step rates, cache behavior,
reward/entropy trajectories, and restart churn live (Rankitect and
Cummings et al. make the same point about large NAS deployments).  This
package is that layer for the reproduction:

* :mod:`repro.telemetry.metrics` — dependency-free counters / gauges /
  histograms with labeled series;
* :mod:`repro.telemetry.tracing` — span timing over the same registry
  (subsumes ``EvalRuntime.timed``);
* :mod:`repro.telemetry.events` — crash-safe JSON-lines event log;
* :mod:`repro.telemetry.report` — renders a run summary from the event
  log and summary snapshot (CLI: ``python -m repro report telemetry``).

One :class:`Telemetry` object is shared by every subsystem of a run —
searches, eval runtime, pipelines, checkpoint store, supervisor,
hardware testbed — which is what lets the report correlate them.

**Metric naming.**  Dotted lowercase ``<subsystem>.<noun>`` names
(``search.steps``, ``eval.cache.hits``, ``pipeline.outstanding``,
``span.price``); label dimensions instead of name suffixes
(``supervisor.crashes{error=TypeError,retryable=false}``).

**Checkpoint scope.**  Run-scoped metrics (search progress, cache and
pipeline accounting, span times) are captured in checkpoint snapshots
and rolled back on resume, so a crash-resumed run reports totals
bit-identical to an uninterrupted one.  Metrics under
:data:`CHURN_PREFIXES` record process-lifetime events — restarts,
crash classifications, checkpoint saves/loads, corrupt-snapshot
fallbacks, measurement retries — that really happened and are *never*
rolled back.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from ..runtime.atomic import atomic_write_json
from .events import EventLog, read_events
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
    label_key,
)
from .tracing import SPAN_PREFIX, Trace

PathLike = Union[str, pathlib.Path]

#: Version of the exported telemetry state layout.
TELEMETRY_STATE_FORMAT = 1

#: Metric-name prefixes that describe process churn rather than run
#: progress; excluded from checkpoint export/import and from
#: fresh-restart resets (see module docstring).
CHURN_PREFIXES: Tuple[str, ...] = (
    "supervisor.",
    "checkpoint.",
    "recovery.",
    "testbed.",
    # Tape/graph-reuse counters describe this process's compiled-graph
    # cache (rebuilt empty after every restart), not run progress.
    "nn.",
    # Daemon-level accounting (submissions, recoveries, quota rejects)
    # records what really happened to the service, never rolls back
    # with any one job's checkpoint.
    "service.",
)

#: File the final counter snapshot is written to under the telemetry dir.
SUMMARY_NAME = "summary.json"

#: Directory (under the telemetry dir) holding event-log segments.
EVENTS_DIRNAME = "events"


class Telemetry:
    """One run's shared registry + trace + optional on-disk event log.

    Without a ``directory`` the object is a pure in-memory collector
    (cheap enough to leave on in tests); with one, events stream to
    ``<directory>/events/`` and :meth:`write_summary` snapshots the
    registry to ``<directory>/summary.json`` for ``report telemetry``.
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        registry: Optional[MetricsRegistry] = None,
        segment_events: int = 256,
    ):
        self.directory = pathlib.Path(directory) if directory is not None else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = Trace(self.registry)
        self.events: Optional[EventLog] = (
            EventLog(self.directory / EVENTS_DIRNAME, segment_events=segment_events)
            if self.directory is not None
            else None
        )

    # -- metric passthroughs -------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    def span(self, name: str, **labels: Any):
        return self.trace.span(name, **labels)

    def event(self, kind: str, **fields: Any) -> None:
        """Emit to the event log, if one is attached (no-op otherwise)."""
        if self.events is not None:
            self.events.emit(kind, **fields)

    # -- persistence ---------------------------------------------------
    def write_summary(self) -> Optional[pathlib.Path]:
        """Atomically snapshot the registry to ``summary.json``."""
        if self.directory is None:
            return None
        payload = {"format": TELEMETRY_STATE_FORMAT, **self.registry.snapshot()}
        return atomic_write_json(
            self.directory / SUMMARY_NAME, payload, indent=2, sort_keys=True
        )

    def flush(self) -> None:
        """Seal buffered events and refresh the on-disk summary."""
        if self.events is not None:
            self.events.flush()
        self.write_summary()

    def close(self) -> None:
        if self.events is not None:
            self.events.close()
        self.write_summary()

    # -- checkpoint protocol -------------------------------------------
    def export_state(self) -> dict:
        """Run-scoped metric state for checkpoint snapshots."""
        state = self.registry.export_state(exclude_prefixes=CHURN_PREFIXES)
        state["format"] = TELEMETRY_STATE_FORMAT
        return state

    def import_state(self, state: Dict[str, Any]) -> None:
        """Roll run-scoped metrics back to a snapshot's totals."""
        self.registry.import_state(state, exclude_prefixes=CHURN_PREFIXES)

    def reset_run_metrics(self) -> None:
        """Drop run-scoped metrics (a restart with no usable snapshot)."""
        self.registry.reset(exclude_prefixes=CHURN_PREFIXES)


__all__ = [
    "CHURN_PREFIXES",
    "EVENTS_DIRNAME",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SPAN_PREFIX",
    "SUMMARY_NAME",
    "TELEMETRY_STATE_FORMAT",
    "Telemetry",
    "Trace",
    "format_labels",
    "label_key",
    "read_events",
]
