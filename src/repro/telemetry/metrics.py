"""Dependency-free metrics primitives: counters, gauges, histograms.

The search loop runs millions of steps in production; its metrics layer
must cost nanoseconds on the hot path and carry zero dependencies (the
registry is imported by every subsystem, including ones that must load
in a crippled recovery process).  Three metric kinds cover the fleet
dashboards the paper's operations story needs:

* :class:`Counter` — monotone totals (steps completed, cache hits,
  measurement retries);
* :class:`Gauge` — last-observed values (reward, policy entropy,
  outstanding pipeline batches);
* :class:`Histogram` — summary statistics of repeated observations
  (span wall times); count/total/min/max rather than bucketed
  quantiles, which is what the overhead contract affords.

Every metric supports *labeled series*: ``counter.inc(kind="TypeError",
retryable="false")`` keeps one value per label combination, so one
metric name covers a whole family without string formatting on the hot
path.

The registry splits metrics into two scopes (see
:data:`CHURN_PREFIXES` in :mod:`repro.telemetry`):

* **run-scoped** metrics describe search progress and are included in
  checkpoint snapshots, so a crash-resumed run reports totals
  bit-identical to an uninterrupted one;
* **churn** metrics describe process-lifetime events (restarts, crash
  classifications, checkpoint saves, measurement retries) that really
  happened and must *not* be rolled back on resume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]

#: Canonical series key: sorted (label, value) pairs, all strings.
LabelKey = Tuple[Tuple[str, str], ...]

#: The unlabeled series of a metric.
NO_LABELS: LabelKey = ()


def label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    if not labels:
        return NO_LABELS
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(key: LabelKey) -> str:
    """Human-readable ``k=v,k2=v2`` form of a series key ('' unlabeled)."""
    return ",".join(f"{k}={v}" for k, v in key)


class Counter:
    """Monotonically increasing total, one value per label combination."""

    kind = "counter"

    __slots__ = ("name", "_series")

    def __init__(self, name: str):
        self.name = name
        self._series: Dict[LabelKey, Number] = {}

    def inc(self, amount: Number = 1, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the labeled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> Number:
        return self._series.get(label_key(labels), 0)

    def total(self) -> Number:
        """Sum across every labeled series."""
        return sum(self._series.values())

    def series(self) -> Dict[LabelKey, Number]:
        return dict(self._series)


class Gauge:
    """Last-observed value, one per label combination."""

    kind = "gauge"

    __slots__ = ("name", "_series")

    def __init__(self, name: str):
        self.name = name
        self._series: Dict[LabelKey, Number] = {}

    def set(self, value: Number, **labels: object) -> None:
        self._series[label_key(labels)] = value

    def value(self, **labels: object) -> Optional[Number]:
        return self._series.get(label_key(labels))

    def series(self) -> Dict[LabelKey, Number]:
        return dict(self._series)


class Histogram:
    """Streaming summary (count/total/min/max) of repeated observations."""

    kind = "histogram"

    __slots__ = ("name", "_series")

    def __init__(self, name: str):
        self.name = name
        #: key -> [count, total, min, max]
        self._series: Dict[LabelKey, List[float]] = {}

    def observe(self, value: Number, **labels: object) -> None:
        key = label_key(labels)
        cell = self._series.get(key)
        if cell is None:
            self._series[key] = [1, float(value), float(value), float(value)]
            return
        cell[0] += 1
        cell[1] += value
        if value < cell[2]:
            cell[2] = float(value)
        if value > cell[3]:
            cell[3] = float(value)

    def stats(self, **labels: object) -> Optional[Dict[str, float]]:
        cell = self._series.get(label_key(labels))
        if cell is None:
            return None
        count, total, low, high = cell
        return {
            "count": count,
            "total": total,
            "min": low,
            "max": high,
            "mean": total / count if count else 0.0,
        }

    def series(self) -> Dict[LabelKey, Dict[str, float]]:
        return {key: self.stats(**dict(key)) for key in self._series}


Metric = Union[Counter, Gauge, Histogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name-indexed home of every metric a process emits.

    Metrics are created on first use (``registry.counter("search.steps")``)
    and type-checked on every lookup, so the same name cannot silently
    serve as both a counter and a gauge.  Export/import round-trips
    through JSON-safe plain data for checkpointing; both honor
    ``exclude_prefixes`` so churn metrics survive a restore (see module
    docstring).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def metrics(self) -> Dict[str, Metric]:
        return dict(self._metrics)

    # ------------------------------------------------------------------
    @staticmethod
    def _excluded(name: str, exclude_prefixes: Iterable[str]) -> bool:
        return any(name.startswith(prefix) for prefix in exclude_prefixes)

    def snapshot(self) -> dict:
        """JSON-ready view of every metric, for summary files and reports.

        Series are keyed by their ``k=v,...`` label string ('' for the
        unlabeled series), sorted for stable output.
        """
        out: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            series = {
                format_labels(key): value
                for key, value in sorted(metric.series().items())
            }
            out[metric.kind + "s"][name] = series
        return out

    def export_state(self, exclude_prefixes: Iterable[str] = ()) -> dict:
        """Checkpoint-ready snapshot of (run-scoped) metric series.

        Label keys become ``[[k, v], ...]`` lists; histogram cells stay
        ``[count, total, min, max]``.  Metrics whose name starts with an
        excluded prefix are omitted — they belong to the process, not
        the run.
        """
        metrics = []
        for name in sorted(self._metrics):
            if self._excluded(name, exclude_prefixes):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                series = [
                    [[list(pair) for pair in key], list(cell)]
                    for key, cell in sorted(metric._series.items())
                ]
            else:
                series = [
                    [[list(pair) for pair in key], value]
                    for key, value in sorted(metric._series.items())
                ]
            metrics.append({"name": name, "kind": metric.kind, "series": series})
        return {"metrics": metrics}

    def import_state(
        self, state: Mapping, exclude_prefixes: Iterable[str] = ()
    ) -> None:
        """Restore :meth:`export_state` output.

        Every non-excluded metric is dropped and replaced by the
        snapshot's series (a resumed run must not keep counts from the
        steps being rolled back); excluded (churn) metrics are left
        untouched.
        """
        for name in list(self._metrics):
            if not self._excluded(name, exclude_prefixes):
                del self._metrics[name]
        for entry in state["metrics"]:
            name = entry["name"]
            if self._excluded(name, exclude_prefixes):
                continue
            metric = self._get(name, _KINDS[entry["kind"]])
            for raw_key, value in entry["series"]:
                key = tuple((str(k), str(v)) for k, v in raw_key)
                if isinstance(metric, Histogram):
                    metric._series[key] = [
                        value[0],
                        float(value[1]),
                        float(value[2]),
                        float(value[3]),
                    ]
                else:
                    metric._series[key] = value

    def reset(self, exclude_prefixes: Iterable[str] = ()) -> None:
        """Drop every non-excluded metric (a from-scratch restart)."""
        for name in list(self._metrics):
            if not self._excluded(name, exclude_prefixes):
                del self._metrics[name]
