"""Command-line interface: quick looks at the reproduction's systems.

Subcommands:

* ``spaces`` — the Table 5 search spaces and their sizes;
* ``platforms`` — the built-in hardware configurations;
* ``roofline`` — place an MBConv / fused-MBConv block on a platform's
  roofline (the Figure 4 study for one block);
* ``cost`` — the Section 7.3 cost accounting for a training budget;
* ``search`` — a small end-to-end DLRM search (the quickstart);
  ``--telemetry-dir`` records metrics and an event log;
* ``report telemetry`` — summarize a telemetry directory;
* ``perfmodel`` — two-phase performance-model training on a DLRM slice
  (``--jobs`` parallelizes the simulator sweep).

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis import format_report, format_table
from .core import H2ONas, NasCostModel, PerformanceObjective, SearchConfig
from .core.engine import BACKEND_NAMES
from .data import CtrTaskConfig, CtrTeacher
from .hardware import PLATFORMS, platform, simulate
from .models import MbconvSpec, single_block_graph
from .searchspace import per_block_cardinalities, table5_size_rows
from .supernet import DlrmSuperNetwork, DlrmSupernetConfig
from .searchspace import DlrmSpaceConfig, dlrm_search_space


def cmd_spaces(_args: argparse.Namespace) -> str:
    rows = table5_size_rows()
    blocks = per_block_cardinalities()
    out = format_table(
        ["space", "log10(size)", "paper log10"],
        [[name, f"{r.log10_size:.1f}", f"{r.paper_log10:.0f}"] for name, r in rows.items()],
    )
    out += "\nper-block: " + ", ".join(f"{k}={v:,}" for k, v in blocks.items())
    return out


def cmd_platforms(_args: argparse.Namespace) -> str:
    return format_table(
        ["platform", "matrix TFLOP/s", "HBM GB/s", "CMEM MB", "ICI GB/s", "max W"],
        [
            [
                cfg.name,
                cfg.peak_matrix_tflops,
                cfg.hbm_bandwidth_gbs,
                cfg.cmem_capacity_mb,
                cfg.ici_bandwidth_gbs,
                cfg.max_power_w,
            ]
            for cfg in PLATFORMS.values()
        ],
    )


def cmd_roofline(args: argparse.Namespace) -> str:
    hw = platform(args.platform)
    rows = []
    for block_type in ("mbconv", "fused_mbconv"):
        spec = MbconvSpec(block_type, args.depth, args.depth, se_ratio=0.0)
        graph = single_block_graph(spec, args.resolution, batch=args.batch)
        result = simulate(graph, hw)
        rows.append(
            [
                f"{'F-MBC' if block_type == 'fused_mbconv' else 'MBC'}({args.depth})",
                f"{graph.total_flops / graph.total_bytes:.1f}",
                f"{result.achieved_tflops:.1f}",
                f"{result.total_time_s * 1e3:.3f}",
            ]
        )
    return format_table(
        ["block", "intensity FLOPs/B", "attained TFLOP/s", "latency ms"], rows
    )


def cmd_cost(args: argparse.Namespace) -> str:
    model = NasCostModel(vanilla_training_hours=args.training_hours)
    return format_table(
        ["row", "value"],
        [
            ["one-shot search (x vanilla)", f"{1 + model.search_overhead:.1f}"],
            ["one-shot total incl. retrain (x vanilla)", f"{model.one_shot_multiple():.1f}"],
            ["one-shot total (hours)", f"{model.one_shot_hours():.0f}"],
            [
                f"multi-trial with {args.trials} trials (hours)",
                f"{model.multi_trial_hours(args.trials):.0f}",
            ],
            ["one-shot advantage", f"{model.one_shot_advantage(args.trials):.0f}x"],
        ],
    )


def _dlrm_step_time(num_tables: int):
    """Synthetic step-time pricing for the quickstart DLRM search."""

    def step_time(arch):
        cost = 1.0
        for t in range(num_tables):
            cost += 0.05 * arch[f"emb{t}/width_delta"]
            cost += 0.15 * (arch[f"emb{t}/vocab_scale"] - 1.0)
        for s in range(2):
            cost += 0.04 * arch[f"dense{s}/width_delta"]
        return {"step_time": max(0.1, cost)}

    return step_time


def _dlrm_search_builder(
    steps: int,
    seed: int,
    use_cache: bool,
    telemetry=None,
    backend=None,
    workers=None,
):
    """The quickstart DLRM search as (space, fresh-``H2ONas`` factory).

    A *factory* rather than an instance because the supervisor rebuilds
    the search from scratch on every restart attempt.  A shared
    ``telemetry`` handle survives restarts — that is how churn counters
    span attempts while run-scoped ones roll back with the checkpoint.
    """
    num_tables = 2
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=num_tables, num_dense_stacks=2))

    def factory() -> H2ONas:
        teacher = CtrTeacher(
            CtrTaskConfig(num_tables=num_tables, batch_size=64, seed=seed)
        )
        return H2ONas(
            space=space,
            supernet=DlrmSuperNetwork(
                DlrmSupernetConfig(num_tables=num_tables, seed=seed)
            ),
            batch_source=teacher.next_batch,
            performance_fn=_dlrm_step_time(num_tables),
            objectives=[PerformanceObjective("step_time", 1.0, beta=-0.5)],
            config=SearchConfig(
                steps=steps, num_cores=4, warmup_steps=10, seed=seed,
                use_cache=use_cache, telemetry=telemetry,
                backend=backend, workers=workers,
            ),
        )

    return space, factory


def _make_telemetry(args: argparse.Namespace):
    """The run's shared Telemetry, if ``--telemetry-dir`` was given."""
    telemetry_dir = getattr(args, "telemetry_dir", None)
    if telemetry_dir is None:
        return None
    from .telemetry import Telemetry

    return Telemetry(telemetry_dir)


def cmd_search(args: argparse.Namespace) -> str:
    telemetry = _make_telemetry(args)
    space, factory = _dlrm_search_builder(
        args.steps, args.seed, args.cache, telemetry=telemetry,
        backend=args.backend, workers=args.workers,
    )
    nas = factory()
    result = nas.search(
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    out = format_report(space, result)
    if result.eval_stats is not None:
        out += f"\neval runtime: {result.eval_stats.summary()}"
    if telemetry is not None:
        telemetry.close()
        out += (
            f"\ntelemetry written to {args.telemetry_dir} "
            f"(view with: python -m repro report telemetry {args.telemetry_dir})"
        )
    return out


def cmd_supervise(args: argparse.Namespace) -> str:
    from .runtime import (
        CheckpointStore,
        FaultInjector,
        FaultSpec,
        SearchSupervisor,
        SupervisorConfig,
    )

    telemetry = _make_telemetry(args)
    space, factory = _dlrm_search_builder(
        args.steps, args.seed, args.cache, telemetry=telemetry,
        backend=args.backend, workers=args.workers,
    )
    store = CheckpointStore(
        args.checkpoint_dir, keep_last=args.keep_last, telemetry=telemetry
    )
    injector = None
    if args.inject_crash_at:
        injector = FaultInjector(
            [FaultSpec("crash", step=k) for k in args.inject_crash_at],
            seed=args.seed,
        )
    supervisor = SearchSupervisor(
        lambda: factory().search_algorithm,
        store,
        config=SupervisorConfig(
            checkpoint_every=args.checkpoint_every,
            max_restarts=args.max_restarts,
            backoff_base_s=args.backoff_base_s,
        ),
        injector=injector,
    )
    supervised = supervisor.run()
    out = format_report(space, supervised.result)
    out += "\n" + format_table(
        ["attempt", "start step", "steps", "outcome", "backoff s"],
        [
            [
                a.attempt,
                "-" if a.start_step is None else a.start_step,
                a.steps_completed,
                a.outcome if a.error is None else f"{a.outcome}: {a.error}",
                f"{a.backoff_s:.2f}",
            ]
            for a in supervised.attempts
        ],
    )
    out += (
        f"\nrestarts: {supervised.restarts}"
        f"  heartbeats: {supervised.heartbeats}"
        f"  steps replayed: {supervised.steps_replayed}"
        f"  snapshots (final attempt): {supervised.snapshots_written}"
    )
    if telemetry is not None:
        telemetry.close()
        out += (
            f"\ntelemetry written to {args.telemetry_dir} "
            f"(view with: python -m repro report telemetry {args.telemetry_dir})"
        )
    return out


def cmd_report_telemetry(args: argparse.Namespace) -> str:
    from .telemetry.report import render_report

    return render_report(args.directory).rstrip("\n")


def cmd_perfmodel(args: argparse.Namespace) -> str:
    from .models import baseline_production_dlrm
    from .models.timing import DlrmTimingHarness
    from .perfmodel import (
        ArchitectureEncoder,
        PerformanceModel,
        TwoPhaseConfig,
        TwoPhaseTrainer,
    )

    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=args.tables, num_dense_stacks=2)
    )
    harness = DlrmTimingHarness(
        baseline_production_dlrm(num_tables=args.tables), seed=args.seed
    )
    model = PerformanceModel(
        ArchitectureEncoder(space),
        hidden_sizes=(128, 128),
        size_fn=harness.model_size,
        seed=args.seed,
    )
    trainer = TwoPhaseTrainer(
        model,
        space,
        simulate_fn=harness.simulate,
        measure_fn=harness.measure,
        config=TwoPhaseConfig(
            pretrain_epochs=args.epochs,
            finetune_epochs=100,
            finetune_lr=5e-5,
            num_workers=args.jobs,
        ),
        seed=args.seed,
    )
    pre_report = trainer.pretrain(args.samples)
    pretrain_on_hw = trainer.evaluate(100, harness.measure_deterministic)
    trainer.finetune(20)
    finetuned_on_hw = trainer.evaluate(100, harness.measure_deterministic)
    return format_table(
        ["row", "value"],
        [
            ["simulator samples (jobs)", f"{args.samples} ({args.jobs})"],
            ["NRMSE on pretraining samples", f"{pre_report.nrmse_train_head:.2%}"],
            ["NRMSE of pretrained model on hw", f"{pretrain_on_hw[0]:.2%}"],
            ["NRMSE of finetuned model on hw", f"{finetuned_on_hw[0]:.2%}"],
            ["NRMSE of finetuned model on hw (serve)", f"{finetuned_on_hw[1]:.2%}"],
        ],
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="H2O-NAS reproduction (ASPLOS 2023) command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("spaces", help="Table 5 search spaces and sizes").set_defaults(
        handler=cmd_spaces
    )
    sub.add_parser("platforms", help="built-in hardware configs").set_defaults(
        handler=cmd_platforms
    )
    roofline = sub.add_parser("roofline", help="MBConv vs fused MBConv on a platform")
    roofline.add_argument("--platform", default="tpu_v4i", choices=sorted(PLATFORMS))
    roofline.add_argument("--depth", type=int, default=64)
    roofline.add_argument("--resolution", type=int, default=56)
    roofline.add_argument("--batch", type=int, default=64)
    roofline.set_defaults(handler=cmd_roofline)

    cost = sub.add_parser("cost", help="Section 7.3 cost accounting")
    cost.add_argument("--training-hours", type=float, default=1000.0)
    cost.add_argument("--trials", type=int, default=100)
    cost.set_defaults(handler=cmd_cost)

    search = sub.add_parser("search", help="small end-to-end DLRM search")

    def add_search_args(p, checkpoint_dir_required: bool) -> None:
        p.add_argument("--steps", type=int, default=60)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="memoize candidate pricing by decision indices (--no-cache to disable)",
        )
        p.add_argument(
            "--checkpoint-dir",
            default=None,
            required=checkpoint_dir_required,
            help="snapshot full search state into this directory",
        )
        p.add_argument(
            "--checkpoint-every",
            type=int,
            default=10,
            help="steps between snapshots",
        )
        p.add_argument(
            "--keep-last",
            type=int,
            default=3,
            help="snapshots retained in the checkpoint directory",
        )
        p.add_argument(
            "--telemetry-dir",
            default=None,
            help="record run telemetry (metrics summary + event log) "
            "into this directory; view with 'report telemetry'",
        )
        p.add_argument(
            "--backend",
            choices=list(BACKEND_NAMES),
            default=None,
            help="execution backend for per-core shard work "
            "(default: $REPRO_BACKEND, then serial); all backends "
            "produce bit-identical results — processes runs GIL-free "
            "across cores with supernet weights in shared memory",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker count for --backend threads/processes "
            "(default: $REPRO_WORKERS, then min(4, cpu cores))",
        )

    add_search_args(search, checkpoint_dir_required=False)
    search.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="resume from the newest good snapshot in --checkpoint-dir",
    )
    search.set_defaults(handler=cmd_search)

    search_sub = search.add_subparsers(dest="search_command")
    supervise = search_sub.add_parser(
        "supervise",
        help="run the search under the fault-tolerant supervisor "
        "(bounded restarts, resume from checkpoints)",
    )
    add_search_args(supervise, checkpoint_dir_required=True)
    supervise.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        help="restart budget before giving up",
    )
    supervise.add_argument(
        "--backoff-base-s",
        type=float,
        default=0.05,
        help="base of the exponential restart backoff",
    )
    supervise.add_argument(
        "--inject-crash-at",
        type=int,
        nargs="*",
        default=[],
        metavar="STEP",
        help="inject a deterministic crash before each listed step "
        "(fault-tolerance demo)",
    )
    supervise.set_defaults(handler=cmd_supervise)

    report = sub.add_parser(
        "report", help="render reports from run artifacts"
    )
    report_sub = report.add_subparsers(dest="report_command", required=True)
    report_telemetry = report_sub.add_parser(
        "telemetry",
        help="summarize a --telemetry-dir (counters, spans, event log)",
    )
    report_telemetry.add_argument(
        "directory", help="telemetry directory a run wrote with --telemetry-dir"
    )
    report_telemetry.set_defaults(handler=cmd_report_telemetry)

    perfmodel = sub.add_parser(
        "perfmodel", help="two-phase performance-model training (Table 1, small)"
    )
    perfmodel.add_argument("--samples", type=int, default=2000)
    perfmodel.add_argument("--tables", type=int, default=4)
    perfmodel.add_argument("--epochs", type=int, default=30)
    perfmodel.add_argument("--seed", type=int, default=0)
    perfmodel.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the simulator sweep (1 = serial; the "
        "sweep is order-preserving, so results match at any count)",
    )
    perfmodel.set_defaults(handler=cmd_perfmodel)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    print(args.handler(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
