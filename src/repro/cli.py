"""Command-line interface: quick looks at the reproduction's systems.

Subcommands:

* ``spaces`` — the Table 5 search spaces and their sizes;
* ``platforms`` — the built-in hardware configurations;
* ``roofline`` — place an MBConv / fused-MBConv block on a platform's
  roofline (the Figure 4 study for one block);
* ``cost`` — the Section 7.3 cost accounting for a training budget;
* ``search`` — a small end-to-end DLRM search (the quickstart);
  ``--telemetry-dir`` records metrics and an event log;
* ``elastic-train`` — train a once-for-all elastic supernet under the
  progressive-shrinking schedule, saved as a versioned artifact;
* ``specialize`` — policy-only search against a trained artifact for
  one hardware target (no weight updates, cache-hot);
* ``fleet`` — specialize the same artifact for every registered
  platform and print the per-device Pareto table;
* ``report telemetry`` — summarize a telemetry directory;
* ``perfmodel`` — two-phase performance-model training on a DLRM slice
  (``--jobs`` parallelizes the simulator sweep);
* ``serve`` — the persistent NAS service daemon (durable job queue,
  per-tenant quotas, shared worker pool; see :mod:`repro.service`);
* ``submit`` / ``status`` / ``results`` / ``cancel`` / ``jobs`` /
  ``drain`` — clients of a running daemon, JSON on stdout;
* ``worker`` — join a ``--backend distributed`` controller as a worker
  host (``--connect HOST:PORT``).

Conventions: errors go to **stderr** with a non-zero exit code (1 for
runtime/service failures, 2 for usage, 130 after a graceful SIGINT/
SIGTERM stop); stdout carries only results.  SIGTERM/SIGINT during
``search``/``search supervise`` finish the in-flight step, write a
final checkpoint, and exit cleanly — rerun with ``--resume`` (or the
supervisor) to continue.

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

import numpy as np

from .analysis import format_report, format_table
from .core import H2ONas, NasCostModel, PerformanceObjective, SearchConfig
from .core.engine import BACKEND_NAMES
from .hardware import PLATFORMS, platform, simulate
from .models import MbconvSpec, single_block_graph
from .searchspace import per_block_cardinalities, table5_size_rows
from .searchspace import DlrmSpaceConfig, dlrm_search_space
from .service.jobs import (
    dlrm_search_builder,
    elastic_training_builder,
    fleet_sweep,
    platform_performance_fn,
    specialization_builder,
)
from .service.protocol import ServiceError

# Exit codes (stable, documented above): success / failure / usage /
# graceful interrupt (128 + SIGINT, the shell convention).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 130


class CliError(Exception):
    """A handler-level failure with a chosen exit code (stderr, no trace)."""

    def __init__(self, message: str, exit_code: int = EXIT_FAILURE):
        super().__init__(message)
        self.exit_code = exit_code


def positive_int(text: str) -> int:
    """Argparse type: an integer >= 1, rejected at parse time (exit 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def nonnegative_int(text: str) -> int:
    """Argparse type: an integer >= 0, rejected at parse time (exit 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def cmd_spaces(_args: argparse.Namespace) -> str:
    rows = table5_size_rows()
    blocks = per_block_cardinalities()
    out = format_table(
        ["space", "log10(size)", "paper log10"],
        [[name, f"{r.log10_size:.1f}", f"{r.paper_log10:.0f}"] for name, r in rows.items()],
    )
    out += "\nper-block: " + ", ".join(f"{k}={v:,}" for k, v in blocks.items())
    return out


def cmd_platforms(_args: argparse.Namespace) -> str:
    return format_table(
        ["platform", "matrix TFLOP/s", "HBM GB/s", "CMEM MB", "ICI GB/s", "max W"],
        [
            [
                cfg.name,
                cfg.peak_matrix_tflops,
                cfg.hbm_bandwidth_gbs,
                cfg.cmem_capacity_mb,
                cfg.ici_bandwidth_gbs,
                cfg.max_power_w,
            ]
            for cfg in PLATFORMS.values()
        ],
    )


def cmd_roofline(args: argparse.Namespace) -> str:
    hw = platform(args.platform)
    rows = []
    for block_type in ("mbconv", "fused_mbconv"):
        spec = MbconvSpec(block_type, args.depth, args.depth, se_ratio=0.0)
        graph = single_block_graph(spec, args.resolution, batch=args.batch)
        result = simulate(graph, hw)
        rows.append(
            [
                f"{'F-MBC' if block_type == 'fused_mbconv' else 'MBC'}({args.depth})",
                f"{graph.total_flops / graph.total_bytes:.1f}",
                f"{result.achieved_tflops:.1f}",
                f"{result.total_time_s * 1e3:.3f}",
            ]
        )
    return format_table(
        ["block", "intensity FLOPs/B", "attained TFLOP/s", "latency ms"], rows
    )


def cmd_cost(args: argparse.Namespace) -> str:
    model = NasCostModel(vanilla_training_hours=args.training_hours)
    return format_table(
        ["row", "value"],
        [
            ["one-shot search (x vanilla)", f"{1 + model.search_overhead:.1f}"],
            ["one-shot total incl. retrain (x vanilla)", f"{model.one_shot_multiple():.1f}"],
            ["one-shot total (hours)", f"{model.one_shot_hours():.0f}"],
            [
                f"multi-trial with {args.trials} trials (hours)",
                f"{model.multi_trial_hours(args.trials):.0f}",
            ],
            ["one-shot advantage", f"{model.one_shot_advantage(args.trials):.0f}x"],
        ],
    )


def _make_telemetry(args: argparse.Namespace):
    """The run's shared Telemetry, if ``--telemetry-dir`` was given."""
    telemetry_dir = getattr(args, "telemetry_dir", None)
    if telemetry_dir is None:
        return None
    from .telemetry import Telemetry

    return Telemetry(telemetry_dir)


def cmd_search(args: argparse.Namespace) -> str:
    from .runtime import GracefulShutdown, SearchInterrupted

    telemetry = _make_telemetry(args)
    space, factory = dlrm_search_builder(
        args.steps, args.seed, args.cache, telemetry=telemetry,
        backend=args.backend, workers=args.workers,
    )
    nas = factory()
    try:
        with GracefulShutdown() as shutdown:
            result = nas.search(
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
                should_stop=shutdown.should_stop,
            )
    except SearchInterrupted as stop:
        raise CliError(str(stop), EXIT_INTERRUPTED) from None
    finally:
        if telemetry is not None:
            telemetry.close()
    out = format_report(space, result)
    if result.eval_stats is not None:
        out += f"\neval runtime: {result.eval_stats.summary()}"
    if telemetry is not None:
        out += (
            f"\ntelemetry written to {args.telemetry_dir} "
            f"(view with: python -m repro report telemetry {args.telemetry_dir})"
        )
    return out


def cmd_supervise(args: argparse.Namespace) -> str:
    from .runtime import (
        CheckpointStore,
        FaultInjector,
        FaultSpec,
        GracefulShutdown,
        SearchInterrupted,
        SearchSupervisor,
        SupervisorConfig,
    )

    telemetry = _make_telemetry(args)
    space, factory = dlrm_search_builder(
        args.steps, args.seed, args.cache, telemetry=telemetry,
        backend=args.backend, workers=args.workers,
    )
    store = CheckpointStore(
        args.checkpoint_dir, keep_last=args.keep_last, telemetry=telemetry
    )
    injector = None
    if args.inject_crash_at:
        injector = FaultInjector(
            [FaultSpec("crash", step=k) for k in args.inject_crash_at],
            seed=args.seed,
        )
    try:
        with GracefulShutdown() as shutdown:
            supervisor = SearchSupervisor(
                lambda: factory().search_algorithm,
                store,
                config=SupervisorConfig(
                    checkpoint_every=args.checkpoint_every,
                    max_restarts=args.max_restarts,
                    backoff_base_s=args.backoff_base_s,
                ),
                injector=injector,
                should_stop=shutdown.should_stop,
            )
            supervised = supervisor.run()
    except SearchInterrupted as stop:
        raise CliError(str(stop), EXIT_INTERRUPTED) from None
    finally:
        if telemetry is not None:
            telemetry.close()
    out = format_report(space, supervised.result)
    out += "\n" + format_table(
        ["attempt", "start step", "steps", "outcome", "backoff s"],
        [
            [
                a.attempt,
                "-" if a.start_step is None else a.start_step,
                a.steps_completed,
                a.outcome if a.error is None else f"{a.outcome}: {a.error}",
                f"{a.backoff_s:.2f}",
            ]
            for a in supervised.attempts
        ],
    )
    out += (
        f"\nrestarts: {supervised.restarts}"
        f"  heartbeats: {supervised.heartbeats}"
        f"  steps replayed: {supervised.steps_replayed}"
        f"  snapshots (final attempt): {supervised.snapshots_written}"
    )
    if telemetry is not None:
        out += (
            f"\ntelemetry written to {args.telemetry_dir} "
            f"(view with: python -m repro report telemetry {args.telemetry_dir})"
        )
    return out


def cmd_elastic_train(args: argparse.Namespace) -> str:
    from .runtime import (
        CheckpointStore,
        GracefulShutdown,
        SearchInterrupted,
        run_with_checkpoints,
        save_elastic_artifact,
    )

    telemetry = _make_telemetry(args)
    space, schedule, factory = elastic_training_builder(
        args.steps, args.seed, args.cache, telemetry=telemetry,
        backend=args.backend, workers=args.workers,
    )
    engine = factory()
    store = None
    if args.checkpoint_dir is not None:
        store = CheckpointStore(
            args.checkpoint_dir, keep_last=args.keep_last, telemetry=telemetry
        )
    try:
        with GracefulShutdown() as shutdown:
            run = run_with_checkpoints(
                engine,
                store,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
                should_stop=shutdown.should_stop,
            )
    except SearchInterrupted as stop:
        raise CliError(str(stop), EXIT_INTERRUPTED) from None
    finally:
        if telemetry is not None:
            telemetry.close()
    artifact = save_elastic_artifact(
        args.artifact_dir,
        engine.supernet,
        space,
        schedule,
        trained_steps=args.steps,
        seed=args.seed,
        metadata={"workload": "dlrm_quickstart"},
    )
    history = run.result.history
    lines = [
        f"elastic training: {len(history)} steps over {space.name} "
        f"({schedule!r})",
        format_table(
            ["phase", "starts at", "free tags"],
            [
                [p.name, p.start_step, ", ".join(p.free_tags) or "-"]
                for p in schedule.phases
            ],
        ),
        f"quality: {history[0].mean_quality:.4f} -> "
        f"{history[-1].mean_quality:.4f}",
        f"artifact: {artifact.directory}  (weights sha256 "
        f"{artifact.weights_sha[:12]}..., snapshot {artifact.snapshot_id})",
        "specialize with: python -m repro specialize "
        f"--artifact {artifact.directory} --platform <name>",
    ]
    if telemetry is not None:
        lines.append(
            f"telemetry written to {args.telemetry_dir} "
            f"(view with: python -m repro report telemetry {args.telemetry_dir})"
        )
    return "\n".join(lines)


def cmd_specialize(args: argparse.Namespace) -> str:
    from .runtime import (
        CheckpointStore,
        GracefulShutdown,
        SearchInterrupted,
        run_with_checkpoints,
    )

    telemetry = _make_telemetry(args)
    space, factory = specialization_builder(
        args.artifact, args.platform, args.steps, args.seed, args.cache,
        telemetry=telemetry, backend=args.backend, workers=args.workers,
    )
    engine = factory()
    store = None
    if args.checkpoint_dir is not None:
        store = CheckpointStore(
            args.checkpoint_dir, keep_last=args.keep_last, telemetry=telemetry
        )
    try:
        with GracefulShutdown() as shutdown:
            run = run_with_checkpoints(
                engine,
                store,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
                should_stop=shutdown.should_stop,
            )
    except SearchInterrupted as stop:
        raise CliError(str(stop), EXIT_INTERRUPTED) from None
    finally:
        if telemetry is not None:
            telemetry.close()
    result = run.result
    out = format_report(space, result)
    harness, performance_fn, _ = platform_performance_fn(space, args.platform)
    metrics = performance_fn(result.final_architecture)
    out += (
        f"\non {harness.serve_hw.name}: "
        f"serving latency {metrics['serving_latency'] * 1e3:.3f}ms  "
        f"train step {metrics['train_step_time'] * 1e3:.3f}ms  "
        f"model size {metrics['model_size'] / 1e6:.1f}MB"
    )
    if telemetry is not None:
        out += (
            f"\ntelemetry written to {args.telemetry_dir} "
            f"(view with: python -m repro report telemetry {args.telemetry_dir})"
        )
    return out


def cmd_fleet(args: argparse.Namespace) -> str:
    from .analysis import fleet_table
    from .runtime import load_elastic_artifact

    artifact = load_elastic_artifact(args.artifact)
    entries = fleet_sweep(
        args.artifact,
        args.steps,
        args.seed,
        platforms=args.platforms or None,
        use_cache=args.cache,
        backend=args.backend,
        workers=args.workers,
    )
    out = (
        f"fleet sweep from {artifact.directory} "
        f"(trained {artifact.trained_steps} steps, weights sha256 "
        f"{artifact.weights_sha[:12]}...):\n"
    )
    out += fleet_table(entries)
    starred = [e.platform for e in entries if e.pareto]
    out += "\n* = fleet Pareto front on (quality, serving latency): "
    out += ", ".join(starred) if starred else "(empty)"
    return out


def cmd_report_telemetry(args: argparse.Namespace) -> str:
    from .telemetry.report import render_report

    if not pathlib.Path(args.directory).is_dir():
        raise CliError(f"no telemetry directory at {args.directory}")
    return render_report(args.directory).rstrip("\n")


def cmd_perfmodel(args: argparse.Namespace) -> str:
    from .models import baseline_production_dlrm
    from .models.timing import DlrmTimingHarness
    from .perfmodel import (
        ArchitectureEncoder,
        PerformanceModel,
        TwoPhaseConfig,
        TwoPhaseTrainer,
    )

    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=args.tables, num_dense_stacks=2)
    )
    harness = DlrmTimingHarness(
        baseline_production_dlrm(num_tables=args.tables), seed=args.seed
    )
    model = PerformanceModel(
        ArchitectureEncoder(space),
        hidden_sizes=(128, 128),
        size_fn=harness.model_size,
        seed=args.seed,
    )
    trainer = TwoPhaseTrainer(
        model,
        space,
        simulate_fn=harness.simulate,
        measure_fn=harness.measure,
        config=TwoPhaseConfig(
            pretrain_epochs=args.epochs,
            finetune_epochs=100,
            finetune_lr=5e-5,
            num_workers=args.jobs,
        ),
        seed=args.seed,
    )
    pre_report = trainer.pretrain(args.samples)
    pretrain_on_hw = trainer.evaluate(100, harness.measure_deterministic)
    trainer.finetune(20)
    finetuned_on_hw = trainer.evaluate(100, harness.measure_deterministic)
    return format_table(
        ["row", "value"],
        [
            ["simulator samples (jobs)", f"{args.samples} ({args.jobs})"],
            ["NRMSE on pretraining samples", f"{pre_report.nrmse_train_head:.2%}"],
            ["NRMSE of pretrained model on hw", f"{pretrain_on_hw[0]:.2%}"],
            ["NRMSE of finetuned model on hw", f"{finetuned_on_hw[0]:.2%}"],
            ["NRMSE of finetuned model on hw (serve)", f"{finetuned_on_hw[1]:.2%}"],
        ],
    )


# ----------------------------------------------------------------------
# Service subcommands
# ----------------------------------------------------------------------
def _resolve_socket(args: argparse.Namespace) -> str:
    """Socket path from ``--socket`` or ``--spool`` (usage error if neither)."""
    from .service.daemon import SOCKET_NAME

    if getattr(args, "socket", None):
        return args.socket
    if getattr(args, "spool", None):
        return str(pathlib.Path(args.spool) / SOCKET_NAME)
    raise CliError(
        "provide --socket PATH or --spool DIR to locate the daemon", EXIT_USAGE
    )


def _client(args: argparse.Namespace):
    from .service.client import ServiceClient

    return ServiceClient(_resolve_socket(args), timeout=args.timeout)


def cmd_serve(args: argparse.Namespace) -> str:
    from .service.daemon import DaemonConfig, ServiceDaemon
    from .service.scheduler import SchedulerConfig

    config = DaemonConfig(
        spool=args.spool,
        socket_path=args.socket,
        scheduler=SchedulerConfig(
            max_concurrent=args.max_concurrent,
            max_queue_depth=args.max_queue_depth,
            tenant_max_running=args.tenant_max_running,
            tenant_max_queued=args.tenant_max_queued,
            backend=args.backend,
            workers=args.workers,
        ),
    )
    daemon = ServiceDaemon(config)
    print(
        f"repro service daemon listening on {daemon.socket_path} "
        f"(spool: {daemon.spool})",
        file=sys.stderr,
        flush=True,
    )
    summary = daemon.serve()
    return "drained: " + json.dumps(summary, sort_keys=True)


def cmd_submit(args: argparse.Namespace) -> str:
    client = _client(args)
    spec = {
        "kind": "dlrm_quickstart",
        "steps": args.steps,
        "seed": args.seed,
        "cache": args.cache,
        "checkpoint_every": args.checkpoint_every,
        "step_sleep_s": args.step_sleep_s,
    }
    record = client.submit(args.tenant, spec)
    if args.wait:
        record = client.wait(record["job_id"], timeout=args.timeout)
        if record["state"] != "done":
            print(json.dumps(record, indent=2, sort_keys=True))
            raise CliError(
                f"{record['job_id']} finished as {record['state']}"
                + (f": {record['error']}" if record.get("error") else "")
            )
    return json.dumps(record, indent=2, sort_keys=True)


def cmd_status(args: argparse.Namespace) -> str:
    return json.dumps(_client(args).status(args.job_id), indent=2, sort_keys=True)


def cmd_results(args: argparse.Namespace) -> str:
    return json.dumps(_client(args).results(args.job_id), indent=2, sort_keys=True)


def cmd_cancel(args: argparse.Namespace) -> str:
    return json.dumps(_client(args).cancel(args.job_id), indent=2, sort_keys=True)


def cmd_jobs(args: argparse.Namespace) -> str:
    records = _client(args).list_jobs(
        tenant=args.tenant, states=args.state if args.state else None
    )
    return json.dumps(records, indent=2, sort_keys=True)


def cmd_drain(args: argparse.Namespace) -> str:
    return json.dumps(_client(args).drain(), indent=2, sort_keys=True)


def cmd_worker(args: argparse.Namespace) -> str:
    from .core.engine.distributed import run_worker

    print(
        f"repro worker connecting to {args.connect}"
        + (f" (max tasks: {args.max_tasks})" if args.max_tasks else ""),
        file=sys.stderr,
        flush=True,
    )
    try:
        executed = run_worker(
            args.connect,
            worker_id=args.worker_id,
            max_tasks=args.max_tasks,
            connect_timeout=args.timeout,
        )
    except ConnectionError as error:
        raise CliError(f"could not reach controller at {args.connect}: {error}")
    return f"worker exited after {executed} tasks"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="H2O-NAS reproduction (ASPLOS 2023) command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("spaces", help="Table 5 search spaces and sizes").set_defaults(
        handler=cmd_spaces
    )
    sub.add_parser("platforms", help="built-in hardware configs").set_defaults(
        handler=cmd_platforms
    )
    roofline = sub.add_parser("roofline", help="MBConv vs fused MBConv on a platform")
    roofline.add_argument("--platform", default="tpu_v4i", choices=sorted(PLATFORMS))
    roofline.add_argument("--depth", type=positive_int, default=64)
    roofline.add_argument("--resolution", type=positive_int, default=56)
    roofline.add_argument("--batch", type=positive_int, default=64)
    roofline.set_defaults(handler=cmd_roofline)

    cost = sub.add_parser("cost", help="Section 7.3 cost accounting")
    cost.add_argument("--training-hours", type=float, default=1000.0)
    cost.add_argument("--trials", type=positive_int, default=100)
    cost.set_defaults(handler=cmd_cost)

    search = sub.add_parser("search", help="small end-to-end DLRM search")

    def add_search_args(p, checkpoint_dir_required: bool) -> None:
        p.add_argument("--steps", type=positive_int, default=60)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="memoize candidate pricing by decision indices (--no-cache to disable)",
        )
        p.add_argument(
            "--checkpoint-dir",
            default=None,
            required=checkpoint_dir_required,
            help="snapshot full search state into this directory",
        )
        p.add_argument(
            "--checkpoint-every",
            type=positive_int,
            default=10,
            help="steps between snapshots",
        )
        p.add_argument(
            "--keep-last",
            type=positive_int,
            default=3,
            help="snapshots retained in the checkpoint directory",
        )
        p.add_argument(
            "--telemetry-dir",
            default=None,
            help="record run telemetry (metrics summary + event log) "
            "into this directory; view with 'report telemetry'",
        )
        p.add_argument(
            "--backend",
            choices=list(BACKEND_NAMES),
            default=None,
            help="execution backend for per-core shard work "
            "(default: $REPRO_BACKEND, then serial); all backends "
            "produce bit-identical results — processes runs GIL-free "
            "across cores with supernet weights in shared memory",
        )
        p.add_argument(
            "--workers",
            type=positive_int,
            default=None,
            help="worker count for --backend threads/processes/distributed "
            "(default: $REPRO_WORKERS, then min(4, cpu cores)); must be >= 1",
        )

    add_search_args(search, checkpoint_dir_required=False)
    search.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="resume from the newest good snapshot in --checkpoint-dir",
    )
    search.set_defaults(handler=cmd_search)

    search_sub = search.add_subparsers(dest="search_command")
    supervise = search_sub.add_parser(
        "supervise",
        help="run the search under the fault-tolerant supervisor "
        "(bounded restarts, resume from checkpoints)",
    )
    add_search_args(supervise, checkpoint_dir_required=True)
    supervise.add_argument(
        "--max-restarts",
        type=nonnegative_int,
        default=5,
        help="restart budget before giving up",
    )
    supervise.add_argument(
        "--backoff-base-s",
        type=float,
        default=0.05,
        help="base of the exponential restart backoff",
    )
    supervise.add_argument(
        "--inject-crash-at",
        type=int,
        nargs="*",
        default=[],
        metavar="STEP",
        help="inject a deterministic crash before each listed step "
        "(fault-tolerance demo)",
    )
    supervise.set_defaults(handler=cmd_supervise)

    elastic_train = sub.add_parser(
        "elastic-train",
        help="train a once-for-all elastic supernet, save it as an artifact",
    )
    add_search_args(elastic_train, checkpoint_dir_required=False)
    elastic_train.add_argument(
        "--artifact-dir",
        required=True,
        help="write the trained elastic artifact (weights + manifest) here",
    )
    elastic_train.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="resume from the newest good snapshot in --checkpoint-dir",
    )
    elastic_train.set_defaults(handler=cmd_elastic_train)

    specialize = sub.add_parser(
        "specialize",
        help="policy-only search against a trained elastic artifact "
        "for one hardware target",
    )
    add_search_args(specialize, checkpoint_dir_required=False)
    specialize.add_argument(
        "--artifact",
        required=True,
        help="elastic artifact directory written by elastic-train",
    )
    specialize.add_argument(
        "--platform",
        required=True,
        help=f"hardware target ({', '.join(sorted(PLATFORMS))}; "
        "common aliases accepted)",
    )
    specialize.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="resume from the newest good snapshot in --checkpoint-dir",
    )
    specialize.set_defaults(handler=cmd_specialize)

    fleet = sub.add_parser(
        "fleet",
        help="specialize one trained artifact for every fleet platform "
        "and print the per-device Pareto table",
    )
    fleet.add_argument(
        "--artifact",
        required=True,
        help="elastic artifact directory written by elastic-train",
    )
    fleet.add_argument("--steps", type=positive_int, default=20)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--platforms",
        nargs="*",
        default=[],
        metavar="NAME",
        help="subset of platforms to sweep (default: all registered)",
    )
    fleet.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True
    )
    fleet.add_argument("--backend", choices=list(BACKEND_NAMES), default=None)
    fleet.add_argument("--workers", type=positive_int, default=None)
    fleet.set_defaults(handler=cmd_fleet)

    report = sub.add_parser(
        "report", help="render reports from run artifacts"
    )
    report_sub = report.add_subparsers(dest="report_command", required=True)
    report_telemetry = report_sub.add_parser(
        "telemetry",
        help="summarize a --telemetry-dir (counters, spans, event log)",
    )
    report_telemetry.add_argument(
        "directory", help="telemetry directory a run wrote with --telemetry-dir"
    )
    report_telemetry.set_defaults(handler=cmd_report_telemetry)

    perfmodel = sub.add_parser(
        "perfmodel", help="two-phase performance-model training (Table 1, small)"
    )
    perfmodel.add_argument("--samples", type=positive_int, default=2000)
    perfmodel.add_argument("--tables", type=positive_int, default=4)
    perfmodel.add_argument("--epochs", type=positive_int, default=30)
    perfmodel.add_argument("--seed", type=int, default=0)
    perfmodel.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker threads for the simulator sweep (1 = serial; the "
        "sweep is order-preserving, so results match at any count)",
    )
    perfmodel.set_defaults(handler=cmd_perfmodel)

    # -- service ---------------------------------------------------------
    serve = sub.add_parser(
        "serve",
        help="run the persistent NAS service daemon (durable queue, "
        "quotas, shared worker pool); SIGTERM drains gracefully",
    )
    serve.add_argument(
        "--spool",
        required=True,
        help="service state directory (job records, per-job runs, socket)",
    )
    serve.add_argument(
        "--socket",
        default=None,
        help="Unix socket path (default: <spool>/daemon.sock)",
    )
    serve.add_argument("--max-concurrent", type=positive_int, default=2,
                       help="searches running simultaneously")
    serve.add_argument("--max-queue-depth", type=positive_int, default=64,
                       help="queued jobs across all tenants before rejects")
    serve.add_argument("--tenant-max-running", type=positive_int, default=2,
                       help="running jobs one tenant may hold")
    serve.add_argument("--tenant-max-queued", type=positive_int, default=8,
                       help="queued jobs one tenant may hold")
    serve.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="execution backend for shard fan-out inside each job "
        "(default: $REPRO_BACKEND, then serial)",
    )
    serve.add_argument("--workers", type=positive_int, default=None,
                       help="worker-pool size for pooled backends; must be >= 1")
    serve.set_defaults(handler=cmd_serve)

    def add_client_args(p) -> None:
        p.add_argument("--socket", default=None, help="daemon socket path")
        p.add_argument(
            "--spool", default=None,
            help="daemon spool dir (socket defaults to <spool>/daemon.sock)",
        )
        p.add_argument("--timeout", type=float, default=60.0,
                       help="client timeout in seconds")

    submit = sub.add_parser("submit", help="submit a search job to the daemon")
    add_client_args(submit)
    submit.add_argument("--tenant", default="default", help="tenant the job bills to")
    submit.add_argument("--steps", type=positive_int, default=20)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="memoize candidate pricing (--no-cache to disable)",
    )
    submit.add_argument("--checkpoint-every", type=positive_int, default=1,
                        help="steps between the job's durable snapshots")
    submit.add_argument("--step-sleep-s", type=float, default=0.0,
                        help="artificial per-step latency (testing/benchmarks)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job reaches a terminal state")
    submit.set_defaults(handler=cmd_submit)

    status = sub.add_parser("status", help="show one job's record")
    add_client_args(status)
    status.add_argument("job_id")
    status.set_defaults(handler=cmd_status)

    results = sub.add_parser("results", help="fetch a done job's results payload")
    add_client_args(results)
    results.add_argument("job_id")
    results.set_defaults(handler=cmd_results)

    cancel = sub.add_parser(
        "cancel",
        help="cancel a job (queued: now; running: at its next step "
        "boundary, after a final checkpoint)",
    )
    add_client_args(cancel)
    cancel.add_argument("job_id")
    cancel.set_defaults(handler=cmd_cancel)

    jobs = sub.add_parser("jobs", help="list jobs (optionally filtered)")
    add_client_args(jobs)
    jobs.add_argument("--tenant", default=None)
    jobs.add_argument(
        "--state", action="append", default=None, metavar="STATE",
        help="filter by state (repeatable): queued/running/done/failed/cancelled",
    )
    jobs.set_defaults(handler=cmd_jobs)

    drain = sub.add_parser(
        "drain",
        help="gracefully stop the daemon: no new admissions, running "
        "jobs checkpoint and re-queue, then the daemon exits",
    )
    add_client_args(drain)
    drain.set_defaults(handler=cmd_drain)

    worker = sub.add_parser(
        "worker",
        help="join a distributed-backend controller as a worker host: "
        "rehydrates supernets from controller broadcasts and scores "
        "stage tasks until the controller shuts down",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="controller address (a search running --backend distributed "
        "prints/binds one; see DistributedBackend.address)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="label for this worker in controller telemetry "
        "(default: <hostname>/<pid>)",
    )
    worker.add_argument(
        "--max-tasks",
        type=positive_int,
        default=None,
        help="exit abruptly after this many tasks — a deterministic "
        "host-loss injection for resilience testing",
    )
    worker.add_argument(
        "--timeout", type=float, default=10.0, help="connect timeout in seconds"
    )
    worker.set_defaults(handler=cmd_worker)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        out = args.handler(args)
    except CliError as error:
        print(f"error: {error}" if error.exit_code != EXIT_INTERRUPTED
              else f"interrupted: {error}", file=sys.stderr)
        return error.exit_code
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_FAILURE
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except (ValueError, OSError, RuntimeError) as error:
        # Operational failures (bad paths, corrupt artifacts, exhausted
        # restart budgets) are reported, not stack-traced; genuine bugs
        # (TypeError, KeyError, ...) still traceback loudly.
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return EXIT_FAILURE
    if out:
        try:
            print(out)
            sys.stdout.flush()
        except BrokenPipeError:
            # Reader (e.g. `head`) closed the pipe; silence the
            # interpreter's exit-time flush and exit quietly.
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
