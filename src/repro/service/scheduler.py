"""Multiplexing scheduler: N concurrent searches, one shared worker pool.

The scheduler owns the daemon's compute: it claims queued jobs FIFO,
runs each in its own thread under the checkpointed step loop, and caps
concurrency globally (``max_concurrent``) and per tenant
(``tenant_max_running``).  Shard-level fan-out inside every job goes
through the pluggable execution backends of
:mod:`repro.core.engine.backends` — pooled backends share one executor
per ``(kind, workers)`` process-wide, so four concurrent searches
multiplex over *one* worker pool instead of spawning four.

Admission control happens at submit time, before anything touches the
spool: a draining daemon rejects with
:class:`~repro.service.protocol.AdmissionClosedError`, an over-quota
tenant (or a full global queue) with
:class:`~repro.service.protocol.QuotaExceededError`, and a malformed
spec with :class:`~repro.service.protocol.JobSpecError` — all typed,
all surfaced to the client as stable error codes.

Cancellation and draining reuse the runtime's graceful-stop contract:
the job's ``should_stop`` turns true, the in-flight step finishes, a
final checkpoint lands, and :class:`SearchInterrupted` routes the job
to ``cancelled`` (a cancel) or back to ``queued`` (a drain — the next
daemon resumes it bit-identically from that checkpoint).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..runtime.errors import SearchInterrupted
from .jobs import JobSpec, run_job
from .protocol import AdmissionClosedError, JobStateError, QuotaExceededError
from .queue import TERMINAL_STATES, JobQueue, JobRecord


@dataclass(frozen=True)
class SchedulerConfig:
    """Concurrency and admission-control policy."""

    #: searches running simultaneously (each in its own thread)
    max_concurrent: int = 2
    #: queued jobs across all tenants before submissions bounce
    max_queue_depth: int = 64
    #: running jobs one tenant may hold at once
    tenant_max_running: int = 2
    #: queued jobs one tenant may hold at once
    tenant_max_queued: int = 8
    #: dispatcher wake-up cadence (also bounds drain latency)
    poll_interval_s: float = 0.02
    #: execution backend for shard fan-out inside each job
    #: (None: ``$REPRO_BACKEND``, then serial — see ``resolve_backend``)
    backend: Optional[str] = None
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.tenant_max_running < 1 or self.tenant_max_queued < 1:
            raise ValueError("per-tenant quotas must be >= 1")


class _JobHandle:
    """Scheduler-side state of one running job thread."""

    def __init__(self, record: JobRecord):
        self.record = record
        self.cancel = threading.Event()
        self.thread: Optional[threading.Thread] = None


class JobScheduler:
    """Drives the queue: admission, dispatch, cancel, drain.

    ``runner`` is injectable for tests; the default is
    :func:`repro.service.jobs.run_job`.  ``telemetry`` (the *daemon's*
    handle, distinct from each job's private stream) receives
    ``service.*`` counters and gauges.
    """

    def __init__(
        self,
        queue: JobQueue,
        config: Optional[SchedulerConfig] = None,
        telemetry: Optional[Any] = None,
        runner: Callable[..., Dict[str, Any]] = run_job,
    ):
        self.queue = queue
        self.config = config if config is not None else SchedulerConfig()
        self.telemetry = telemetry
        self._runner = runner
        self._lock = threading.RLock()
        self._handles: Dict[str, _JobHandle] = {}
        self._wake = threading.Event()
        self._drain = threading.Event()
        self._stopped = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None

    # -- telemetry helpers ---------------------------------------------
    def _count(self, name: str, n: int = 1, **labels: Any) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(name).inc(n, **labels)

    def _event(self, kind: str, **fields: Any) -> None:
        if self.telemetry is not None:
            self.telemetry.event(kind, **fields)

    def _refresh_gauges(self) -> None:
        if self.telemetry is None:
            return
        counts = self.queue.counts()
        self.telemetry.gauge("service.queued").set(counts["queued"])
        self.telemetry.gauge("service.running").set(counts["running"])

    # -- lifecycle ------------------------------------------------------
    def start(self) -> List[JobRecord]:
        """Recover crashed-over jobs and start the dispatcher.

        Returns the jobs that were found ``running`` in the spool (a
        previous daemon died under them) and are now re-queued to
        resume from their checkpoints.
        """
        recovered = self.queue.recover_running()
        for record in recovered:
            self._count("service.recovered")
            self._event(
                "service.job_recovered",
                job_id=record.job_id,
                tenant=record.tenant,
                progress=record.progress,
                recoveries=record.recoveries,
            )
        self._refresh_gauges()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()
        return recovered

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def running_jobs(self) -> List[str]:
        with self._lock:
            return sorted(self._handles)

    # -- admission ------------------------------------------------------
    def submit(self, tenant: str, spec: Dict[str, Any]) -> JobRecord:
        if self._drain.is_set() or self._stopped.is_set():
            self._count("service.rejected", reason="admission_closed")
            raise AdmissionClosedError(
                "daemon is draining and accepts no new submissions"
            )
        validated = JobSpec.from_dict(spec)  # raises JobSpecError
        with self._lock:
            counts = self.queue.counts()
            if counts["queued"] >= self.config.max_queue_depth:
                self._count("service.rejected", reason="queue_full")
                raise QuotaExceededError(
                    f"global queue is full "
                    f"({counts['queued']}/{self.config.max_queue_depth} queued)"
                )
            tenant_counts = self.queue.counts(tenant)
            if tenant_counts["queued"] >= self.config.tenant_max_queued:
                self._count("service.rejected", reason="tenant_queued")
                raise QuotaExceededError(
                    f"tenant {tenant!r} is at its queued-job quota "
                    f"({tenant_counts['queued']}/{self.config.tenant_max_queued})"
                )
            record = self.queue.submit(tenant, validated.to_dict())
        self._count("service.submitted")
        self._event(
            "service.job_submitted",
            job_id=record.job_id,
            tenant=tenant,
            steps=validated.steps,
        )
        self._refresh_gauges()
        self._wake.set()
        return record

    # -- dispatch -------------------------------------------------------
    def _tenant_running(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        with self._lock:
            for handle in self._handles.values():
                counts[handle.record.tenant] = counts.get(handle.record.tenant, 0) + 1
        return counts

    def _dispatch_loop(self) -> None:
        while not self._stopped.is_set():
            if not self._drain.is_set():
                self._launch_ready()
            self._wake.wait(self.config.poll_interval_s)
            self._wake.clear()

    def _launch_ready(self) -> None:
        while True:
            with self._lock:
                if len(self._handles) >= self.config.max_concurrent:
                    return
                running = self._tenant_running()
                record = self.queue.claim_next(
                    eligible=lambda r: running.get(r.tenant, 0)
                    < self.config.tenant_max_running
                )
                if record is None:
                    return
                handle = _JobHandle(record)
                self._handles[record.job_id] = handle
                thread = threading.Thread(
                    target=self._run_one,
                    args=(record, handle),
                    name=f"repro-job-{record.job_id}",
                    daemon=True,
                )
                handle.thread = thread
            self._count("service.started")
            self._event(
                "service.job_started",
                job_id=record.job_id,
                tenant=record.tenant,
                attempt=record.attempts,
            )
            self._refresh_gauges()
            thread.start()

    def _run_one(self, record: JobRecord, handle: _JobHandle) -> None:
        job_id = record.job_id

        def should_stop() -> bool:
            return handle.cancel.is_set() or self._drain.is_set()

        def on_step(step: int) -> None:
            # Progress is durable and absolute (resumed jobs report the
            # true step index): a restarted daemon shows how far a
            # recovered job had come, and operators watch it via status.
            self.queue.update(job_id, progress=step + 1)

        try:
            self._runner(
                record,
                self.queue.run_dir(job_id),
                should_stop=should_stop,
                on_step=on_step,
                backend=self.config.backend,
                workers=self.config.workers,
            )
        except SearchInterrupted as stop:
            if handle.cancel.is_set():
                final = self.queue.transition(job_id, "cancelled", progress=stop.step)
                self._count("service.finished", state="cancelled")
            else:
                # Drain: the job pauses at its checkpoint and returns to
                # the queue; the next daemon resumes it bit-identically.
                final = self.queue.transition(job_id, "queued", progress=stop.step)
                self._count("service.drained_jobs")
            self._event(
                "service.job_stopped",
                job_id=job_id,
                state=final.state,
                step=stop.step,
            )
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            self.queue.transition(
                job_id, "failed", error=f"{type(error).__name__}: {error}"
            )
            self._count("service.finished", state="failed")
            self._event("service.job_failed", job_id=job_id, error=str(error))
        else:
            final = self.queue.transition(
                job_id, "done", progress=JobSpec.from_dict(record.spec).steps
            )
            self._count("service.finished", state="done")
            self._event(
                "service.job_done", job_id=job_id, attempts=final.attempts
            )
        finally:
            with self._lock:
                self._handles.pop(job_id, None)
            self._refresh_gauges()
            self._wake.set()

    # -- control --------------------------------------------------------
    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued -> ``cancelled`` now; running -> at its
        next step boundary (final checkpoint written first)."""
        record = self.queue.get(job_id)
        if record.state == "queued":
            final = self.queue.transition(job_id, "cancelled")
            self._count("service.finished", state="cancelled")
            self._event("service.job_cancelled", job_id=job_id, was="queued")
            self._refresh_gauges()
            return final
        if record.state == "running":
            with self._lock:
                handle = self._handles.get(job_id)
            if handle is not None:
                handle.cancel.set()
            self._event("service.job_cancel_requested", job_id=job_id)
            return self.queue.get(job_id)
        raise JobStateError(f"{job_id} is already {record.state}")

    def drain(self, timeout: Optional[float] = None) -> List[str]:
        """Stop admitting and launching; park running jobs at their next
        step boundary (back to ``queued``); wait for their threads.

        Returns the ids of jobs that were interrupted.  Idempotent.
        """
        self._drain.set()
        self._wake.set()
        with self._lock:
            interrupted = sorted(self._handles)
            threads = [h.thread for h in self._handles.values() if h.thread]
        for thread in threads:
            thread.join(timeout)
        self._stopped.set()
        self._wake.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
        self._event("service.drained", interrupted=interrupted)
        self._refresh_gauges()
        return interrupted

    def stats(self) -> Dict[str, Any]:
        """Live counts for the ``ping`` verb and the drain summary."""
        counts = self.queue.counts()
        return {
            "queued": counts["queued"],
            "running": counts["running"],
            "done": counts["done"],
            "failed": counts["failed"],
            "cancelled": counts["cancelled"],
            "draining": self.draining,
            "max_concurrent": self.config.max_concurrent,
        }


__all__ = [
    "JobScheduler",
    "SchedulerConfig",
    "TERMINAL_STATES",
]
