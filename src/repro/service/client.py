"""Client for the NAS service: one request-response per connection.

:class:`ServiceClient` is what the ``repro submit/status/results/
cancel/jobs/drain`` subcommands (and tests, and the benchmark) use to
talk to a running daemon.  Connection failures surface as
:class:`~repro.service.protocol.DaemonUnavailableError`; every
daemon-side rejection re-raises as its typed
:class:`~repro.service.protocol.ServiceError` subclass.
"""

from __future__ import annotations

import pathlib
import socket
import time
from typing import Any, Dict, List, Optional, Union

from .protocol import (
    DaemonUnavailableError,
    ProtocolError,
    ResultsNotReadyError,
    decode_response,
    encode_request,
    raise_for_response,
    read_line,
)

PathLike = Union[str, pathlib.Path]


class ServiceClient:
    """Thin synchronous client over the Unix-socket NDJSON protocol."""

    def __init__(self, socket_path: PathLike, timeout: float = 30.0):
        self.socket_path = pathlib.Path(socket_path)
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def request(self, verb: str, **args: Any) -> Any:
        """Send one request, return the response ``data`` or raise typed."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            try:
                sock.connect(str(self.socket_path))
            except (FileNotFoundError, ConnectionRefusedError, OSError) as error:
                raise DaemonUnavailableError(
                    f"no daemon reachable at {self.socket_path} ({error}); "
                    f"start one with: repro serve --spool <dir>"
                ) from None
            sock.sendall(encode_request(verb, args))
            # Shared framing: a daemon dying mid-line raises
            # ProtocolError("truncated frame ...") here instead of
            # handing a partial buffer to the JSON decoder.
            line = read_line(sock)
        finally:
            sock.close()
        if not line:
            raise ProtocolError("daemon closed the connection without replying")
        return raise_for_response(decode_response(line))

    # -- verbs ----------------------------------------------------------
    def submit(self, tenant: str, spec: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.request("submit", tenant=tenant, spec=spec or {})

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("status", job_id=job_id)

    def list_jobs(
        self,
        tenant: Optional[str] = None,
        states: Optional[List[str]] = None,
    ) -> List[Dict[str, Any]]:
        return self.request("list", tenant=tenant, states=states)

    def results(self, job_id: str) -> Dict[str, Any]:
        return self.request("results", job_id=job_id)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", job_id=job_id)

    def drain(self) -> Dict[str, Any]:
        return self.request("drain")

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    # -- polling helpers ------------------------------------------------
    def wait_ready(self, timeout: float = 10.0, poll_s: float = 0.05) -> Dict[str, Any]:
        """Block until the daemon answers ``ping`` (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.ping()
            except DaemonUnavailableError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_s)

    def wait(
        self, job_id: str, timeout: float = 120.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state."""
        from .queue import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {record['state']} after {timeout:.0f}s "
                    f"(progress: step {record['progress']})"
                )
            time.sleep(poll_s)

    def wait_results(
        self, job_id: str, timeout: float = 120.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Wait for ``done`` and fetch the results payload."""
        record = self.wait(job_id, timeout=timeout, poll_s=poll_s)
        if record["state"] != "done":
            raise ResultsNotReadyError(
                f"{job_id} finished as {record['state']}"
                + (f": {record['error']}" if record.get("error") else "")
            )
        return self.results(job_id)
