"""Wire protocol and typed errors for the NAS service.

The daemon and its clients speak newline-delimited JSON over a Unix
domain socket: one request object per connection, one response object
back, both a single ``\\n``-terminated UTF-8 line.  No framing beyond
the newline, no dependencies beyond the standard library — the same
budget as the rest of the repo.

Request::

    {"v": 1, "verb": "submit", "args": {"tenant": "alice", "spec": {...}}}

Response::

    {"v": 1, "ok": true, "data": {...}}
    {"v": 1, "ok": false, "error": {"code": "quota_exceeded", "message": "..."}}

Every failure the daemon can hand a client is a :class:`ServiceError`
subclass with a stable ``code``; :func:`raise_for_response` re-raises
the matching typed exception client-side, so callers catch
``QuotaExceededError`` rather than string-matching messages.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple, Type

#: Version stamped on every request and response line.
PROTOCOL_VERSION = 1

#: Verbs the daemon dispatches (``ping`` is the readiness probe).
VERBS = ("submit", "status", "list", "results", "cancel", "drain", "ping")


class ServiceError(Exception):
    """Base of every typed service failure; ``code`` crosses the wire."""

    code = "service_error"


class ProtocolError(ServiceError):
    """The peer sent something that is not a protocol line."""

    code = "protocol_error"


class UnknownVerbError(ProtocolError):
    code = "unknown_verb"


class JobSpecError(ServiceError):
    """A submitted job spec failed validation (admission-time reject)."""

    code = "invalid_spec"


class UnknownJobError(ServiceError):
    code = "unknown_job"


class QuotaExceededError(ServiceError):
    """Admission control rejected a submission (per-tenant or global)."""

    code = "quota_exceeded"


class AdmissionClosedError(ServiceError):
    """The daemon is draining and accepts no new work."""

    code = "admission_closed"


class JobStateError(ServiceError):
    """The verb is invalid for the job's current state."""

    code = "job_state"


class ResultsNotReadyError(ServiceError):
    """``results`` was asked of a job that has not reached ``done``."""

    code = "results_not_ready"


class DaemonUnavailableError(ServiceError):
    """Client-side only: nothing is listening on the socket."""

    code = "daemon_unavailable"


#: code -> exception class, for client-side re-raising.
ERROR_TYPES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        ProtocolError,
        UnknownVerbError,
        JobSpecError,
        UnknownJobError,
        QuotaExceededError,
        AdmissionClosedError,
        JobStateError,
        ResultsNotReadyError,
        DaemonUnavailableError,
    )
}


# ----------------------------------------------------------------------
# Encoding / decoding
# ----------------------------------------------------------------------
def encode_request(verb: str, args: Dict[str, Any]) -> bytes:
    """One request line, newline-terminated UTF-8."""
    payload = {"v": PROTOCOL_VERSION, "verb": verb, "args": args}
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_request(line: bytes) -> Tuple[str, Dict[str, Any]]:
    """Parse one request line into ``(verb, args)``.

    Raises :class:`ProtocolError` on malformed JSON or shape, and
    :class:`UnknownVerbError` for a verb outside :data:`VERBS` — both
    reach the client as typed error responses, not connection drops.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request is not a JSON line: {error}") from None
    if not isinstance(payload, dict) or "verb" not in payload:
        raise ProtocolError("request must be an object with a 'verb' field")
    if payload.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: daemon speaks v{PROTOCOL_VERSION}, "
            f"request said {payload.get('v')!r}"
        )
    verb = payload["verb"]
    if verb not in VERBS:
        raise UnknownVerbError(f"unknown verb {verb!r}; expected one of {VERBS}")
    args = payload.get("args", {})
    if not isinstance(args, dict):
        raise ProtocolError("'args' must be an object")
    return verb, args


def ok_response(data: Any) -> bytes:
    payload = {"v": PROTOCOL_VERSION, "ok": True, "data": data}
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def error_response(error: Exception) -> bytes:
    code = error.code if isinstance(error, ServiceError) else "service_error"
    payload = {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "error": {"code": code, "message": str(error)},
    }
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_response(line: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"response is not a JSON line: {error}") from None
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("response must be an object with an 'ok' field")
    return payload


def raise_for_response(payload: Dict[str, Any]) -> Any:
    """Return ``data`` from a decoded response, re-raising typed errors."""
    if payload.get("ok"):
        return payload.get("data")
    error = payload.get("error") or {}
    cls = ERROR_TYPES.get(error.get("code", ""), ServiceError)
    raise cls(error.get("message", "unspecified service error"))


# ----------------------------------------------------------------------
# Socket I/O: newline framing (NDJSON verbs) and length-prefixed frames
# ----------------------------------------------------------------------
def read_line(sock: socket.socket, max_bytes: Optional[int] = None) -> bytes:
    """Read one ``\\n``-terminated line; returns the bytes before it.

    A peer may split the line across arbitrarily many ``send`` calls or
    deliver trailing bytes after the newline in the same segment — both
    are handled: we accumulate until the first newline and ignore
    anything after it (the protocol is one request per connection).

    EOF before any byte arrives returns ``b""`` (clean close, e.g. a
    liveness probe).  EOF with a non-empty buffer and no newline is a
    *truncated frame* — the peer died mid-line — and raises
    :class:`ProtocolError` rather than handing the caller a partial
    line that would surface as a confusing JSON parse error.  A line
    longer than ``max_bytes`` (newline still unseen) also raises
    :class:`ProtocolError`.
    """
    chunks = []
    total = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            if total:
                raise ProtocolError(
                    f"truncated frame: peer closed after {total} bytes "
                    f"with no newline"
                )
            return b""
        chunks.append(chunk)
        total += len(chunk)
        if b"\n" in chunk:
            return b"".join(chunks).split(b"\n", 1)[0]
        if max_bytes is not None and total > max_bytes:
            raise ProtocolError(
                f"request line exceeds {max_bytes} bytes"
            )


#: 8-byte big-endian unsigned length prefix for binary frames.
FRAME_HEADER = struct.Struct(">Q")


def recv_exact(sock: socket.socket, nbytes: int) -> Optional[bytes]:
    """Read exactly ``nbytes``; ``None`` on clean EOF at byte 0.

    EOF partway through is a truncated frame and raises
    :class:`ProtocolError` — the distinction lets callers treat a
    connection closed *between* frames as a normal hang-up while a
    close *inside* one is always an error.
    """
    parts = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == nbytes:
                return None
            raise ProtocolError(
                f"truncated frame: peer closed with {remaining} of "
                f"{nbytes} bytes unread"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def read_frame(sock: socket.socket, max_bytes: Optional[int] = None) -> Optional[bytes]:
    """Read one length-prefixed frame; ``None`` on clean EOF.

    The binary sibling of :func:`read_line`, shared by the service
    protocol and the distributed engine transport: an 8-byte big-endian
    length followed by that many payload bytes.  Oversize frames and
    mid-frame EOF raise :class:`ProtocolError`.
    """
    header = recv_exact(sock, FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if max_bytes is not None and length > max_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    if length == 0:
        return b""
    payload = recv_exact(sock, length)
    if payload is None:
        raise ProtocolError(
            f"truncated frame: peer closed before any of {length} "
            f"payload bytes arrived"
        )
    return payload


def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one length-prefixed frame (header + payload, one sendall)."""
    sock.sendall(FRAME_HEADER.pack(len(payload)) + payload)
