"""Job specs and job execution: what one queue entry actually runs.

A job is a parameterized search: a validated :class:`JobSpec` (the
dict a client submits), a factory building the search from it, and
:func:`run_job`, which drives the search under
:func:`~repro.runtime.supervisor.run_with_checkpoints` inside the
job's private run directory::

    <spool>/runs/<job_id>/checkpoints/   resumable snapshots
    <spool>/runs/<job_id>/telemetry/     per-job metrics + event stream
    <spool>/runs/<job_id>/results.json   final payload, atomic write

Results carry a canonical SHA-256 ``fingerprint`` over the
numerics-bearing fields (rewards, entropies, final architecture,
cache counters).  Because checkpointed, resumed, and backend-pooled
runs are all bit-identical to a one-shot serial run, a service job's
fingerprint must equal :func:`one_shot_payload` of the same spec — the
property the durability test and the service benchmark assert.

The quickstart DLRM builder lives here (not in the CLI) so the daemon,
the CLI's ``search``/``supervise`` commands, and the benchmarks share
one definition of the workload.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..runtime.atomic import atomic_write_json
from .protocol import JobSpecError

RESULTS_NAME = "results.json"
CHECKPOINTS_DIRNAME = "checkpoints"
TELEMETRY_DIRNAME = "telemetry"

#: Result payload layout version.
RESULTS_SCHEMA = 1

#: Known job kinds -> builder. One kind today; the registry is the
#: extension point for new workloads (LM serving space, Pareto sweeps).
JOB_KINDS = ("dlrm_quickstart",)


# ----------------------------------------------------------------------
# The quickstart DLRM workload (shared with the CLI)
# ----------------------------------------------------------------------
def dlrm_step_time(num_tables: int):
    """Synthetic step-time pricing for the quickstart DLRM search."""

    def step_time(arch):
        cost = 1.0
        for t in range(num_tables):
            cost += 0.05 * arch[f"emb{t}/width_delta"]
            cost += 0.15 * (arch[f"emb{t}/vocab_scale"] - 1.0)
        for s in range(2):
            cost += 0.04 * arch[f"dense{s}/width_delta"]
        return {"step_time": max(0.1, cost)}

    return step_time


def dlrm_search_builder(
    steps: int,
    seed: int,
    use_cache: bool,
    telemetry=None,
    backend=None,
    workers=None,
):
    """The quickstart DLRM search as ``(space, fresh-H2ONas factory)``.

    A *factory* rather than an instance because the supervisor and the
    service scheduler rebuild the search from scratch on every restart
    attempt.  A shared ``telemetry`` handle survives restarts — that is
    how churn counters span attempts while run-scoped ones roll back
    with the checkpoint.
    """
    from ..core import H2ONas, PerformanceObjective, SearchConfig
    from ..data import CtrTaskConfig, CtrTeacher
    from ..searchspace import DlrmSpaceConfig, dlrm_search_space
    from ..supernet import DlrmSuperNetwork, DlrmSupernetConfig

    num_tables = 2
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=num_tables, num_dense_stacks=2))

    def factory() -> "H2ONas":
        teacher = CtrTeacher(
            CtrTaskConfig(num_tables=num_tables, batch_size=64, seed=seed)
        )
        return H2ONas(
            space=space,
            supernet=DlrmSuperNetwork(
                DlrmSupernetConfig(num_tables=num_tables, seed=seed)
            ),
            batch_source=teacher.next_batch,
            performance_fn=dlrm_step_time(num_tables),
            objectives=[PerformanceObjective("step_time", 1.0, beta=-0.5)],
            config=SearchConfig(
                steps=steps, num_cores=4, warmup_steps=10, seed=seed,
                use_cache=use_cache, telemetry=telemetry,
                backend=backend, workers=workers,
            ),
        )

    return space, factory


# ----------------------------------------------------------------------
# The once-for-all elastic workload (train once, specialize per target)
# ----------------------------------------------------------------------
def elastic_training_builder(
    steps: int,
    seed: int,
    use_cache: bool = True,
    telemetry=None,
    backend=None,
    workers=None,
    schedule=None,
):
    """The quickstart elastic training as ``(space, schedule, factory)``.

    Same DLRM workload as :func:`dlrm_search_builder`, but trained as a
    once-for-all elastic supernet: uniform candidates under the
    progressive-shrinking ``schedule`` (default: the stock three-phase
    schedule over ``steps``), weight updates only, no policy.
    """
    from ..core import SearchConfig
    from ..core.elastic import ElasticTraining
    from ..data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
    from ..searchspace import DlrmSpaceConfig, dlrm_search_space
    from ..supernet import DlrmSuperNetwork, DlrmSupernetConfig, ShrinkSchedule

    num_tables = 2
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=num_tables, num_dense_stacks=2)
    )
    schedule = schedule or ShrinkSchedule.default(steps)

    def factory() -> "ElasticTraining":
        teacher = CtrTeacher(
            CtrTaskConfig(num_tables=num_tables, batch_size=64, seed=seed)
        )
        return ElasticTraining(
            space,
            DlrmSuperNetwork(DlrmSupernetConfig(num_tables=num_tables, seed=seed)),
            SingleStepPipeline(teacher.next_batch),
            schedule=schedule,
            config=SearchConfig(
                steps=steps, num_cores=4, warmup_steps=0, seed=seed,
                use_cache=use_cache, telemetry=telemetry,
                backend=backend, workers=workers,
            ),
        )

    return space, schedule, factory


def platform_performance_fn(space, platform_name):
    """Simulator-backed pricing of quickstart-DLRM candidates on one target.

    Returns ``(harness, performance_fn, objectives)``: the timing
    harness pointed at the target platform for both training and
    serving, plus self-normalized latency/size objectives (targets are
    the *baseline* architecture's metrics on that platform, so every
    target prices candidates against its own roofline).
    """
    from ..core import PerformanceObjective
    from ..hardware import platform
    from ..models import DlrmTimingHarness, baseline_production_dlrm

    hw = platform(platform_name)
    harness = DlrmTimingHarness(
        baseline_production_dlrm(num_tables=2), train_hw=hw, serve_hw=hw, seed=0
    )
    baseline_metrics = harness.metrics_from_simulator(space.default_architecture())
    objectives = [
        PerformanceObjective(
            "serving_latency", baseline_metrics["serving_latency"], beta=-2.0
        ),
        PerformanceObjective(
            "model_size", baseline_metrics["model_size"], beta=-0.5
        ),
    ]
    return harness, harness.metrics_from_simulator, objectives


def specialization_builder(
    artifact_dir,
    platform_name: str,
    steps: int,
    seed: int,
    use_cache: bool = True,
    telemetry=None,
    backend=None,
    workers=None,
):
    """A policy-only specialization against a trained elastic artifact.

    Returns ``(space, factory)``; the factory restores the artifact's
    frozen weights into a fresh supernet *before* engine construction,
    so remote backends publish the trained weights (never republished —
    the optimizer never steps) and the run stays cache-hot.
    """
    from ..core import SearchConfig, relu_reward
    from ..core.elastic import SpecializationSearch
    from ..data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
    from ..runtime import restore_elastic_supernet
    from ..searchspace import DlrmSpaceConfig, dlrm_search_space
    from ..supernet import DlrmSuperNetwork, DlrmSupernetConfig

    num_tables = 2
    space = dlrm_search_space(
        DlrmSpaceConfig(num_tables=num_tables, num_dense_stacks=2)
    )
    harness, performance_fn, objectives = platform_performance_fn(
        space, platform_name
    )

    def factory() -> "SpecializationSearch":
        teacher = CtrTeacher(
            CtrTaskConfig(num_tables=num_tables, batch_size=64, seed=seed)
        )
        supernet = DlrmSuperNetwork(
            DlrmSupernetConfig(num_tables=num_tables, seed=seed)
        )
        restore_elastic_supernet(artifact_dir, supernet, space)
        return SpecializationSearch(
            space,
            supernet,
            SingleStepPipeline(teacher.next_batch),
            reward_fn=relu_reward(objectives),
            performance_fn=performance_fn,
            config=SearchConfig(
                steps=steps, num_cores=4, warmup_steps=0, seed=seed,
                use_cache=use_cache, telemetry=telemetry,
                backend=backend, workers=workers,
            ),
        )

    return space, factory


def fleet_sweep(
    artifact_dir,
    steps: int,
    seed: int,
    platforms=None,
    use_cache: bool = True,
    backend=None,
    workers=None,
    cluster_chips: int = 8,
):
    """Specialize one trained artifact for every fleet target.

    Runs one :func:`specialization_builder` search per platform (all
    against the same frozen weights) and returns the marked-Pareto
    :class:`~repro.analysis.fleet.FleetEntry` rows: per-device final
    architecture, quality/reward, simulated timing on that device, its
    scaling bottleneck, and data-parallel cluster throughput.
    """
    from dataclasses import replace

    from ..analysis import FleetEntry, mark_pareto
    from ..hardware import ClusterModel, PLATFORMS, bottleneck, platform
    from ..models.dlrm import build_graph

    names = list(platforms) if platforms is not None else list(PLATFORMS)
    entries = []
    for name in names:
        hw = platform(name)
        space, factory = specialization_builder(
            artifact_dir, name, steps, seed,
            use_cache=use_cache, backend=backend, workers=workers,
        )
        result = factory().run()
        final = result.final_architecture
        harness, performance_fn, _ = platform_performance_fn(space, name)
        metrics = performance_fn(final)
        spec = harness.spec_of(final)
        train_graph = build_graph(spec)
        step = ClusterModel(
            hw, lambda per_chip, _spec=spec: build_graph(replace(_spec, batch=per_chip))
        ).step(cluster_chips, cluster_chips * spec.batch)
        last = result.history[-1]
        entries.append(
            FleetEntry(
                platform=hw.name,
                indices=[int(i) for i in space.indices_of(final)],
                architecture={k: _scalar(v) for k, v in final.items()},
                quality=float(last.mean_quality),
                reward=float(last.mean_reward),
                train_step_time=float(metrics["train_step_time"]),
                serving_latency=float(metrics["serving_latency"]),
                model_size=float(metrics["model_size"]),
                bottleneck=bottleneck(train_graph, hw),
                cluster_chips=cluster_chips,
                cluster_step_time_s=float(step.step_time_s),
                examples_per_second=float(step.examples_per_second),
                communication_bound=bool(step.communication_bound),
            )
        )
    return mark_pareto(entries)


# ----------------------------------------------------------------------
# Job spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """Validated search parameters a client may submit."""

    kind: str = "dlrm_quickstart"
    steps: int = 20
    seed: int = 0
    cache: bool = True
    #: steps between durable snapshots while the job runs; 1 maximizes
    #: resumability (at most one step is ever replayed after a kill)
    checkpoint_every: int = 1
    #: artificial per-step latency, applied *outside* the search step
    #: (telemetry/scheduling only — numerics are untouched).  Models an
    #: attached-accelerator or testbed wait; also what lets tests hold a
    #: job in ``running`` long enough to kill the daemon under it.
    step_sleep_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise JobSpecError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if not isinstance(self.steps, int) or self.steps < 1:
            raise JobSpecError("spec.steps must be an integer >= 1")
        if not isinstance(self.seed, int):
            raise JobSpecError("spec.seed must be an integer")
        if not isinstance(self.checkpoint_every, int) or self.checkpoint_every < 1:
            raise JobSpecError("spec.checkpoint_every must be an integer >= 1")
        if self.step_sleep_s < 0:
            raise JobSpecError("spec.step_sleep_s must be >= 0")

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobSpecError("spec must be a JSON object")
        unknown = set(payload) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise JobSpecError(
                f"unknown spec fields {sorted(unknown)}; "
                f"allowed: {sorted(cls.__dataclass_fields__)}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise JobSpecError(f"bad spec: {error}") from None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "steps": self.steps,
            "seed": self.seed,
            "cache": self.cache,
            "checkpoint_every": self.checkpoint_every,
            "step_sleep_s": self.step_sleep_s,
        }


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def _scalar(value: Any) -> Any:
    """Canonical JSON scalar: bools/ints/strs pass, numerics to float."""
    if isinstance(value, (bool, int, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _scalar(value.item())
    return float(value)


def result_payload(space: Any, result: Any) -> Dict[str, Any]:
    """Canonical, fingerprinted JSON payload for a ``SearchResult``."""
    stats = result.eval_stats
    body: Dict[str, Any] = {
        "schema": RESULTS_SCHEMA,
        "steps": len(result.history),
        "rewards": [float(r) for r in result.rewards()],
        "entropies": [float(e) for e in result.entropies()],
        "final_architecture": {
            name: _scalar(value) for name, value in result.final_architecture.items()
        },
        "final_architecture_indices": [
            int(i) for i in space.indices_of(result.final_architecture)
        ],
        "batches_used": int(result.batches_used),
        "cache_hits": int(stats.cache_hits) if stats is not None else 0,
        "cache_misses": int(stats.cache_misses) if stats is not None else 0,
    }
    digest = hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return {**body, "fingerprint": digest}


def one_shot_payload(spec: JobSpec, backend: Optional[str] = None) -> Dict[str, Any]:
    """The payload an uninterrupted one-shot run of ``spec`` produces.

    The reference for bit-identity checks: a service job — checkpointed,
    possibly killed and resumed, possibly pooled over shared workers —
    must fingerprint-match this.
    """
    space, factory = dlrm_search_builder(
        spec.steps, spec.seed, spec.cache, backend=backend
    )
    return result_payload(space, factory().search())


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_job(
    record: Any,
    run_dir: pathlib.Path,
    should_stop: Optional[Callable[[], bool]] = None,
    on_step: Optional[Callable[[int], None]] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    sleep_fn: Callable[[float], None] = time.sleep,
) -> Dict[str, Any]:
    """Run one job to completion (or a graceful stop) in ``run_dir``.

    Resumes from the job's newest checkpoint when one exists — the
    scheduler calls this identically for fresh, recovered, and drained
    jobs.  Raises :class:`~repro.runtime.errors.SearchInterrupted` when
    ``should_stop`` fires (final checkpoint already written), and
    returns the fingerprinted results payload (also written atomically
    to ``results.json``) on completion.
    """
    from ..runtime import CheckpointStore, run_with_checkpoints
    from ..telemetry import Telemetry

    spec = JobSpec.from_dict(record.spec)
    run_dir = pathlib.Path(run_dir)
    telemetry = Telemetry(run_dir / TELEMETRY_DIRNAME)
    try:
        space, factory = dlrm_search_builder(
            spec.steps,
            spec.seed,
            spec.cache,
            telemetry=telemetry,
            backend=backend,
            workers=workers,
        )
        search = factory().search_algorithm
        store = CheckpointStore(run_dir / CHECKPOINTS_DIRNAME, telemetry=telemetry)

        def step_cb(step: int) -> None:
            if spec.step_sleep_s:
                sleep_fn(spec.step_sleep_s)
            if on_step is not None:
                on_step(step)

        run = run_with_checkpoints(
            search,
            store=store,
            checkpoint_every=spec.checkpoint_every,
            resume=True,
            on_step=step_cb,
            should_stop=should_stop,
        )
        payload = result_payload(space, run.result)
        atomic_write_json(run_dir / RESULTS_NAME, payload, indent=2, sort_keys=True)
        return payload
    finally:
        telemetry.close()


def load_results(run_dir: pathlib.Path) -> Optional[Dict[str, Any]]:
    """The job's ``results.json`` payload, or ``None`` if not written."""
    path = pathlib.Path(run_dir) / RESULTS_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text())
