"""Durable job queue: one atomic JSON record per job under a spool dir.

Every job the daemon accepts becomes a file —
``<spool>/jobs/job-<seq>.json`` — written exclusively through
:func:`repro.runtime.atomic.atomic_write_json`, so a SIGKILLed daemon
never leaves a torn record: restart sees either the previous state or
the new one.  The queue is therefore *the* source of truth; the
in-memory index is just a cache rebuilt by scanning the spool.

States move ``queued -> running -> done | failed | cancelled``, with
one extra durable edge for crash recovery and draining:
``running -> queued`` (:meth:`JobQueue.recover_running`, and the
scheduler when a drain stops a job at a step boundary).  A recovered
job resumes from its own checkpoint directory, so no completed step is
ever recomputed differently — the crash/resume bit-identity contract
of :mod:`repro.runtime` extends to the service layer.

Per-job isolation lives next to the records: ``<spool>/runs/<job_id>/``
holds the job's checkpoint store, its private telemetry stream
(metrics + JSONL event segments), and its final ``results.json``.
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..runtime.atomic import atomic_write_json
from .protocol import JobStateError, UnknownJobError

PathLike = Union[str, pathlib.Path]

#: Every state a job record can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Legal state transitions (see module docstring for the extra
#: ``running -> queued`` recovery/drain edge).
_TRANSITIONS = {
    "queued": ("running", "cancelled"),
    "running": ("done", "failed", "cancelled", "queued"),
    "done": (),
    "failed": (),
    "cancelled": (),
}

JOBS_DIRNAME = "jobs"
RUNS_DIRNAME = "runs"


@dataclass
class JobRecord:
    """Durable description of one submitted search job."""

    job_id: str
    seq: int
    tenant: str
    spec: Dict[str, Any]
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: times a scheduler picked this job up (1 for an undisturbed run;
    #: +1 for every resume after a daemon death or drain)
    attempts: int = 0
    #: times the job was found ``running`` by a restarted daemon and
    #: re-queued to resume from its checkpoints
    recoveries: int = 0
    #: completed search steps, updated as the job runs
    progress: int = 0
    error: Optional[str] = None
    #: free-form audit trail of state edges: [state, at] pairs
    history: List[List[Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        return cls(**payload)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobQueue:
    """Thread-safe FIFO queue of :class:`JobRecord` persisted per-job.

    All mutation goes through methods that persist before returning;
    readers get copies of the in-memory index (never live references a
    caller could mutate behind the lock's back).
    """

    def __init__(self, spool: PathLike, clock: Callable[[], float] = time.time):
        self.spool = pathlib.Path(spool)
        self.jobs_dir = self.spool / JOBS_DIRNAME
        self.runs_dir = self.spool / RUNS_DIRNAME
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        self._load()

    # -- persistence ----------------------------------------------------
    def _load(self) -> None:
        import json

        for path in sorted(self.jobs_dir.glob("job-*.json")):
            try:
                record = JobRecord.from_dict(json.loads(path.read_text()))
            except (json.JSONDecodeError, TypeError, KeyError):
                # Atomic writes make this unreachable for our own
                # records; a foreign or hand-edited file must not take
                # the whole spool down.
                continue
            self._records[record.job_id] = record

    def _persist(self, record: JobRecord) -> None:
        atomic_write_json(
            self.jobs_dir / f"{record.job_id}.json",
            record.to_dict(),
            indent=2,
            sort_keys=True,
        )

    def run_dir(self, job_id: str) -> pathlib.Path:
        """The job's private working directory (checkpoints, telemetry,
        results); created on first use."""
        path = self.runs_dir / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    # -- submission and lookup -----------------------------------------
    def submit(self, tenant: str, spec: Dict[str, Any]) -> JobRecord:
        if not tenant or not isinstance(tenant, str):
            raise ValueError("tenant must be a non-empty string")
        with self._lock:
            seq = 1 + max((r.seq for r in self._records.values()), default=-1)
            record = JobRecord(
                job_id=f"job-{seq:06d}",
                seq=seq,
                tenant=tenant,
                spec=dict(spec),
                state="queued",
                submitted_at=self._clock(),
            )
            record.history.append(["queued", record.submitted_at])
            self._records[record.job_id] = record
            self._persist(record)
            return JobRecord.from_dict(record.to_dict())

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJobError(f"no such job: {job_id!r}")
            return JobRecord.from_dict(record.to_dict())

    def list(
        self,
        tenant: Optional[str] = None,
        states: Optional[Iterable[str]] = None,
    ) -> List[JobRecord]:
        wanted = tuple(states) if states is not None else None
        with self._lock:
            records = [
                JobRecord.from_dict(r.to_dict())
                for r in sorted(self._records.values(), key=lambda r: r.seq)
                if (tenant is None or r.tenant == tenant)
                and (wanted is None or r.state in wanted)
            ]
        return records

    def counts(self, tenant: Optional[str] = None) -> Dict[str, int]:
        """Jobs per state, optionally restricted to one tenant."""
        out = {state: 0 for state in JOB_STATES}
        with self._lock:
            for record in self._records.values():
                if tenant is None or record.tenant == tenant:
                    out[record.state] += 1
        return out

    # -- state machine --------------------------------------------------
    def transition(self, job_id: str, state: str, **changes: Any) -> JobRecord:
        """Move a job to ``state`` (validated) and persist atomically.

        Extra keyword ``changes`` patch record fields in the same
        durable write (``error=...``, ``progress=...``).
        """
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJobError(f"no such job: {job_id!r}")
            if state not in _TRANSITIONS[record.state]:
                raise JobStateError(
                    f"{job_id} is {record.state}; cannot move to {state}"
                )
            now = self._clock()
            record.state = state
            record.history.append([state, now])
            if state == "running":
                record.started_at = now
                record.attempts += 1
            elif state in TERMINAL_STATES:
                record.finished_at = now
            for key, value in changes.items():
                if not hasattr(record, key):
                    raise AttributeError(f"JobRecord has no field {key!r}")
                setattr(record, key, value)
            self._persist(record)
            return JobRecord.from_dict(record.to_dict())

    def update(self, job_id: str, **changes: Any) -> JobRecord:
        """Patch record fields without a state change (persisted)."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJobError(f"no such job: {job_id!r}")
            for key, value in changes.items():
                if not hasattr(record, key):
                    raise AttributeError(f"JobRecord has no field {key!r}")
                setattr(record, key, value)
            self._persist(record)
            return JobRecord.from_dict(record.to_dict())

    def claim_next(
        self, eligible: Optional[Callable[[JobRecord], bool]] = None
    ) -> Optional[JobRecord]:
        """Claim the oldest queued job passing ``eligible`` (FIFO).

        The claim itself is the durable ``queued -> running`` edge: a
        daemon killed right after this call finds the job ``running``
        on restart and re-queues it via :meth:`recover_running`.
        """
        with self._lock:
            for record in sorted(self._records.values(), key=lambda r: r.seq):
                if record.state != "queued":
                    continue
                if eligible is not None and not eligible(record):
                    continue
                return self.transition(record.job_id, "running")
        return None

    def recover_running(self) -> List[JobRecord]:
        """Re-queue every job a dead daemon left ``running``.

        Called once at daemon start, before the scheduler launches
        anything.  Each recovered job keeps its checkpoints and resumes
        from its newest snapshot when next claimed.
        """
        recovered: List[JobRecord] = []
        with self._lock:
            for record in sorted(self._records.values(), key=lambda r: r.seq):
                if record.state == "running":
                    recovered.append(
                        self.transition(
                            record.job_id,
                            "queued",
                            recoveries=record.recoveries + 1,
                        )
                    )
        return recovered
