"""NAS-as-a-service: a persistent multi-tenant search daemon.

The paper's deployment shape (and Rankitect's, at Meta scale) is not a
one-shot CLI run but a long-lived service: many searches from many
users multiplexed over shared compute, surviving preemption, with
per-job isolation and quotas.  This package composes the pieces the
repo already had — :func:`~repro.runtime.supervisor
.run_with_checkpoints`, the checkpoint store, the telemetry event log,
the shared execution-backend pools — into that production surface:

* :mod:`repro.service.queue` — durable FIFO job queue, one atomic JSON
  record per job under a spool directory; SIGKILL-safe by construction;
* :mod:`repro.service.jobs` — validated job specs, per-job execution
  with private checkpoint/telemetry dirs, fingerprinted results;
* :mod:`repro.service.scheduler` — admission control, per-tenant
  quotas, N concurrent searches over one shared worker pool,
  graceful cancel/drain at step boundaries;
* :mod:`repro.service.daemon` — the ``repro serve`` process: Unix
  socket, newline-delimited JSON verbs (submit / status / list /
  results / cancel / drain / ping);
* :mod:`repro.service.client` — typed client used by the CLI
  subcommands and tests;
* :mod:`repro.service.protocol` — the wire format and the typed error
  taxonomy shared by both sides.

The load-bearing invariant: a job's results are bit-identical to a
one-shot run of the same spec, no matter how many times the daemon was
killed and restarted underneath it.
"""

from .client import ServiceClient
from .daemon import DaemonConfig, ServiceDaemon, serve
from .jobs import JobSpec, dlrm_search_builder, one_shot_payload, result_payload, run_job
from .protocol import (
    AdmissionClosedError,
    DaemonUnavailableError,
    JobSpecError,
    JobStateError,
    ProtocolError,
    QuotaExceededError,
    ResultsNotReadyError,
    ServiceError,
    UnknownJobError,
    UnknownVerbError,
)
from .queue import JOB_STATES, TERMINAL_STATES, JobQueue, JobRecord
from .scheduler import JobScheduler, SchedulerConfig

__all__ = [
    "AdmissionClosedError",
    "DaemonConfig",
    "DaemonUnavailableError",
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "JobScheduler",
    "JobSpec",
    "JobSpecError",
    "JobStateError",
    "ProtocolError",
    "QuotaExceededError",
    "ResultsNotReadyError",
    "SchedulerConfig",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "TERMINAL_STATES",
    "UnknownJobError",
    "UnknownVerbError",
    "dlrm_search_builder",
    "one_shot_payload",
    "result_payload",
    "run_job",
    "serve",
]
