"""The ``repro serve`` daemon: a Unix-socket front end over the scheduler.

One long-lived process per spool directory.  Startup recovers the
spool (re-queueing jobs a dead daemon left ``running``), starts the
scheduler, binds ``<spool>/daemon.sock`` (or ``--socket``), and serves
one newline-delimited JSON request per connection on a small accept
loop — a deliberately boring server: no event loop, no dependencies,
each connection handled on its own short-lived thread.

Shutdown is always a *drain*: whether triggered by the ``drain`` verb
or by SIGTERM/SIGINT (via :class:`~repro.runtime.signals
.GracefulShutdown`), the daemon stops admitting, parks running jobs at
their next step boundary with a final checkpoint (they return to
``queued``), seals its telemetry, removes the socket, and exits.  A
SIGKILL skips all of that by definition — which is fine: the spool's
atomic job records and each job's checkpoint store are the durability
story, and the next start resumes every interrupted job
bit-identically.
"""

from __future__ import annotations

import os
import pathlib
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from ..runtime.atomic import atomic_write_json
from ..runtime.signals import GracefulShutdown
from .jobs import load_results
from .protocol import (
    ProtocolError,
    ResultsNotReadyError,
    ServiceError,
    JobStateError,
    decode_request,
    error_response,
    ok_response,
    read_line,
)
from .queue import JobQueue, TERMINAL_STATES
from .scheduler import JobScheduler, SchedulerConfig

PathLike = Union[str, pathlib.Path]

SOCKET_NAME = "daemon.sock"
DAEMON_INFO_NAME = "daemon.json"
TELEMETRY_DIRNAME = "telemetry"

#: Largest request line the daemon will read (a submit is < 1 KiB).
MAX_REQUEST_BYTES = 1 << 20


@dataclass
class DaemonConfig:
    """Everything ``repro serve`` can set."""

    spool: PathLike
    socket_path: Optional[PathLike] = None
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: accept-loop wake-up; bounds signal-to-drain latency
    accept_timeout_s: float = 0.2

    def resolved_socket(self) -> pathlib.Path:
        if self.socket_path is not None:
            return pathlib.Path(self.socket_path)
        return pathlib.Path(self.spool) / SOCKET_NAME


class ServiceDaemon:
    """Accept loop + verb dispatch over a :class:`JobScheduler`."""

    def __init__(self, config: DaemonConfig):
        self.config = config
        self.spool = pathlib.Path(config.spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        from ..telemetry import Telemetry

        #: the daemon's own stream (service.* metrics, lifecycle events)
        #: — distinct from the per-job streams under ``runs/<job>/``
        self.telemetry = Telemetry(self.spool / TELEMETRY_DIRNAME)
        self.queue = JobQueue(self.spool)
        self.scheduler = JobScheduler(
            self.queue, config.scheduler, telemetry=self.telemetry
        )
        self.socket_path = config.resolved_socket()
        self._listener: Optional[socket.socket] = None
        self._shutdown = GracefulShutdown()
        self._started_monotonic: Optional[float] = None

    # -- socket lifecycle ----------------------------------------------
    def _bind(self) -> socket.socket:
        path = self.socket_path
        if path.exists():
            # Either a live daemon (refuse) or the leftover of a killed
            # one (clean up and take over).
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(0.5)
                probe.connect(str(path))
            except OSError:
                path.unlink()
            else:
                probe.close()
                raise ServiceError(
                    f"another daemon is already listening on {path}"
                )
            finally:
                probe.close()
        path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.listen(16)
        listener.settimeout(self.config.accept_timeout_s)
        return listener

    # -- main loop ------------------------------------------------------
    def serve(self) -> Dict[str, Any]:
        """Run until drained; returns the final stats summary.

        Installs SIGTERM/SIGINT handlers when called from the main
        thread; a background-thread daemon (tests) is drained via the
        ``drain`` verb or :meth:`request_drain`.
        """
        self._started_monotonic = time.monotonic()
        with self._shutdown:
            recovered = self.scheduler.start()
            self._listener = self._bind()
            atomic_write_json(
                self.spool / DAEMON_INFO_NAME,
                {
                    "pid": os.getpid(),
                    "socket": str(self.socket_path),
                    # Wall clock for humans; monotonic anchor for uptime
                    # math, so a clock step (NTP, suspend) cannot make
                    # pollers compute negative or inflated uptimes.
                    "started_at": time.time(),
                    "started_monotonic": self._started_monotonic,
                    "recovered_jobs": [r.job_id for r in recovered],
                },
                indent=2,
                sort_keys=True,
            )
            self.telemetry.event(
                "service.daemon_started",
                pid=os.getpid(),
                recovered=[r.job_id for r in recovered],
            )
            self.telemetry.flush()
            try:
                while not self._shutdown.requested:
                    try:
                        conn, _addr = self._listener.accept()
                    except socket.timeout:
                        continue
                    except OSError:
                        break
                    threading.Thread(
                        target=self._serve_connection,
                        args=(conn,),
                        name="repro-service-conn",
                        daemon=True,
                    ).start()
            finally:
                summary = self._drain_and_close()
        return summary

    def request_drain(self) -> None:
        """Programmatic drain trigger (the ``drain`` verb, tests)."""
        self._shutdown.request()

    def _drain_and_close(self) -> Dict[str, Any]:
        interrupted = self.scheduler.drain()
        stats = self.scheduler.stats()
        stats["interrupted"] = interrupted
        self.telemetry.event("service.daemon_stopped", **stats)
        self.telemetry.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        return stats

    # -- per-connection handling ---------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        # The read sits *inside* the typed-error try: an oversized or
        # truncated request raises ProtocolError, which must reach the
        # client as a typed error response, not a bare connection drop.
        try:
            with conn:
                conn.settimeout(10.0)
                try:
                    line = read_line(conn, MAX_REQUEST_BYTES)
                    verb, args = decode_request(line)
                    data = self._dispatch(verb, args)
                except ServiceError as error:
                    conn.sendall(error_response(error))
                else:
                    conn.sendall(ok_response(data))
        except OSError:
            pass  # client went away mid-exchange; nothing to clean up

    # -- verbs ----------------------------------------------------------
    def _dispatch(self, verb: str, args: Dict[str, Any]) -> Any:
        if verb == "submit":
            tenant = args.get("tenant")
            if not tenant or not isinstance(tenant, str):
                raise ProtocolError("submit requires a non-empty 'tenant' string")
            record = self.scheduler.submit(tenant, args.get("spec") or {})
            return record.to_dict()
        if verb == "status":
            return self.queue.get(self._job_id(args)).to_dict()
        if verb == "list":
            states = args.get("states")
            return [
                r.to_dict()
                for r in self.queue.list(tenant=args.get("tenant"), states=states)
            ]
        if verb == "results":
            record = self.queue.get(self._job_id(args))
            if record.state == "failed":
                raise JobStateError(
                    f"{record.job_id} failed: {record.error or 'unknown error'}"
                )
            if record.state != "done":
                raise ResultsNotReadyError(
                    f"{record.job_id} is {record.state}; results exist once "
                    f"it reaches done"
                )
            payload = load_results(self.queue.run_dir(record.job_id))
            if payload is None:
                raise ResultsNotReadyError(
                    f"{record.job_id} is done but results.json is missing"
                )
            return payload
        if verb == "cancel":
            return self.scheduler.cancel(self._job_id(args)).to_dict()
        if verb == "drain":
            stats = self.scheduler.stats()
            stats["draining"] = True
            self.request_drain()
            return stats
        if verb == "ping":
            stats = self.scheduler.stats()
            stats.update(
                pid=os.getpid(),
                uptime_s=(
                    time.monotonic() - self._started_monotonic
                    if self._started_monotonic is not None
                    else 0.0
                ),
                spool=str(self.spool),
            )
            return stats
        raise ProtocolError(f"verb {verb!r} reached dispatch without a handler")

    @staticmethod
    def _job_id(args: Dict[str, Any]) -> str:
        job_id = args.get("job_id")
        if not job_id or not isinstance(job_id, str):
            raise ProtocolError("this verb requires a 'job_id' string")
        return job_id


def serve(
    spool: PathLike,
    socket_path: Optional[PathLike] = None,
    scheduler: Optional[SchedulerConfig] = None,
) -> Dict[str, Any]:
    """Convenience entry: build a daemon from parts and run it."""
    config = DaemonConfig(
        spool=spool,
        socket_path=socket_path,
        scheduler=scheduler if scheduler is not None else SchedulerConfig(),
    )
    return ServiceDaemon(config).serve()


__all__ = [
    "DaemonConfig",
    "ServiceDaemon",
    "SOCKET_NAME",
    "TERMINAL_STATES",
    "serve",
]
