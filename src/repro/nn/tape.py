"""Tape/graph reuse: build an op graph once, replay it with new inputs.

The closure-graph autograd in :mod:`repro.nn.tensor` re-allocates every
node of the network on every forward pass.  For the search hot path
that is pure overhead: the super-network's topology is *fixed per
architecture* — only the input batch changes between steps.  This
module compiles one forward build into a :class:`CompiledGraph` that
can be replayed:

* **inputs bind by copy** — the graph owns one buffer per named input;
  ``run()`` copies the new batch into the buffers, and every leaf
  tensor (and index view) created from them during tracing sees the
  fresh data for free;
* **forward replay** walks the cached topological order calling each
  node's ``recompute`` closure (which also refreshes the saved
  activation state its backward needs);
* **backward replay** (`Tensor.backward` delegates here via the
  ``_tape`` slot) walks the cached reverse order, skipping the
  per-step topological sort.

Replayed results are bit-identical to a freshly built graph: replay
runs the same NumPy expressions on the same operands in the same
order — nothing is approximated, only the Python graph construction is
skipped (DESIGN.md §11).

:class:`TapeCache` is the LRU keyed the way ``ArchMetricsCache`` keys
metrics — by architecture (plus input-shape signature), with plain-int
hit/miss/eviction counters that are safe to read from the engine
thread and cheap to bump from worker threads.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from .tensor import Tensor, trace_graph

#: Environment kill-switch: set ``REPRO_TAPE=0`` to disable graph reuse
#: (every pass rebuilds eagerly, the pre-reuse behavior).
TAPE_ENV = "REPRO_TAPE"


def tape_enabled() -> bool:
    """Whether tape reuse is enabled for this process (default: yes)."""
    return os.environ.get(TAPE_ENV, "1").lower() not in ("0", "false", "off")


def _walk_retained(root: Tensor) -> List[Tensor]:
    """All reachable nodes with retained parents, parents-first."""
    topo: List[Tensor] = []
    seen: set = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in seen:
                stack.append((parent, False))
    return topo


def _grad_topo(root: Tensor) -> List[Tensor]:
    """Reverse-order gradient node list, exactly as ``Tensor.backward``
    computes it (same DFS, same ordering), cached once per graph."""
    topo: List[Tensor] = []
    seen: set = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in seen:
                stack.append((parent, False))
    return list(reversed(topo))


class CompiledGraph:
    """One traced forward (and its backward) bound to input buffers."""

    __slots__ = ("output", "buffers", "_nodes", "_grad_order", "_lock")

    def __init__(self, output: Tensor, buffers: Mapping[str, np.ndarray]):
        self.output = output
        self.buffers = dict(buffers)
        walk = _walk_retained(output)
        # Interior nodes in forward order; leaves carry no recompute.
        self._nodes = [n for n in walk if n._recompute is not None]
        self._grad_order = _grad_topo(output) if output.requires_grad else []
        self._lock = threading.RLock()
        output._tape = self

    # -- replay --------------------------------------------------------
    def _bind(self, arrays: Mapping[str, np.ndarray]) -> None:
        for name, buf in self.buffers.items():
            src = np.asarray(arrays[name])
            if src.shape != buf.shape:
                raise ValueError(
                    f"input {name!r}: shape {src.shape} does not match "
                    f"compiled shape {buf.shape}"
                )
            np.copyto(buf, src)

    def _replay(self) -> Tensor:
        for node in self._nodes:
            # Reset interior grads so a later backward — cached-order or
            # generic — starts from a clean slate even after many runs.
            node.grad = None
            node.data = node._recompute()
        return self.output

    def run(self, arrays: Mapping[str, np.ndarray]) -> Tensor:
        """Bind ``arrays`` into the input buffers and replay the graph.

        Returns the live output tensor; callers that extract values
        concurrently should use :meth:`call` instead.
        """
        with self._lock:
            self._bind(arrays)
            return self._replay()

    def call(self, arrays: Mapping[str, np.ndarray], consume: Callable[[Tensor], Any]) -> Any:
        """Replay and apply ``consume`` to the output *under the graph
        lock* — the safe way to extract metrics when the same graph may
        be replayed concurrently (e.g. duplicate candidates fanned out
        across backend workers)."""
        with self._lock:
            self._bind(arrays)
            return consume(self._replay())

    # -- backward fast path (invoked from Tensor.backward) -------------
    def run_backward(self, root: Tensor, grad: np.ndarray) -> None:
        root._accumulate(np.asarray(grad, dtype=np.float64))
        for node in self._grad_order:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)


def compile_graph(
    build: Callable[[Dict[str, np.ndarray]], Tensor],
    arrays: Mapping[str, np.ndarray],
) -> CompiledGraph:
    """Trace ``build`` over buffered copies of ``arrays``.

    ``build`` receives a dict of graph-owned arrays (float64 for float
    inputs, int64 for integer ones — the dtypes ``Tensor`` and
    ``gather_rows`` normalize to, so tracing wraps the buffers
    themselves rather than converted copies) and must construct the
    output tensor from them.
    """
    buffers: Dict[str, np.ndarray] = {}
    for name, value in arrays.items():
        value = np.asarray(value)
        dtype = np.int64 if np.issubdtype(value.dtype, np.integer) else np.float64
        buffers[name] = np.array(value, dtype=dtype, copy=True)
    with trace_graph():
        output = build(buffers)
    return CompiledGraph(output, buffers)


class TapeCache:
    """LRU of :class:`CompiledGraph` keyed by (arch, kind, shapes).

    Counters are plain ints: incrementing them from backend workers is
    tolerable (they feed telemetry, not control flow) and reading them
    from the engine thread needs no lock.  Graph construction itself is
    serialized so concurrent misses on one key build a single graph.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._graphs: "OrderedDict[Hashable, CompiledGraph]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(
        self, key: Hashable, factory: Callable[[], CompiledGraph]
    ) -> CompiledGraph:
        with self._lock:
            graph = self._graphs.get(key)
            if graph is not None:
                self._graphs.move_to_end(key)
                self.hits += 1
                return graph
            self.misses += 1
            graph = factory()
            self._graphs[key] = graph
            while len(self._graphs) > self.capacity:
                self._graphs.popitem(last=False)
                self.evictions += 1
            return graph

    def __len__(self) -> int:
        return len(self._graphs)

    def clear(self) -> None:
        with self._lock:
            self._graphs.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._graphs),
        }
