"""Loss functions used across the reproduction.

* Binary cross-entropy with logits — DLRM click-through prediction.
* Softmax cross-entropy — vision classification proxies.
* Mean-squared error — the MLP performance model regression.

Each loss is a single fused graph node: the forward computes the scalar
directly from the logits' data and the backward applies the closed-form
gradient, so the loss adds one node to the graph instead of a chain of
elementwise ops.  All label/target-derived values are recomputed inside
the node, which keeps the losses replayable by :mod:`repro.nn.tape`
(labels may be views of a tape input buffer).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _unbroadcast


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically-stable binary cross entropy on raw logits.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))``, which is exact for
    arbitrarily large logits.  (A previous implementation went through
    ``sigmoid`` + ``log(p + 1e-9)``, which clamps the loss at
    ``-log(1e-9)`` and zeroes the gradient once logits saturate the
    sigmoid — precisely the regime where a miscalibrated head most
    needs gradient signal.)

    The gradient is the classic ``(sigmoid(x) - y) / n``.
    """
    targets = np.asarray(targets, dtype=np.float64)
    out_shape = np.broadcast_shapes(logits.data.shape, targets.shape)
    inv = 1.0 / max(1, int(np.prod(out_shape)))

    def compute() -> np.ndarray:
        x = logits.data
        elem = np.maximum(x, 0.0) - x * targets + np.log1p(np.exp(-np.abs(x)))
        return np.asarray(elem.mean())

    def backward(grad: np.ndarray) -> None:
        x = logits.data
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        d = (sig - targets) * (np.asarray(grad) * inv)
        logits._accumulate(_unbroadcast(np.broadcast_to(d, out_shape), x.shape))

    return Tensor(compute(), parents=(logits,), backward=backward, recompute=compute)


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross entropy of integer ``labels`` against ``logits``.

    ``logits`` has shape ``(batch, classes)``; the log-sum-exp is
    stabilized by subtracting the rowwise max.  The gradient is
    ``(softmax - onehot) / batch``.
    """
    saved: dict = {}

    def compute() -> np.ndarray:
        x = logits.data
        idx = np.asarray(labels, dtype=np.int64)
        shift = x.max(axis=1, keepdims=True)
        shifted = np.clip(x - shift, -700.0, 700.0)
        exp = np.exp(shifted)
        total = exp.sum(axis=1, keepdims=True)
        saved["probs"] = exp / total
        saved["idx"] = idx
        rows = np.arange(idx.shape[0])
        picked = shifted[rows, idx] - np.log(total[rows, 0])
        return np.asarray(-picked.mean())

    def backward(grad: np.ndarray) -> None:
        probs, idx = saved["probs"], saved["idx"]
        scale = np.asarray(grad) / idx.shape[0]
        d = probs * scale
        d[np.arange(idx.shape[0]), idx] -= scale
        logits._accumulate(d)

    return Tensor(compute(), parents=(logits,), backward=backward, recompute=compute)


def mse(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against constant targets."""
    targets = np.asarray(targets, dtype=np.float64)
    out_shape = np.broadcast_shapes(predictions.data.shape, targets.shape)
    inv = 1.0 / max(1, int(np.prod(out_shape)))
    saved: dict = {}

    def compute() -> np.ndarray:
        saved["diff"] = diff = predictions.data - targets
        return np.asarray((diff * diff).mean())

    def backward(grad: np.ndarray) -> None:
        d = (np.asarray(grad) * inv) * saved["diff"] * 2.0
        predictions._accumulate(
            _unbroadcast(np.broadcast_to(d, out_shape), predictions.data.shape)
        )

    return Tensor(compute(), parents=(predictions,), backward=backward, recompute=compute)


def accuracy(logits: Tensor, labels: np.ndarray) -> float:
    """Top-1 accuracy for classification logits."""
    predicted = logits.data.argmax(axis=1)
    return float((predicted == np.asarray(labels)).mean())


def binary_accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Accuracy of thresholded sigmoid predictions."""
    predicted = (logits.data > 0.0).astype(np.float64)
    return float((predicted == np.asarray(targets)).mean())
