"""Loss functions used across the reproduction.

* Binary cross-entropy with logits — DLRM click-through prediction.
* Softmax cross-entropy — vision classification proxies.
* Mean-squared error — the MLP performance model regression.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically-stable binary cross entropy on raw logits.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))`` expressed through the
    autograd primitives.
    """
    targets = np.asarray(targets, dtype=np.float64)
    probs = logits.sigmoid()
    eps = 1e-9
    loss = -(
        Tensor(targets) * (probs + eps).log()
        + Tensor(1.0 - targets) * (1.0 - probs + eps).log()
    )
    return loss.mean()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross entropy of integer ``labels`` against ``logits``.

    ``logits`` has shape ``(batch, classes)``; the log-sum-exp is
    stabilized by subtracting the rowwise max (a constant w.r.t. the
    gradient path, applied through detached data).
    """
    labels = np.asarray(labels, dtype=np.int64)
    shift = logits.data.max(axis=1, keepdims=True)
    shifted = logits - Tensor(shift)
    log_norm = shifted.exp().sum(axis=1, keepdims=True).log()
    log_probs = shifted - log_norm
    picked_mask = np.zeros(logits.shape)
    picked_mask[np.arange(labels.shape[0]), labels] = 1.0
    picked = (log_probs * Tensor(picked_mask)).sum(axis=1)
    return -picked.mean()


def mse(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against constant targets."""
    diff = predictions - Tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()


def accuracy(logits: Tensor, labels: np.ndarray) -> float:
    """Top-1 accuracy for classification logits."""
    predicted = logits.data.argmax(axis=1)
    return float((predicted == np.asarray(labels)).mean())


def binary_accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Accuracy of thresholded sigmoid predictions."""
    predicted = (logits.data > 0.0).astype(np.float64)
    return float((predicted == np.asarray(targets)).mean())
