"""Learning-rate schedules for long training runs.

Production training (and the paper's super-network searches) use
warmup + decay schedules; these helpers compute the multiplier for a
step and apply it to any :class:`~repro.nn.optim.Optimizer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .optim import Optimizer


@dataclass(frozen=True)
class CosineSchedule:
    """Linear warmup followed by cosine decay to ``final_fraction``."""

    total_steps: int
    warmup_steps: int = 0
    final_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if not (0 <= self.warmup_steps < self.total_steps):
            raise ValueError("warmup_steps must be in [0, total_steps)")
        if not (0.0 <= self.final_fraction <= 1.0):
            raise ValueError("final_fraction must be in [0, 1]")

    def multiplier(self, step: int) -> float:
        """LR multiplier at ``step`` (0-indexed; clamps past the end)."""
        if step < 0:
            raise ValueError("step must be >= 0")
        if self.warmup_steps and step < self.warmup_steps:
            return (step + 1) / self.warmup_steps
        span = max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, (step - self.warmup_steps) / span)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_fraction + (1.0 - self.final_fraction) * cosine


@dataclass(frozen=True)
class StepDecaySchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    step_size: int
    gamma: float = 0.5

    def __post_init__(self) -> None:
        if self.step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not (0.0 < self.gamma <= 1.0):
            raise ValueError("gamma must be in (0, 1]")

    def multiplier(self, step: int) -> float:
        if step < 0:
            raise ValueError("step must be >= 0")
        return self.gamma ** (step // self.step_size)


class ScheduledOptimizer:
    """Wraps an optimizer, applying a schedule's multiplier per step."""

    def __init__(self, optimizer: Optimizer, schedule):
        self.optimizer = optimizer
        self.schedule = schedule
        self._base_lr = optimizer.lr
        self._step = 0

    @property
    def current_lr(self) -> float:
        return self._base_lr * self.schedule.multiplier(self._step)

    @property
    def params(self):
        return self.optimizer.params

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()

    def step(self) -> None:
        self.optimizer.lr = self.current_lr
        self.optimizer.step()
        self._step += 1

    def clip_gradients(self, max_norm: float) -> float:
        return self.optimizer.clip_gradients(max_norm)

    def state_dict(self) -> dict:
        """Schedule position plus the wrapped optimizer's state.

        Without this, checkpoint resume used to restore only the inner
        optimizer and silently restart the schedule at step 0 — the
        resumed run trained at warmup learning rates mid-search.
        """
        return {
            "step": self._step,
            "base_lr": self._base_lr,
            "optimizer": self.optimizer.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._step = int(state["step"])
        self._base_lr = float(state["base_lr"])
        self.optimizer.load_state_dict(state["optimizer"])
