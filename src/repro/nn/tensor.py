"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the neural-network substrate of the reproduction: the
weight-sharing super-networks (Section 5 of the paper) and the MLP
performance model (Section 6.2) are trained with it.  It implements a
small, explicit autograd ``Tensor`` supporting the operations those
networks need: broadcasting arithmetic, matmul, common activations
(including the squared ReLU that H2O-NAS discovers for CoAtNet-H),
reductions, reshaping, gather (embedding lookup), and masking.

The design is deliberately simple: each ``Tensor`` records its parents
and a closure that accumulates gradients into them; ``backward`` runs a
topological sort and applies the closures in reverse order.

Two hot-path mechanisms live here (see DESIGN.md §11):

* every op also records a ``recompute`` closure that re-evaluates its
  forward value from its parents' current ``data``, which is what lets
  :mod:`repro.nn.tape` replay a built graph with new inputs instead of
  re-allocating the closure graph every step;
* ``_accumulate`` keeps a per-node gradient buffer (``_buf``) that
  survives ``zero_grad``, so steady-state training reuses one array per
  node instead of allocating a fresh copy on every first touch.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Thread-local flag set while a graph is being traced for tape reuse.
#: While active, tensors retain their parents and recompute closures
#: even when no gradient flows through them, so constant sub-graphs
#: (e.g. quality-only forwards) stay replayable.
_TRACE_STATE = threading.local()


def _tracing() -> bool:
    return getattr(_TRACE_STATE, "active", False)


class trace_graph:
    """Context manager enabling graph tracing on the current thread."""

    def __enter__(self) -> "trace_graph":
        self._previous = _tracing()
        _TRACE_STATE.active = True
        return self

    def __exit__(self, *exc) -> None:
        _TRACE_STATE.active = self._previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting may have added leading axes and/or stretched axes of
    size one; the gradient of a broadcast input is the sum over the
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size one.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode gradient tracking."""

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_parents",
        "_backward",
        "_recompute",
        "_buf",
        "_tape",
        "name",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
        recompute: Optional[Callable[[], np.ndarray]] = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self._buf: Optional[np.ndarray] = None
        self._tape = None
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        if self.requires_grad:
            self._parents = parents
            self._backward = backward
            self._recompute = recompute
        elif parents and _tracing():
            # Constant sub-graph inside a trace: keep the structure so
            # tape replay can refresh it, but never run backward on it.
            self._parents = parents
            self._backward = None
            self._recompute = recompute
        else:
            self._parents = ()
            self._backward = None
            self._recompute = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a view of the same data with no gradient history."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Gradient accumulation
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            grad = np.asarray(grad, dtype=np.float64)
            buf = self._buf
            if buf is not None and buf.shape == grad.shape:
                np.copyto(buf, grad)
                self.grad = buf
            else:
                self.grad = self._buf = np.array(grad, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        # The preallocated buffer survives: the next backward pass
        # copies into it instead of allocating a fresh array.
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor to every ancestor.

        ``grad`` defaults to ones (i.e. this tensor must be a scalar
        loss unless an explicit output gradient is provided).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad tracking")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar")
            grad = np.ones_like(self.data)
        tape = self._tape
        if tape is not None:
            # Compiled-graph fast path: the reverse topological order was
            # cached at compile time (it is a function of graph structure
            # only), so replayed steps skip the sort entirely.
            tape.run_backward(self, grad)
            return
        topo: List[Tensor] = []
        seen: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def compute() -> np.ndarray:
            return self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor(compute(), parents=(self, other), backward=backward, recompute=compute)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def compute() -> np.ndarray:
            return -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def compute() -> np.ndarray:
            return self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor(compute(), parents=(self, other), backward=backward, recompute=compute)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)

        def compute() -> np.ndarray:
            return self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor(compute(), parents=(self, other), backward=backward, recompute=compute)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def compute() -> np.ndarray:
            return self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)

        def compute() -> np.ndarray:
            return self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            g = np.asarray(grad)
            if self.requires_grad:
                if b.ndim == 1:
                    if a.ndim == 1:
                        # (k,) @ (k,) -> scalar
                        self._accumulate(g * b)
                    else:
                        # (..., m, k) @ (k,) -> (..., m)
                        self._accumulate(_unbroadcast(g[..., None] * b, a.shape))
                elif a.ndim == 1:
                    # (k,) @ (..., k, n) -> (..., n)
                    ga = (b @ g[..., None])[..., 0]
                    self._accumulate(_unbroadcast(ga, a.shape))
                else:
                    ga = g @ np.swapaxes(b, -1, -2)
                    self._accumulate(_unbroadcast(ga, a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    if b.ndim == 1:
                        # (k,) @ (k,) -> scalar
                        other._accumulate(g * a)
                    else:
                        # (k,) @ (..., k, n) -> (..., n)
                        gb = a[:, None] * g[..., None, :]
                        other._accumulate(_unbroadcast(gb, b.shape))
                elif b.ndim == 1:
                    # (..., m, k) @ (k,) -> (..., m)
                    gb = (np.swapaxes(a, -1, -2) @ g[..., None])[..., 0]
                    other._accumulate(_unbroadcast(gb, b.shape))
                else:
                    gb = np.swapaxes(a, -1, -2) @ g
                    other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor(compute(), parents=(self, other), backward=backward, recompute=compute)

    # ------------------------------------------------------------------
    # Activations and element-wise functions
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        saved = {}

        def compute() -> np.ndarray:
            saved["mask"] = mask = self.data > 0
            return self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * saved["mask"])

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def squared_relu(self) -> "Tensor":
        """``relu(x)**2`` — the activation H2O-NAS selects for CoAtNet-H."""
        saved = {}

        def compute() -> np.ndarray:
            saved["pos"] = pos = np.maximum(self.data, 0.0)
            return pos * pos

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 2.0 * saved["pos"])

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def sigmoid(self) -> "Tensor":
        saved = {}

        def compute() -> np.ndarray:
            saved["out"] = out = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
            return out

        def backward(grad: np.ndarray) -> None:
            out = saved["out"]
            self._accumulate(grad * out * (1.0 - out))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def swish(self) -> "Tensor":
        """``x * sigmoid(x)`` (a.k.a. SiLU), used in the CNN search space."""
        saved = {}

        def compute() -> np.ndarray:
            saved["sig"] = sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
            return self.data * sig

        def backward(grad: np.ndarray) -> None:
            sig = saved["sig"]
            self._accumulate(grad * (sig + self.data * sig * (1.0 - sig)))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def gelu(self) -> "Tensor":
        """Tanh approximation of GELU, used in the ViT search space."""
        c = np.sqrt(2.0 / np.pi)
        saved = {}

        def compute() -> np.ndarray:
            inner = c * (self.data + 0.044715 * self.data**3)
            saved["tanh"] = tanh = np.tanh(inner)
            return 0.5 * self.data * (1.0 + tanh)

        def backward(grad: np.ndarray) -> None:
            tanh = saved["tanh"]
            sech2 = 1.0 - tanh**2
            d_inner = c * (1.0 + 3 * 0.044715 * self.data**2)
            self._accumulate(grad * (0.5 * (1.0 + tanh) + 0.5 * self.data * sech2 * d_inner))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def tanh(self) -> "Tensor":
        saved = {}

        def compute() -> np.ndarray:
            saved["out"] = out = np.tanh(self.data)
            return out

        def backward(grad: np.ndarray) -> None:
            out = saved["out"]
            self._accumulate(grad * (1.0 - out**2))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``, as one fused node.

        The stabilizing max-shift is a constant w.r.t. the gradient (its
        contribution cancels exactly); fusing it into the node keeps it
        fresh under tape replay, where a composed constant would go
        stale.  The backward applies the exact shifted-exp/sum/div
        chain rule the composed implementation produced.
        """
        saved = {}

        def compute() -> np.ndarray:
            shift = self.data.max(axis=axis, keepdims=True)
            exp = np.exp(np.clip(self.data - shift, -700.0, 700.0))
            total = exp.sum(axis=axis, keepdims=True)
            saved["exp"] = exp
            saved["total"] = total
            return exp / total

        def backward(grad: np.ndarray) -> None:
            exp, total = saved["exp"], saved["total"]
            d_exp = np.array(grad / total, copy=True)
            d_total = _unbroadcast(-grad * exp / (total**2), total.shape)
            d_exp += np.broadcast_to(d_total, exp.shape)
            self._accumulate(_unbroadcast(d_exp * exp, self.data.shape))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def exp(self) -> "Tensor":
        saved = {}

        def compute() -> np.ndarray:
            saved["out"] = out = np.exp(np.clip(self.data, -700.0, 700.0))
            return out

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * saved["out"])

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def log(self) -> "Tensor":
        def compute() -> np.ndarray:
            return np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    # ------------------------------------------------------------------
    # Reductions and shape manipulation
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def compute() -> np.ndarray:
            return self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        def compute() -> np.ndarray:
            return self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])  # numpy-style transpose((1, 0))
        axes_t = axes if axes else tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes_t)

        def compute() -> np.ndarray:
            return self.data.transpose(axes_t)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows by integer index — the embedding-lookup primitive.

        ``indices`` has any shape; the output has shape
        ``indices.shape + (row_width,)``.  The index array is read anew
        on every recompute, so a replayed graph whose index array is a
        bound input buffer sees fresh ids.
        """
        indices = np.asarray(indices, dtype=np.int64)
        saved = {}

        def compute() -> np.ndarray:
            saved["idx"] = idx = np.asarray(indices, dtype=np.int64)
            return self.data[idx]

        def backward(grad: np.ndarray) -> None:
            g = np.zeros_like(self.data)
            np.add.at(g, saved["idx"], grad)
            self._accumulate(g)

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def mask(self, mask_array: np.ndarray) -> "Tensor":
        """Multiply by a constant 0/1 mask (broadcastable).

        This is the fine-grained weight-sharing primitive of the
        super-network: narrower candidate layers reuse the upper-left
        sub-matrix of the widest weights by masking the rest out.
        """
        mask_array = np.asarray(mask_array, dtype=np.float64)

        def compute() -> np.ndarray:
            return self.data * mask_array

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * mask_array, self.data.shape))

        return Tensor(compute(), parents=(self,), backward=backward, recompute=compute)

    def clip_norm_value(self) -> float:
        """L2 norm of the data (convenience for diagnostics)."""
        return float(np.linalg.norm(self.data))


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a ``Tensor`` (no-op for tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def compute() -> np.ndarray:
        return np.concatenate([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor(compute(), parents=tuple(tensors), backward=backward, recompute=compute)


def stack_mean(tensors: Sequence[Tensor]) -> Tensor:
    """Mean of several same-shaped tensors (cross-shard weight update).

    A single graph node: the previous left-fold built an O(n)-deep
    add chain per weight update.  The forward accumulates in the same
    left-to-right order, and every input receives the same ``grad / n``
    array the chain produced, so values are bit-identical.
    """
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("stack_mean requires at least one tensor")
    inv = 1.0 / len(tensors)

    def compute() -> np.ndarray:
        total = np.array(tensors[0].data, dtype=np.float64, copy=True)
        for tensor in tensors[1:]:
            total += tensor.data
        return total * inv

    def backward(grad: np.ndarray) -> None:
        g = grad * inv
        for tensor in tensors:
            if tensor.requires_grad:
                tensor._accumulate(_unbroadcast(g, tensor.data.shape))

    return Tensor(compute(), parents=tuple(tensors), backward=backward, recompute=compute)
