"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the neural-network substrate of the reproduction: the
weight-sharing super-networks (Section 5 of the paper) and the MLP
performance model (Section 6.2) are trained with it.  It implements a
small, explicit autograd ``Tensor`` supporting the operations those
networks need: broadcasting arithmetic, matmul, common activations
(including the squared ReLU that H2O-NAS discovers for CoAtNet-H),
reductions, reshaping, gather (embedding lookup), and masking.

The design is deliberately simple: each ``Tensor`` records its parents
and a closure that accumulates gradients into them; ``backward`` runs a
topological sort and applies the closures in reverse order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting may have added leading axes and/or stretched axes of
    size one; the gradient of a broadcast input is the sum over the
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size one.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a view of the same data with no gradient history."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Gradient accumulation
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor to every ancestor.

        ``grad`` defaults to ones (i.e. this tensor must be a scalar
        loss unless an explicit output gradient is provided).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad tracking")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor(out_data, parents=(self, other), backward=backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor(-self.data, parents=(self,), backward=backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor(out_data, parents=(self, other), backward=backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor(out_data, parents=(self, other), backward=backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor(out_data, parents=(self,), backward=backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor(out_data, parents=(self, other), backward=backward)

    # ------------------------------------------------------------------
    # Activations and element-wise functions
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor(out_data, parents=(self,), backward=backward)

    def squared_relu(self) -> "Tensor":
        """``relu(x)**2`` — the activation H2O-NAS selects for CoAtNet-H."""
        pos = np.maximum(self.data, 0.0)
        out_data = pos * pos

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 2.0 * pos)

        return Tensor(out_data, parents=(self,), backward=backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor(out_data, parents=(self,), backward=backward)

    def swish(self) -> "Tensor":
        """``x * sigmoid(x)`` (a.k.a. SiLU), used in the CNN search space."""
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        out_data = self.data * sig

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (sig + self.data * sig * (1.0 - sig)))

        return Tensor(out_data, parents=(self,), backward=backward)

    def gelu(self) -> "Tensor":
        """Tanh approximation of GELU, used in the ViT search space."""
        c = np.sqrt(2.0 / np.pi)
        inner = c * (self.data + 0.044715 * self.data**3)
        tanh = np.tanh(inner)
        out_data = 0.5 * self.data * (1.0 + tanh)

        def backward(grad: np.ndarray) -> None:
            sech2 = 1.0 - tanh**2
            d_inner = c * (1.0 + 3 * 0.044715 * self.data**2)
            self._accumulate(grad * (0.5 * (1.0 + tanh) + 0.5 * self.data * sech2 * d_inner))

        return Tensor(out_data, parents=(self,), backward=backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor(out_data, parents=(self,), backward=backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``.

        The stabilizing max-shift is treated as a constant (its
        contribution to the gradient cancels exactly), so the op
        composes from exp/sum/div primitives.
        """
        shift = Tensor(self.data.max(axis=axis, keepdims=True))
        shifted = self - shift
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor(out_data, parents=(self,), backward=backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor(out_data, parents=(self,), backward=backward)

    # ------------------------------------------------------------------
    # Reductions and shape manipulation
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor(out_data, parents=(self,), backward=backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return Tensor(out_data, parents=(self,), backward=backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor(out_data, parents=(self,), backward=backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows by integer index — the embedding-lookup primitive.

        ``indices`` has any shape; the output has shape
        ``indices.shape + (row_width,)``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            g = np.zeros_like(self.data)
            np.add.at(g, indices, grad)
            self._accumulate(g)

        return Tensor(out_data, parents=(self,), backward=backward)

    def mask(self, mask_array: np.ndarray) -> "Tensor":
        """Multiply by a constant 0/1 mask (broadcastable).

        This is the fine-grained weight-sharing primitive of the
        super-network: narrower candidate layers reuse the upper-left
        sub-matrix of the widest weights by masking the rest out.
        """
        mask_array = np.asarray(mask_array, dtype=np.float64)
        out_data = self.data * mask_array

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * mask_array, self.shape))

        return Tensor(out_data, parents=(self,), backward=backward)

    def clip_norm_value(self) -> float:
        """L2 norm of the data (convenience for diagnostics)."""
        return float(np.linalg.norm(self.data))


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a ``Tensor`` (no-op for tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor(out_data, parents=tuple(tensors), backward=backward)


def stack_mean(tensors: Sequence[Tensor]) -> Tensor:
    """Mean of several same-shaped tensors (cross-shard weight update)."""
    if not tensors:
        raise ValueError("stack_mean requires at least one tensor")
    total = tensors[0]
    for tensor in tensors[1:]:
        total = total + tensor
    return total * (1.0 / len(tensors))
