"""Neural-network layers on top of the autograd tensor.

The layers here are the building blocks of the weight-sharing
super-networks (Section 5) and of the MLP performance model
(Section 6.2):

* :class:`Dense` — an ordinary fully-connected layer.
* :class:`MaskedDense` — a Dense whose *active* input/output widths can
  be set per forward pass; inactive rows/columns are masked to zero so
  all candidate widths share the upper-left sub-matrix of one weight
  (fine-grained weight sharing, point (3) in Figure 3 of the paper).
* :class:`LowRankDense` — two shared factor matrices whose active rank
  is maskable (point (4) in Figure 3).
* :class:`MaskedEmbedding` — one table at the maximum width; narrower
  candidates mask all but the first D columns (point (1) in Figure 3).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping as AbcMapping
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from . import initializers
from .fused import dense_act, masked_gather
from .tensor import Tensor

Activation = Callable[[Tensor], Tensor]

#: Module-level switch for the fused single-node layer kernels.  The
#: composed (multi-node) path is kept for the ``bench_nn.py`` baseline
#: and as a differential-testing oracle; production code leaves this on.
#: Note tape compilation requires the fused path — composed layers bake
#: derived index/shift arrays into closures that would go stale on
#: replay.
FUSED_KERNELS = True

ACTIVATIONS: Dict[str, Activation] = {
    "linear": lambda x: x,
    "relu": Tensor.relu,
    "squared_relu": Tensor.squared_relu,
    "sigmoid": Tensor.sigmoid,
    "swish": Tensor.swish,
    "gelu": Tensor.gelu,
    "tanh": Tensor.tanh,
}


def activation(name: str) -> Activation:
    """Look up an activation function by search-space name."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}"
        ) from None


class Module:
    """Base class: tracks parameters and child modules by attribute."""

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        seen: set[int] = set()
        self._collect(params, seen)
        return params

    def _collect(self, params: List[Tensor], seen: set) -> None:
        for value in self.__dict__.values():
            self._collect_value(value, params, seen)

    def _collect_value(self, value, params: List[Tensor], seen: set) -> None:
        """Collect from one attribute value, recursing into containers.

        Dict/Mapping values are traversed in insertion order — modules
        that keep parameters or children in dicts (e.g. the DLRM
        per-vocab embedding tables) previously lost them silently:
        ``parameters()`` skipped them, so optimizers never updated them
        and ``state_dict()`` checkpoints dropped them.
        """
        if isinstance(value, Tensor):
            if value.requires_grad and id(value) not in seen:
                seen.add(id(value))
                params.append(value)
        elif isinstance(value, Module):
            value._collect(params, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_value(item, params, seen)
        elif isinstance(value, AbcMapping):
            for item in value.values():
                self._collect_value(item, params, seen)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copies of all parameter arrays, keyed by traversal index.

        Traversal order is deterministic (attribute insertion order), so
        the same module class always produces the same keys — the
        contract :meth:`load_state_dict` and the checkpoint subsystem
        (:mod:`repro.runtime`) rely on.
        """
        return OrderedDict(
            (f"param_{i}", param.data.copy())
            for i, param in enumerate(self.parameters())
        )

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        """Restore parameters in place from :meth:`state_dict` output."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} parameters, module has {len(params)}"
            )
        for i, param in enumerate(params):
            key = f"param_{i}"
            if key not in state:
                raise ValueError(f"state missing {key!r}")
            value = np.asarray(state[key])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"{key}: shape {value.shape} does not match parameter "
                    f"{param.data.shape} (different architecture?)"
                )
            param.data[:] = value

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Dense(Module):
    """Fully-connected layer ``y = act(x @ W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation_name: str = "linear",
        use_bias: bool = True,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            initializers.glorot_uniform(rng, (in_features, out_features)),
            requires_grad=True,
            name="dense.weight",
        )
        self.bias: Optional[Tensor] = None
        if use_bias:
            self.bias = Tensor(np.zeros(out_features), requires_grad=True, name="dense.bias")
        self._activation_name = activation_name
        self._activation = activation(activation_name)

    def forward(self, x: Tensor) -> Tensor:
        if FUSED_KERNELS:
            return dense_act(x, self.weight, self.bias, self._activation_name)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return self._activation(out)


class MaskedDense(Module):
    """Dense layer with runtime-selectable active input/output widths.

    One weight matrix is allocated at the maximum size; a candidate
    sub-network with smaller widths uses the upper-left sub-matrix and
    masks the remainder, so every candidate contributes gradient signal
    to the shared weights it touches.
    """

    def __init__(
        self,
        max_in: int,
        max_out: int,
        rng: np.random.Generator,
        activation_name: str = "relu",
        use_bias: bool = True,
    ):
        if max_in <= 0 or max_out <= 0:
            raise ValueError("MaskedDense widths must be positive")
        self.max_in = max_in
        self.max_out = max_out
        self.weight = Tensor(
            initializers.he_normal(rng, (max_in, max_out)),
            requires_grad=True,
            name="masked_dense.weight",
        )
        self.bias: Optional[Tensor] = None
        if use_bias:
            self.bias = Tensor(np.zeros(max_out), requires_grad=True, name="masked_dense.bias")
        self._activation_name = activation_name
        self._activation = activation(activation_name)
        # Active-width masks are pure functions of (active_in, active_out)
        # and the layer shape; cache them so the hot path stops
        # allocating and refilling a (max_in, max_out) array every call.
        self._mask_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}

    def _masks(self, active_in: int, active_out: int) -> Tuple[np.ndarray, np.ndarray]:
        key = (active_in, active_out)
        masks = self._mask_cache.get(key)
        if masks is None:
            weight_mask = np.zeros((self.max_in, self.max_out))
            weight_mask[:active_in, :active_out] = 1.0
            bias_mask = np.zeros(self.max_out)
            bias_mask[:active_out] = 1.0
            masks = self._mask_cache[key] = (weight_mask, bias_mask)
        return masks

    def forward(self, x: Tensor, active_in: Optional[int] = None, active_out: Optional[int] = None) -> Tensor:
        """Apply the layer using only the ``active_in`` x ``active_out`` block.

        The input must already be at width ``max_in`` (padded/masked
        upstream); the output stays at width ``max_out`` with inactive
        columns exactly zero, so layers compose without reshaping.
        """
        active_in = self.max_in if active_in is None else active_in
        active_out = self.max_out if active_out is None else active_out
        if not (0 < active_in <= self.max_in):
            raise ValueError(f"active_in {active_in} outside (0, {self.max_in}]")
        if not (0 < active_out <= self.max_out):
            raise ValueError(f"active_out {active_out} outside (0, {self.max_out}]")
        if FUSED_KERNELS:
            return dense_act(
                x,
                self.weight,
                self.bias,
                self._activation_name,
                active=(active_in, active_out),
            )
        weight_mask, bias_mask = self._masks(active_in, active_out)
        out = x @ self.weight.mask(weight_mask)
        if self.bias is not None:
            out = out + self.bias.mask(bias_mask)
        return self._activation(out)


class LowRankDense(Module):
    """Factorized dense layer ``y = act((x @ U) @ V)`` with maskable rank.

    Both factors are allocated at the maximum rank; smaller ranks mask
    the trailing columns of ``U`` and rows of ``V`` (fine-grained
    weight sharing across rank candidates).
    """

    def __init__(
        self,
        max_in: int,
        max_out: int,
        max_rank: int,
        rng: np.random.Generator,
        activation_name: str = "relu",
    ):
        if max_rank <= 0:
            raise ValueError("max_rank must be positive")
        self.max_in = max_in
        self.max_out = max_out
        self.max_rank = max_rank
        self.factor_u = Tensor(
            initializers.he_normal(rng, (max_in, max_rank)),
            requires_grad=True,
            name="lowrank.u",
        )
        self.factor_v = Tensor(
            initializers.he_normal(rng, (max_rank, max_out)),
            requires_grad=True,
            name="lowrank.v",
        )
        self.bias = Tensor(np.zeros(max_out), requires_grad=True, name="lowrank.bias")
        self._activation_name = activation_name
        self._activation = activation(activation_name)
        self._mask_cache: Dict[
            Tuple[int, int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    def _masks(
        self, active_in: int, active_out: int, active_rank: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        key = (active_in, active_out, active_rank)
        masks = self._mask_cache.get(key)
        if masks is None:
            u_mask = np.zeros((self.max_in, self.max_rank))
            u_mask[:active_in, :active_rank] = 1.0
            v_mask = np.zeros((self.max_rank, self.max_out))
            v_mask[:active_rank, :active_out] = 1.0
            bias_mask = np.zeros(self.max_out)
            bias_mask[:active_out] = 1.0
            masks = self._mask_cache[key] = (u_mask, v_mask, bias_mask)
        return masks

    def forward(
        self,
        x: Tensor,
        active_in: Optional[int] = None,
        active_out: Optional[int] = None,
        active_rank: Optional[int] = None,
    ) -> Tensor:
        active_in = self.max_in if active_in is None else active_in
        active_out = self.max_out if active_out is None else active_out
        active_rank = self.max_rank if active_rank is None else active_rank
        if not (0 < active_rank <= self.max_rank):
            raise ValueError(f"active_rank {active_rank} outside (0, {self.max_rank}]")
        if FUSED_KERNELS:
            hidden = dense_act(
                x, self.factor_u, None, "linear", active=(active_in, active_rank)
            )
            return dense_act(
                hidden,
                self.factor_v,
                self.bias,
                self._activation_name,
                active=(active_rank, active_out),
            )
        u_mask, v_mask, bias_mask = self._masks(active_in, active_out, active_rank)
        hidden = x @ self.factor_u.mask(u_mask)
        out = hidden @ self.factor_v.mask(v_mask)
        return self._activation(out + self.bias.mask(bias_mask))


class MaskedEmbedding(Module):
    """Embedding table with a maskable active width.

    One table of shape ``(vocab, max_width)`` is allocated; a candidate
    with width ``D < max_width`` reuses the first ``D`` columns and sees
    zeros elsewhere — the paper's fine-grained embedding-width sharing.
    """

    def __init__(self, vocab_size: int, max_width: int, rng: np.random.Generator):
        if vocab_size <= 0 or max_width <= 0:
            raise ValueError("embedding dimensions must be positive")
        self.vocab_size = vocab_size
        self.max_width = max_width
        self.table = Tensor(
            initializers.embedding_normal(rng, (vocab_size, max_width)),
            requires_grad=True,
            name="embedding.table",
        )
        self._mask_cache: Dict[int, np.ndarray] = {}

    def _col_mask(self, active_width: int) -> np.ndarray:
        mask = self._mask_cache.get(active_width)
        if mask is None:
            mask = np.zeros(self.max_width)
            mask[:active_width] = 1.0
            self._mask_cache[active_width] = mask
        return mask

    def forward(
        self,
        indices: np.ndarray,
        active_width: Optional[int] = None,
        wrap: Optional[int] = None,
    ) -> Tensor:
        """Masked lookup of ``indices``, optionally wrapped modulo ``wrap``.

        ``wrap`` lets a caller address only the first ``wrap`` rows (the
        fine vocab-sharing ablation, where a smaller vocabulary wraps
        its ids into a shared table).  The modulus is applied *inside*
        the lookup node, so the raw index array can be a live view of a
        tape input buffer.
        """
        active_width = self.max_width if active_width is None else active_width
        if not (0 < active_width <= self.max_width):
            raise ValueError(f"active_width {active_width} outside (0, {self.max_width}]")
        modulus = self.vocab_size if wrap is None else min(int(wrap), self.vocab_size)
        if modulus < 1:
            raise ValueError(f"wrap {wrap} must be >= 1")
        if FUSED_KERNELS:
            return masked_gather(
                self.table, indices, None, modulus, active_width=active_width
            )
        col_mask = self._col_mask(active_width)
        return self.table.mask(col_mask).gather_rows(np.asarray(indices) % modulus)


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable gain/bias.

    Composed from autograd primitives (mean, variance via squares,
    inverse square root through ``** -0.5``), so gradients flow through
    the statistics exactly as in a framework implementation.
    """

    def __init__(self, width: int, eps: float = 1e-5):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self.eps = eps
        self.gain = Tensor(np.ones(width), requires_grad=True, name="layernorm.gain")
        self.bias = Tensor(np.zeros(width), requires_grad=True, name="layernorm.bias")

    def forward(self, x: Tensor, active_width: Optional[int] = None) -> Tensor:
        """Normalize over the last axis.

        With ``active_width`` set (the super-network case), statistics
        are computed over the first ``active_width`` channels only and
        the inactive channels stay exactly zero, preserving the masked
        weight-sharing contract.
        """
        if active_width is None:
            mean = x.mean(axis=-1, keepdims=True)
            centered = x - mean
            variance = (centered * centered).mean(axis=-1, keepdims=True)
            inv_std = (variance + self.eps) ** -0.5
            return centered * inv_std * self.gain + self.bias
        if not (0 < active_width <= self.width):
            raise ValueError(f"active_width {active_width} outside (0, {self.width}]")
        mask = np.zeros(self.width)
        mask[:active_width] = 1.0
        masked = x.mask(mask)
        mean = masked.sum(axis=-1, keepdims=True) * (1.0 / active_width)
        centered = (masked - mean).mask(mask)
        variance = (centered * centered).sum(axis=-1, keepdims=True) * (
            1.0 / active_width
        )
        inv_std = (variance + self.eps) ** -0.5
        return centered * inv_std * self.gain.mask(mask) + self.bias.mask(mask)


class Sequential(Module):
    """A simple forward pipeline of modules."""

    def __init__(self, layers: Sequence[Module]):
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Plain multi-layer perceptron used by the performance model."""

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Iterable[int],
        out_features: int,
        rng: np.random.Generator,
        activation_name: str = "relu",
    ):
        sizes = [in_features, *hidden_sizes]
        self.hidden = [
            Dense(nin, nout, rng, activation_name=activation_name)
            for nin, nout in zip(sizes[:-1], sizes[1:])
        ]
        self.head = Dense(sizes[-1], out_features, rng, activation_name="linear")

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.hidden:
            x = layer(x)
        return self.head(x)
