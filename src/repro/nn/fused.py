"""Fused autograd kernels for the layer hot path.

The composed layer implementations build 5–8 closure nodes per layer
call (mask, matmul, mask, add, activation, …), each allocating a fresh
intermediate array and a Python closure.  The kernels here collapse the
common patterns into one node each:

* :func:`dense_act` — ``act((x @ (W·mask)) + b·mask)`` as a single
  node covering Dense, MaskedDense and each LowRankDense factor;
* :func:`masked_gather` — embedding lookup with column masking and
  (for the fine vocab-sharing ablation) id wrap-around folded into the
  node, so the index modulus is recomputed from the live index array on
  every tape replay.

Supernet masks are always *prefix blocks* (``mask[:active_in,
:active_out] = 1``), so both kernels accept the active extents directly
(``active=`` / ``active_width=``) and run the BLAS call on the sliced
sub-matrix instead of multiplying by a full-size 0/1 mask.  That is
the dominant win on the train step: a candidate at half width pays a
quarter of the dgemm flops, exactly as the child network would on real
hardware.  The sliced math is equivalent to the masked math — masked
rows/columns contribute exact zeros to every dot product, and no
gradient ever reaches a masked-out parameter entry either way.

Each kernel's backward applies the same NumPy expressions the composed
graph applied, in the same order, so gradients agree with the composed
path to float64 round-off (gradcheck pins them against central finite
differences).  Every kernel records a ``recompute`` closure, which is
what makes the layers traceable by :mod:`repro.nn.tape`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .tensor import Tensor, _unbroadcast

# ---------------------------------------------------------------------------
# Activation kernels: forward(pre, saved) -> out; backward(grad, saved) -> d_pre
# The expressions mirror the Tensor method implementations exactly.
# ---------------------------------------------------------------------------


def _linear_fwd(pre: np.ndarray, saved: dict) -> np.ndarray:
    return pre


def _linear_bwd(grad: np.ndarray, saved: dict) -> np.ndarray:
    return grad


def _relu_fwd(pre: np.ndarray, saved: dict) -> np.ndarray:
    saved["act"] = mask = pre > 0
    return pre * mask


def _relu_bwd(grad: np.ndarray, saved: dict) -> np.ndarray:
    return grad * saved["act"]


def _squared_relu_fwd(pre: np.ndarray, saved: dict) -> np.ndarray:
    saved["act"] = pos = np.maximum(pre, 0.0)
    return pos * pos


def _squared_relu_bwd(grad: np.ndarray, saved: dict) -> np.ndarray:
    return grad * 2.0 * saved["act"]


def _sigmoid_fwd(pre: np.ndarray, saved: dict) -> np.ndarray:
    saved["act"] = out = 1.0 / (1.0 + np.exp(-np.clip(pre, -60.0, 60.0)))
    return out


def _sigmoid_bwd(grad: np.ndarray, saved: dict) -> np.ndarray:
    out = saved["act"]
    return grad * out * (1.0 - out)


def _swish_fwd(pre: np.ndarray, saved: dict) -> np.ndarray:
    sig = 1.0 / (1.0 + np.exp(-np.clip(pre, -60.0, 60.0)))
    saved["act"] = (pre, sig)
    return pre * sig


def _swish_bwd(grad: np.ndarray, saved: dict) -> np.ndarray:
    pre, sig = saved["act"]
    return grad * (sig + pre * sig * (1.0 - sig))


_GELU_C = np.sqrt(2.0 / np.pi)


def _gelu_fwd(pre: np.ndarray, saved: dict) -> np.ndarray:
    inner = _GELU_C * (pre + 0.044715 * pre**3)
    tanh = np.tanh(inner)
    saved["act"] = (pre, tanh)
    return 0.5 * pre * (1.0 + tanh)


def _gelu_bwd(grad: np.ndarray, saved: dict) -> np.ndarray:
    pre, tanh = saved["act"]
    sech2 = 1.0 - tanh**2
    d_inner = _GELU_C * (1.0 + 3 * 0.044715 * pre**2)
    return grad * (0.5 * (1.0 + tanh) + 0.5 * pre * sech2 * d_inner)


def _tanh_fwd(pre: np.ndarray, saved: dict) -> np.ndarray:
    saved["act"] = out = np.tanh(pre)
    return out


def _tanh_bwd(grad: np.ndarray, saved: dict) -> np.ndarray:
    return grad * (1.0 - saved["act"] ** 2)


ActKernel = Tuple[
    Callable[[np.ndarray, dict], np.ndarray], Callable[[np.ndarray, dict], np.ndarray]
]

ACT_KERNELS: Dict[str, ActKernel] = {
    "linear": (_linear_fwd, _linear_bwd),
    "relu": (_relu_fwd, _relu_bwd),
    "squared_relu": (_squared_relu_fwd, _squared_relu_bwd),
    "sigmoid": (_sigmoid_fwd, _sigmoid_bwd),
    "swish": (_swish_fwd, _swish_bwd),
    "gelu": (_gelu_fwd, _gelu_bwd),
    "tanh": (_tanh_fwd, _tanh_bwd),
}


def dense_act(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    act_name: str,
    weight_mask: Optional[np.ndarray] = None,
    bias_mask: Optional[np.ndarray] = None,
    active: Optional[Tuple[int, int]] = None,
) -> Tensor:
    """``act((x @ (weight·weight_mask)) + bias·bias_mask)`` in one node.

    Masks are constant 0/1 arrays (or ``None`` for the unmasked Dense
    case).  ``x`` may have any leading shape; ``weight`` is 2-D.
    Masked weight gradients are re-masked on the way in, matching the
    composed ``Tensor.mask`` backward.

    ``active=(active_in, active_out)`` is the fast path for prefix
    masks: the matmul runs on ``weight[:active_in, :active_out]`` and
    the inactive output columns are filled with ``act(0)`` — the value
    the masked matmul would have produced there.  Mutually exclusive
    with explicit masks.
    """
    try:
        act_fwd, act_bwd = ACT_KERNELS[act_name]
    except KeyError:
        raise ValueError(
            f"unknown activation {act_name!r}; expected one of {sorted(ACT_KERNELS)}"
        ) from None
    parents = (x, weight) if bias is None else (x, weight, bias)
    saved: dict = {}

    if active is not None:
        if weight_mask is not None or bias_mask is not None:
            raise ValueError("pass either active extents or explicit masks, not both")
        active_in, active_out = active
        max_in, max_out = weight.data.shape
        if not (0 < active_in <= max_in and 0 < active_out <= max_out):
            raise ValueError(f"active extents {active} outside weight shape {weight.data.shape}")
        act_zero = float(act_fwd(np.zeros(()), {}))

        def compute_sliced() -> np.ndarray:
            w = weight.data[:active_in, :active_out]
            saved["w"] = w
            pre = x.data[..., :active_in] @ w
            if bias is not None:
                pre = pre + bias.data[:active_out]
            out_active = act_fwd(pre, saved)
            if active_out == max_out:
                return out_active
            out = np.full(out_active.shape[:-1] + (max_out,), act_zero)
            out[..., :active_out] = out_active
            return out

        def backward_sliced(grad: np.ndarray) -> None:
            # Gradient flowing into inactive output columns never reaches
            # any parameter through the masked matmul (the mask zeroes the
            # corresponding weight columns), so only the active slice of
            # ``grad`` participates — identical to the masked backward.
            g_pre = act_bwd(grad[..., :active_out], saved)
            if bias is not None and bias.requires_grad:
                gb = np.zeros_like(bias.data)
                gb[:active_out] = _unbroadcast(g_pre, (active_out,))
                bias._accumulate(gb)
            if weight.requires_grad:
                xs = x.data[..., :active_in]
                if xs.ndim == 1:
                    sub = np.outer(xs, g_pre)
                else:
                    sub = np.swapaxes(xs, -1, -2) @ g_pre
                gw = np.zeros_like(weight.data)
                gw[:active_in, :active_out] = _unbroadcast(sub, (active_in, active_out))
                weight._accumulate(gw)
            if x.requires_grad:
                sub = g_pre @ saved["w"].T
                gx = np.zeros_like(x.data)
                gx[..., :active_in] = _unbroadcast(sub, gx[..., :active_in].shape)
                x._accumulate(gx)

        return Tensor(
            compute_sliced(), parents=parents, backward=backward_sliced, recompute=compute_sliced
        )

    def compute() -> np.ndarray:
        w = weight.data if weight_mask is None else weight.data * weight_mask
        saved["w"] = w
        pre = x.data @ w
        if bias is not None:
            b = bias.data if bias_mask is None else bias.data * bias_mask
            pre = pre + b
        return act_fwd(pre, saved)

    def backward(grad: np.ndarray) -> None:
        g_pre = act_bwd(grad, saved)
        if bias is not None and bias.requires_grad:
            gb = _unbroadcast(g_pre, bias.data.shape)
            bias._accumulate(gb if bias_mask is None else gb * bias_mask)
        if weight.requires_grad:
            if x.data.ndim == 1:
                gw = np.outer(x.data, g_pre)
            else:
                gw = np.swapaxes(x.data, -1, -2) @ g_pre
            gw = _unbroadcast(gw, weight.data.shape)
            weight._accumulate(gw if weight_mask is None else gw * weight_mask)
        if x.requires_grad:
            gx = g_pre @ saved["w"].T
            x._accumulate(_unbroadcast(gx, x.data.shape))

    return Tensor(compute(), parents=parents, backward=backward, recompute=compute)


def masked_gather(
    table: Tensor,
    indices: np.ndarray,
    col_mask: Optional[np.ndarray],
    modulus: int,
    active_width: Optional[int] = None,
) -> Tensor:
    """Column-masked embedding lookup with id wrap, as one node.

    Equivalent to ``table.mask(col_mask).gather_rows(indices % modulus)``
    — the mask commutes with the row gather elementwise — but performs
    one fancy-index read instead of materializing the masked table, and
    recomputes ``indices % modulus`` from the live index array on every
    replay (``indices`` may be a view of a tape input buffer).

    ``active_width`` is the fast path for prefix masks: only the first
    ``active_width`` columns are read (and scattered into on backward),
    the rest stay exactly zero.  Mutually exclusive with ``col_mask``.
    """
    saved: dict = {}

    if active_width is not None:
        if col_mask is not None:
            raise ValueError("pass either active_width or col_mask, not both")
        max_width = table.data.shape[1]
        if not (0 < active_width <= max_width):
            raise ValueError(f"active_width {active_width} outside (0, {max_width}]")

        def compute_sliced() -> np.ndarray:
            saved["idx"] = idx = np.asarray(indices, dtype=np.int64) % modulus
            if active_width == max_width:
                return table.data[idx]
            out = np.zeros(idx.shape + (max_width,))
            out[..., :active_width] = table.data[idx, :active_width]
            return out

        def backward_sliced(grad: np.ndarray) -> None:
            g = np.zeros_like(table.data)
            np.add.at(g[:, :active_width], saved["idx"], grad[..., :active_width])
            table._accumulate(g)

        return Tensor(
            compute_sliced(), parents=(table,), backward=backward_sliced, recompute=compute_sliced
        )

    col_mask = np.asarray(col_mask, dtype=np.float64)

    def compute() -> np.ndarray:
        saved["idx"] = idx = np.asarray(indices, dtype=np.int64) % modulus
        return table.data[idx] * col_mask

    def backward(grad: np.ndarray) -> None:
        g = np.zeros_like(table.data)
        np.add.at(g, saved["idx"], grad * col_mask)
        table._accumulate(g)

    return Tensor(compute(), parents=(table,), backward=backward, recompute=compute)
