"""NumPy-based neural-network substrate (autograd, layers, optimizers)."""

from .tensor import Tensor, as_tensor, concatenate, stack_mean
from .layers import (
    ACTIVATIONS,
    Dense,
    LayerNorm,
    LowRankDense,
    MLP,
    MaskedDense,
    MaskedEmbedding,
    Module,
    Sequential,
    activation,
)
from .losses import accuracy, bce_with_logits, binary_accuracy, mse, softmax_cross_entropy
from .optim import Adam, Optimizer, SGD
from .schedules import CosineSchedule, ScheduledOptimizer, StepDecaySchedule

__all__ = [
    "ACTIVATIONS",
    "Adam",
    "CosineSchedule",
    "Dense",
    "LayerNorm",
    "LowRankDense",
    "MLP",
    "MaskedDense",
    "MaskedEmbedding",
    "Module",
    "Optimizer",
    "SGD",
    "ScheduledOptimizer",
    "StepDecaySchedule",
    "Sequential",
    "Tensor",
    "accuracy",
    "activation",
    "as_tensor",
    "bce_with_logits",
    "binary_accuracy",
    "concatenate",
    "mse",
    "softmax_cross_entropy",
    "stack_mean",
]
