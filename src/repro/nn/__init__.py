"""NumPy-based neural-network substrate (autograd, layers, optimizers)."""

from .tensor import Tensor, as_tensor, concatenate, stack_mean, trace_graph
from .fused import ACT_KERNELS, dense_act, masked_gather
from .tape import CompiledGraph, TapeCache, compile_graph, tape_enabled
from .layers import (
    ACTIVATIONS,
    Dense,
    LayerNorm,
    LowRankDense,
    MLP,
    MaskedDense,
    MaskedEmbedding,
    Module,
    Sequential,
    activation,
)
from .losses import accuracy, bce_with_logits, binary_accuracy, mse, softmax_cross_entropy
from .optim import Adam, Optimizer, SGD
from .schedules import CosineSchedule, ScheduledOptimizer, StepDecaySchedule

__all__ = [
    "ACTIVATIONS",
    "ACT_KERNELS",
    "Adam",
    "CompiledGraph",
    "CosineSchedule",
    "Dense",
    "LayerNorm",
    "LowRankDense",
    "MLP",
    "MaskedDense",
    "MaskedEmbedding",
    "Module",
    "Optimizer",
    "SGD",
    "ScheduledOptimizer",
    "StepDecaySchedule",
    "Sequential",
    "TapeCache",
    "Tensor",
    "accuracy",
    "activation",
    "as_tensor",
    "bce_with_logits",
    "binary_accuracy",
    "compile_graph",
    "concatenate",
    "dense_act",
    "masked_gather",
    "mse",
    "softmax_cross_entropy",
    "stack_mean",
    "tape_enabled",
    "trace_graph",
]
