"""Gradient-descent optimizers for the autograd tensors."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer holding a fixed list of parameters."""

    def __init__(self, params: List[Tensor], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Internal optimizer state, aligned to the parameter list order.

        Moments are stored per parameter *index* (not ``id()``), so the
        state survives process boundaries as long as the restored
        optimizer holds the same parameters in the same order — the
        contract the checkpoint subsystem (:mod:`repro.runtime`) uses
        for crash-identical resume.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        if state:
            raise ValueError(f"stateless optimizer got state keys {sorted(state)}")

    def _aligned(self, per_id: Dict[int, np.ndarray]) -> List[Optional[np.ndarray]]:
        """Per-id slot arrays re-keyed to parameter positions."""
        return [per_id.get(id(p)) for p in self.params]

    def _check_slots(self, slots: List[Optional[np.ndarray]], name: str) -> None:
        if len(slots) != len(self.params):
            raise ValueError(
                f"{name}: state has {len(slots)} slots for {len(self.params)} "
                "parameters"
            )
        for slot, param in zip(slots, self.params):
            if slot is not None and np.shape(slot) != param.data.shape:
                raise ValueError(
                    f"{name}: slot shape {np.shape(slot)} does not match "
                    f"parameter {param.data.shape}"
                )

    def clip_gradients(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clip norm (useful for diagnostics).
        """
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: List[Tensor], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            if self.momentum > 0:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = self._velocity[id(param)] = np.zeros_like(param.data)
                # In-place ``v*m + g``: multiply then add round identically
                # to the out-of-place expression, without the allocation.
                vel *= self.momentum
                vel += param.grad
                param.data -= self.lr * vel
            else:
                param.data -= self.lr * param.grad

    def state_dict(self) -> dict:
        return {"velocity": [
            None if v is None else v.copy() for v in self._aligned(self._velocity)
        ]}

    def load_state_dict(self, state: dict) -> None:
        slots = state["velocity"]
        self._check_slots(slots, "velocity")
        self._velocity = {
            id(p): np.array(v, dtype=p.data.dtype)
            for p, v in zip(self.params, slots)
            if v is not None
        }


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param in self.params:
            if param.grad is None:
                continue
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = self._m[id(param)] = np.zeros_like(param.data)
                v = self._v[id(param)] = np.zeros_like(param.data)
            # In-place moment updates: ``x *= beta; x += (1-beta)*g``
            # rounds identically to ``beta*x + (1-beta)*g`` (same two
            # elementwise ops on the same operands) while reusing the
            # moment buffers instead of allocating fresh ones per step.
            m *= self.beta1
            m += (1 - self.beta1) * param.grad
            v *= self.beta2
            v += (1 - self.beta2) * param.grad**2
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": [None if m is None else m.copy() for m in self._aligned(self._m)],
            "v": [None if v is None else v.copy() for v in self._aligned(self._v)],
        }

    def load_state_dict(self, state: dict) -> None:
        m_slots, v_slots = state["m"], state["v"]
        self._check_slots(m_slots, "m")
        self._check_slots(v_slots, "v")
        self._t = int(state["t"])
        self._m = {
            id(p): np.array(m, dtype=p.data.dtype)
            for p, m in zip(self.params, m_slots)
            if m is not None
        }
        self._v = {
            id(p): np.array(v, dtype=p.data.dtype)
            for p, v in zip(self.params, v_slots)
            if v is not None
        }
