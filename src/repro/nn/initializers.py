"""Weight initializers with explicit random generators.

Every initializer takes a ``numpy.random.Generator`` so that searches,
super-network training, and the performance model are fully
reproducible from a single seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def glorot_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialization for dense weights."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """He normal initialization, suited to ReLU-family activations."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def embedding_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Small-variance normal init used for embedding tables."""
    return rng.normal(0.0, 0.05, size=shape)


def zeros(_rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    return fan_in, shape[-1]
