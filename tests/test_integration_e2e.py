"""End-to-end integration: the full deployment recipe in one test.

Strings together every pillar the way a production run would:
performance-model pretraining and fine-tuning, the single-step search
with the ReLU multi-objective reward using the model's predictions,
policy serialization and reload, final-candidate lowering to hardware,
and the serving-throughput check under a P99 target.
"""

import numpy as np
import pytest

from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    load_policy,
    relu_reward,
    save_policy,
)
from repro.analysis import summarize
from repro.data import NullSource, SingleStepPipeline
from repro.hardware import HardwareTestbed, TPU_V4I, optimize_serving_throughput
from repro.models import baseline_production_dlrm
from repro.models.dlrm import apply_architecture, build_graph
from repro.models.timing import DlrmTimingHarness
from repro.perfmodel import (
    ArchitectureEncoder,
    PerformanceModel,
    TwoPhaseConfig,
    TwoPhaseTrainer,
)
from repro.quality import DlrmQualityModel
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space

NUM_TABLES = 3


@pytest.fixture(scope="module")
def deployment():
    """One full pipeline run, shared by the assertions below."""
    space = dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))
    baseline = baseline_production_dlrm(num_tables=NUM_TABLES)
    harness = DlrmTimingHarness(baseline, seed=0)
    quality_model = DlrmQualityModel(baseline)
    # Phase 1+2: the performance model.
    perf_model = PerformanceModel(
        ArchitectureEncoder(space), hidden_sizes=(128, 128),
        size_fn=harness.model_size, seed=0,
    )
    trainer = TwoPhaseTrainer(
        perf_model, space, harness.simulate, harness.measure,
        TwoPhaseConfig(pretrain_epochs=30, finetune_epochs=150, finetune_lr=5e-5),
        seed=0,
    )
    trainer.pretrain(1200)
    nrmse_before = trainer.evaluate(80, harness.measure_deterministic)[0]
    trainer.finetune(20)
    nrmse_after = trainer.evaluate(80, harness.measure_deterministic)[0]
    # Phase 3: the search, driven by the performance model.
    base_metrics = perf_model.predict(space.default_architecture())
    search = SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(
            lambda a: 4.0 * quality_model.quality(apply_architecture(baseline, a)),
            noise_sigma=0.01,
            seed=0,
        ),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=relu_reward(
            [
                PerformanceObjective(
                    "train_step_time", base_metrics["train_step_time"], beta=-6.0
                ),
                PerformanceObjective(
                    "model_size", base_metrics["model_size"] * 2.0, beta=-6.0
                ),
            ]
        ),
        performance_fn=perf_model.predict,
        config=SearchConfig(
            steps=120, num_cores=6, warmup_steps=10, policy_lr=0.12,
            policy_entropy_coef=0.1, record_candidates=False, seed=0,
        ),
    )
    result = search.run()
    return {
        "space": space,
        "baseline": baseline,
        "harness": harness,
        "quality_model": quality_model,
        "perf_model": perf_model,
        "search": search,
        "result": result,
        "nrmse_before": nrmse_before,
        "nrmse_after": nrmse_after,
    }


class TestEndToEnd:
    def test_perf_model_improved_by_finetuning(self, deployment):
        assert deployment["nrmse_after"] < deployment["nrmse_before"]

    def test_search_converged(self, deployment):
        summary = summarize(deployment["result"])
        assert summary.final_entropy < summary.initial_entropy

    def test_final_architecture_valid_and_deployable(self, deployment):
        space = deployment["space"]
        best = deployment["result"].final_architecture
        space.validate(best)
        # Deployability: meets the step-time target within the perf
        # model's error band, measured on the testbed.
        measured = deployment["harness"].measure_deterministic(best)[0]
        base = deployment["harness"].measure_deterministic(
            space.default_architecture()
        )[0]
        assert measured <= base * 1.25

    def test_quality_not_sacrificed(self, deployment):
        best = deployment["result"].final_architecture
        q_best = deployment["quality_model"].quality(
            apply_architecture(deployment["baseline"], best)
        )
        q_base = deployment["quality_model"].quality(deployment["baseline"])
        assert q_best > q_base - 0.25

    def test_policy_roundtrips_through_disk(self, deployment, tmp_path):
        search = deployment["search"]
        path = tmp_path / "policy.json"
        save_policy(search.controller.policy, path)
        restored = load_policy(deployment["space"], path)
        assert (
            restored.most_probable_architecture()
            == deployment["result"].final_architecture
        )

    def test_searched_model_serves_under_slo(self, deployment):
        import dataclasses

        best = deployment["result"].final_architecture
        spec = apply_architecture(deployment["baseline"], best)

        def build(batch):
            serving = dataclasses.replace(
                spec, name=f"serve_b{batch}", batch=batch, distributed=False
            )
            return build_graph(serving)

        report = optimize_serving_throughput(
            HardwareTestbed(TPU_V4I, seed=11),
            build,
            target_latency_s=0.02,
            batch_candidates=(16, 64, 256),
            num_measurements=15,
        )
        assert report.feasible
        assert report.throughput_under_target > 1000
