"""Graceful-shutdown tests: signal handling, step-boundary stop, resume.

The contract (satellite of the service PR, and what the daemon's drain
is built on): a stop request lands at the next step boundary — the
in-flight step finishes, a final checkpoint is written even off the
checkpoint interval, the process exits via ``SearchInterrupted`` — and
a resumed run finishes bit-identically to one that was never stopped.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.runtime import CheckpointStore, GracefulShutdown, SearchInterrupted
from repro.runtime.signals import DEFAULT_SIGNALS
from repro.service.jobs import JobSpec, dlrm_search_builder, one_shot_payload, result_payload

STEPS = 8
SEED = 11


class TestGracefulShutdownObject:
    def test_programmatic_request_sets_flag(self):
        shutdown = GracefulShutdown()
        assert not shutdown.should_stop()
        shutdown.request()
        assert shutdown.should_stop() and shutdown.requested

    def test_signal_sets_flag_and_keeps_process_alive(self):
        with GracefulShutdown() as shutdown:
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.monotonic() + 5.0
            while not shutdown.requested and time.monotonic() < deadline:
                time.sleep(0.01)
            assert shutdown.requested
            assert shutdown.received == signal.SIGTERM

    def test_handlers_restored_after_exit(self):
        before = {sig: signal.getsignal(sig) for sig in DEFAULT_SIGNALS}
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) != before[signal.SIGTERM]
        for sig in DEFAULT_SIGNALS:
            assert signal.getsignal(sig) == before[sig]

    def test_background_thread_is_inert_but_requestable(self):
        before = {sig: signal.getsignal(sig) for sig in DEFAULT_SIGNALS}
        result = {}

        def use_in_thread():
            with GracefulShutdown() as shutdown:
                result["installed_nothing"] = all(
                    signal.getsignal(sig) == before[sig] for sig in DEFAULT_SIGNALS
                )
                shutdown.request()
                result["stoppable"] = shutdown.should_stop()

        thread = threading.Thread(target=use_in_thread)
        thread.start()
        thread.join(timeout=10.0)
        assert result == {"installed_nothing": True, "stoppable": True}


class TestStepBoundaryStop:
    def test_interrupt_checkpoints_and_resume_is_bit_identical(self, tmp_path):
        space, factory = dlrm_search_builder(STEPS, SEED, True, backend="serial")
        calls = {"n": 0}

        def stop_after_three():
            calls["n"] += 1
            return calls["n"] >= 3

        with pytest.raises(SearchInterrupted) as excinfo:
            factory().search(
                checkpoint_dir=tmp_path,
                checkpoint_every=5,  # off-interval: forces a final snapshot
                should_stop=stop_after_three,
            )
        assert excinfo.value.step == 3
        assert excinfo.value.checkpoint_written
        # The final checkpoint is at the interrupt step, not the last
        # multiple of checkpoint_every.
        store = CheckpointStore(tmp_path)
        assert store.latest().step == 3

        _, factory2 = dlrm_search_builder(STEPS, SEED, True, backend="serial")
        resumed = factory2().search(checkpoint_dir=tmp_path, resume=True)
        reference = one_shot_payload(
            JobSpec(steps=STEPS, seed=SEED), backend="serial"
        )
        assert result_payload(space, resumed) == reference

    def test_stop_without_store_raises_with_no_checkpoint(self):
        _, factory = dlrm_search_builder(STEPS, SEED, True, backend="serial")
        with pytest.raises(SearchInterrupted) as excinfo:
            factory().search(should_stop=lambda: True)
        assert excinfo.value.step == 1  # finished the in-flight step
        assert not excinfo.value.checkpoint_written

    def test_stop_on_final_step_is_a_normal_finish(self, tmp_path):
        space, factory = dlrm_search_builder(4, SEED, True, backend="serial")
        # should_stop turns true only once the run is already complete:
        # a finished search returns instead of raising.
        result = factory().search(
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            should_stop=lambda: False,
        )
        assert result_payload(space, result)["steps"] == 4


class TestCliInterrupt:
    def run_search(self, ckpt, steps=4000):
        env = dict(os.environ, PYTHONPATH=str(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ))
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "search",
                "--steps", str(steps),
                "--checkpoint-dir", str(ckpt),
                "--checkpoint-every", "20",
                "--backend", "serial",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_exits_130_with_final_checkpoint(self, tmp_path, signum):
        ckpt = tmp_path / "ckpt"
        proc = self.run_search(ckpt)
        try:
            deadline = time.monotonic() + 120.0
            while not (ckpt.exists() and any(ckpt.glob("snap-*"))):
                assert time.monotonic() < deadline
                assert proc.poll() is None, proc.communicate()[1]
                time.sleep(0.05)
            proc.send_signal(signum)
            _out, err = proc.communicate(timeout=120.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "interrupted: search stopped after step" in err
        assert "rerun with resume to continue" in err
        # The interrupt wrote a final snapshot at the stop step (which
        # is generally off the every-20 grid).
        steps = sorted(
            int(p.name.rsplit("-", 1)[1]) for p in ckpt.glob("snap-*")
        )
        assert CheckpointStore(ckpt).latest().step == steps[-1]
