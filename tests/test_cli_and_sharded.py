"""Tests for the CLI and the sharded data stream."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import CtrTaskConfig, CtrTeacher, ShardedSource, SingleStepPipeline


class TestShardedSource:
    def make(self, shards=4):
        teacher = CtrTeacher(CtrTaskConfig(batch_size=4))
        return ShardedSource(teacher.next_batch, num_shards=shards)

    def test_global_single_use(self):
        sharded = self.make(4)
        seen = set()
        for shard in range(4):
            for _ in range(5):
                batch = sharded.next_batch(shard)
                assert batch.batch_id not in seen
                seen.add(batch.batch_id)
        assert len(seen) == 20

    def test_per_shard_ordering(self):
        sharded = self.make(3)
        ids = [sharded.next_batch(1).batch_id for _ in range(5)]
        assert ids == sorted(ids)

    def test_round_robin_dispatch(self):
        sharded = self.make(2)
        a = sharded.next_batch(0)
        b = sharded.next_batch(1)
        assert {a.batch_id, b.batch_id} == {0, 1}

    def test_backlog_accounting(self):
        sharded = self.make(2)
        sharded.next_batch(1)  # dispatches batch 0 to shard 0 (buffered)
        assert sharded.backlog(0) == 1
        assert sharded.backlog(1) == 0

    def test_shard_source_plugs_into_pipeline(self):
        sharded = self.make(2)
        pipelines = [
            SingleStepPipeline(sharded.shard_source(i)) for i in range(2)
        ]
        batch0 = pipelines[0].next_batch()
        batch1 = pipelines[1].next_batch()
        assert batch0.batch_id != batch1.batch_id
        pipelines[0].mark_policy_use(batch0)
        pipelines[0].mark_weight_use(batch0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedSource(lambda: None, num_shards=0)
        sharded = self.make(2)
        with pytest.raises(ValueError):
            sharded.next_batch(2)
        with pytest.raises(ValueError):
            sharded.backlog(-1)

    def test_dispatched_counter(self):
        sharded = self.make(3)
        for shard in range(3):
            sharded.next_batch(shard)
        assert sharded.batches_dispatched == 3


class TestCli:
    def test_spaces(self, capsys):
        assert main(["spaces"]) == 0
        out = capsys.readouterr().out
        assert "dlrm" in out and "282" in out

    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "tpu_v4" in out and "gpu_v100" in out

    def test_roofline_crossover_visible(self, capsys):
        main(["roofline", "--depth", "32"])
        small = capsys.readouterr().out
        main(["roofline", "--depth", "128"])
        large = capsys.readouterr().out
        assert "F-MBC(32)" in small and "F-MBC(128)" in large

    def test_cost(self, capsys):
        assert main(["cost", "--training-hours", "100", "--trials", "50"]) == 0
        out = capsys.readouterr().out
        assert "2.5" in out and "20x" in out

    def test_search_runs(self, capsys):
        assert main(["search", "--steps", "15"]) == 0
        out = capsys.readouterr().out
        assert "reward:" in out and "entropy:" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliExitCodes:
    """CLI hygiene: errors on stderr, stable non-zero exit codes,
    parse-time validation of count flags."""

    def test_workers_zero_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "--steps", "5", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1, got 0" in capsys.readouterr().err

    def test_workers_non_integer_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--spool", "x", "--workers", "many"])
        assert excinfo.value.code == 2
        assert "expected an integer" in capsys.readouterr().err

    def test_steps_zero_rejected_at_parse_time(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "--steps", "0"])
        assert excinfo.value.code == 2

    def test_client_without_socket_or_spool_is_usage_error(self, capsys):
        assert main(["status", "job-000000"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error:" in captured.err and "--socket" in captured.err

    def test_unreachable_daemon_exits_1_on_stderr(self, tmp_path, capsys):
        rc = main(["status", "--socket", str(tmp_path / "nope.sock"), "job-0"])
        assert rc == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error:" in captured.err and "no daemon reachable" in captured.err

    def test_missing_telemetry_dir_exits_1_on_stderr(self, tmp_path, capsys):
        rc = main(["report", "telemetry", str(tmp_path / "missing")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_success_prints_nothing_to_stderr(self, capsys):
        assert main(["spaces"]) == 0
        assert capsys.readouterr().err == ""
