"""Unit tests for the fault-tolerant runtime (repro.runtime).

Covers the atomic write primitives, the state packing, the checkpoint
store (save/load/retention/corruption), recovery fallback, fault
injection, the supervisor's restart policy, measurement retries, and
the resumable multi-trial / front-sweep drivers.  The end-to-end
crash/resume bit-identity property lives in ``test_crash_resume.py``.
"""

import json

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    FrontSearchConfig,
    PerformanceObjective,
    RandomSearch,
    SearchConfig,
    SingleStepSearch,
    load_policy,
    relu_reward,
    save_policy,
    trace_front,
)
from repro.core.controller import CategoricalPolicy
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
from repro.graph import OpGraph, ops
from repro.hardware import (
    HardwareTestbed,
    MeasurementError,
    MeasurementPolicy,
    TPU_V4,
)
from repro.runtime import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    RestartBudgetExceeded,
    SearchSupervisor,
    SupervisorConfig,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    file_sha256,
    pack_state,
    resume_latest,
    run_with_checkpoints,
    unpack_state,
)
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig

NUM_TABLES = 2


def build_space():
    return dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))


def capacity_cost(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
        cost += 0.2 * (arch[f"emb{t}/vocab_scale"] - 1.0)
    for s in range(2):
        cost += 0.04 * arch[f"dense{s}/width_delta"]
    return {"step_time": max(0.1, cost), "model_size": max(0.1, cost)}


def build_search(seed=0, steps=8):
    teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed))
    return SingleStepSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=capacity_cost,
        config=SearchConfig(steps=steps, num_cores=2, warmup_steps=2, seed=seed),
    )


# ----------------------------------------------------------------------
# Atomic primitives
# ----------------------------------------------------------------------


class TestAtomic:
    def test_write_bytes_replaces_atomically(self, tmp_path):
        path = tmp_path / "payload.bin"
        atomic_write_bytes(path, b"first")
        atomic_write_bytes(path, b"second")
        assert path.read_bytes() == b"second"
        # No temp files survive a successful write.
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_write_text_and_json(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "héllo")
        assert (tmp_path / "t.txt").read_text(encoding="utf-8") == "héllo"
        atomic_write_json(tmp_path / "d.json", {"a": [1, 2]})
        assert json.loads((tmp_path / "d.json").read_text()) == {"a": [1, 2]}

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "x.json"
        atomic_write_json(path, 1)
        assert json.loads(path.read_text()) == 1

    def test_file_sha256_matches_content(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"abc")
        assert file_sha256(path) == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )


# ----------------------------------------------------------------------
# State packing
# ----------------------------------------------------------------------


class TestPackState:
    def test_round_trip_mixed_tree(self):
        state = {
            "w": np.arange(6, dtype=np.float64).reshape(2, 3),
            "mask": np.array([True, False]),
            "nested": {"ints": np.arange(4, dtype=np.int64), "flag": True},
            "scalars": [np.float64(1.5), np.int64(7), None, "text", 3],
        }
        tree, arrays = pack_state(state)
        json.dumps(tree)  # the tree must be JSON-serializable
        restored = unpack_state(tree, arrays)
        np.testing.assert_array_equal(restored["w"], state["w"])
        np.testing.assert_array_equal(restored["mask"], state["mask"])
        np.testing.assert_array_equal(restored["nested"]["ints"], state["nested"]["ints"])
        assert restored["scalars"] == [1.5, 7, None, "text", 3]

    def test_rejects_non_string_keys(self):
        with pytest.raises(CheckpointError, match="keys must be strings"):
            pack_state({1: "x"})

    def test_rejects_reserved_key(self):
        with pytest.raises(CheckpointError, match="reserved"):
            pack_state({"__ndarray__": 0})

    def test_rejects_unsupported_values(self):
        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            pack_state({"f": lambda: None})


# ----------------------------------------------------------------------
# The checkpoint store
# ----------------------------------------------------------------------


def sample_state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "weights": rng.normal(size=(5, 3)),
        "counts": rng.integers(0, 10, size=7),
        "tiny": np.float32(0.25) * np.ones(2, dtype=np.float32),
        "step": int(seed),
        "nested": {"more": rng.normal(size=4)},
    }


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        state = sample_state(3)
        info = store.save(3, state)
        assert info.step == 3
        loaded = store.load(info)
        np.testing.assert_array_equal(loaded["weights"], state["weights"])
        np.testing.assert_array_equal(loaded["counts"], state["counts"])
        assert loaded["tiny"].dtype == np.float32
        assert loaded["step"] == 3

    def test_snapshot_invisible_until_manifest_names_it(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.latest() is None
        # A stray staging dir (crashed writer) is never listed, and the
        # next save sweeps it.
        (tmp_path / ".tmp-snap-000099-step-000099-1234").mkdir()
        assert store.snapshots() == []
        store.save(1, sample_state(1))
        assert [s.step for s in store.snapshots()] == [1]
        assert not list(tmp_path.glob(".tmp-*"))

    def test_retention_keeps_last_n(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=2)
        for step in range(1, 5):
            store.save(step, sample_state(step))
        steps = [s.step for s in store.snapshots()]
        assert steps == [3, 4]
        # Retired snapshot directories are gone from disk too.
        dirs = {p.name for p in tmp_path.iterdir() if p.is_dir()}
        assert dirs == {s.snapshot_id for s in store.snapshots()}

    def test_keep_last_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, keep_last=0)

    def test_corrupt_arrays_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        info = store.save(1, sample_state(1))
        path = store.snapshot_dir(info) / CheckpointStore.ARRAYS_NAME
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="checksum mismatch"):
            store.load(info)

    def test_missing_file_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        info = store.save(1, sample_state(1))
        (store.snapshot_dir(info) / CheckpointStore.STATE_NAME).unlink()
        with pytest.raises(CheckpointCorruptError, match="missing file"):
            store.load(info)


class TestRecovery:
    def test_empty_store_resumes_fresh(self, tmp_path):
        assert resume_latest(CheckpointStore(tmp_path)) is None

    def test_falls_back_past_corrupt_snapshot(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=3)
        store.save(1, sample_state(1))
        store.save(2, sample_state(2))
        newest = store.save(3, sample_state(3))
        path = store.snapshot_dir(newest) / CheckpointStore.ARRAYS_NAME
        path.write_bytes(b"garbage")
        loaded = resume_latest(store)
        assert loaded.info.step == 2
        assert loaded.corrupt_skipped == [newest.snapshot_id]
        assert loaded.state["step"] == 2

    def test_all_corrupt_raises(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=2)
        for step in (1, 2):
            info = store.save(step, sample_state(step))
            (store.snapshot_dir(info) / CheckpointStore.ARRAYS_NAME).write_bytes(b"x")
        with pytest.raises(CheckpointCorruptError, match="all 2 snapshots"):
            resume_latest(store)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor", step=0)
        with pytest.raises(ValueError, match="phase"):
            FaultSpec("crash", step=0, phase="during")
        with pytest.raises(ValueError, match="only meaningful for crash"):
            FaultSpec("straggler", step=0, phase="mid")
        with pytest.raises(ValueError, match="step"):
            FaultSpec("crash", step=-1)


class TestFaultInjector:
    def test_crash_fires_exactly_once(self):
        injector = FaultInjector([FaultSpec("crash", step=2)])
        injector.arm(search=None, store=None)
        injector.before_step(0)
        injector.before_step(1)
        with pytest.raises(InjectedCrash):
            injector.before_step(2)
        # The spec is spent: replaying step 2 after a restart is safe.
        injector.before_step(2)
        assert injector.pending == []
        assert [f.step for f in injector.fired] == [2]

    def test_after_phase_crash(self):
        injector = FaultInjector([FaultSpec("crash", step=1, phase="after")])
        injector.arm(search=None, store=None)
        injector.before_step(1)  # the step itself runs
        with pytest.raises(InjectedCrash):
            injector.after_step(1)

    def test_straggler_sleeps_without_failing(self):
        delays = []
        injector = FaultInjector(
            [FaultSpec("straggler", step=0, delay_s=0.25)], sleep_fn=delays.append
        )
        injector.arm(search=None, store=None)
        injector.before_step(0)
        assert delays == [0.25]

    def test_corrupt_checkpoint_damages_latest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, sample_state(1))
        injector = FaultInjector(
            [FaultSpec("corrupt_checkpoint", step=2, file_name="arrays.bin")], seed=7
        )
        injector.arm(search=None, store=store)
        injector.before_step(2)
        with pytest.raises(CheckpointCorruptError):
            store.load(store.latest())

    def test_corrupt_checkpoint_noop_on_empty_store(self, tmp_path):
        injector = FaultInjector([FaultSpec("corrupt_checkpoint", step=0)])
        injector.arm(search=None, store=CheckpointStore(tmp_path))
        injector.before_step(0)  # nothing to damage; must not raise

    def test_exhaust_pipeline_cuts_the_stream(self):
        search = build_search(steps=6)
        injector = FaultInjector([FaultSpec("exhaust_pipeline", step=2)])
        injector.arm(search=search, store=None)
        with pytest.raises(Exception) as excinfo:
            run_with_checkpoints(search, injector=injector)
        # The pipeline protocol error escapes loudly at the next fetch.
        assert "exhaust" in str(excinfo.value).lower() or "Pipeline" in type(
            excinfo.value
        ).__name__

    def test_exhaust_pipeline_without_support_raises_injected_fault(self):
        class NoPipeline:
            pipeline = None

        injector = FaultInjector([FaultSpec("exhaust_pipeline", step=0)])
        injector.arm(search=NoPipeline(), store=None)
        with pytest.raises(InjectedFault):
            injector.before_step(0)


# ----------------------------------------------------------------------
# run_with_checkpoints / supervisor
# ----------------------------------------------------------------------


class TestRunWithCheckpoints:
    def test_validates_cadence(self):
        with pytest.raises(ValueError):
            run_with_checkpoints(build_search(), checkpoint_every=0)

    def test_snapshot_count_and_no_final_snapshot(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=10)
        run = run_with_checkpoints(build_search(steps=8), store=store, checkpoint_every=2)
        # Saves at 2, 4, 6 — never after the final step (the result exists).
        assert run.snapshots_written == 3
        assert [s.step for s in store.snapshots()] == [2, 4, 6]
        assert not run.resume.resumed
        assert len(run.result.history) == 8

    def test_without_store_runs_plain(self):
        run = run_with_checkpoints(build_search(steps=4))
        assert run.snapshots_written == 0
        assert len(run.result.history) == 4


class TestSupervisor:
    def test_backoff_schedule(self):
        config = SupervisorConfig(backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3)
        assert config.backoff_for(1) == pytest.approx(0.1)
        assert config.backoff_for(2) == pytest.approx(0.2)
        assert config.backoff_for(5) == pytest.approx(0.3)  # capped

    def test_survives_injected_crashes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        injector = FaultInjector([FaultSpec("crash", step=3), FaultSpec("crash", step=6)])
        sleeps = []
        supervisor = SearchSupervisor(
            lambda: build_search(steps=8),
            store,
            SupervisorConfig(checkpoint_every=2, max_restarts=5, backoff_base_s=0.05),
            injector=injector,
            sleep_fn=sleeps.append,
        )
        outcome = supervisor.run()
        assert [a.outcome for a in outcome.attempts] == ["crashed", "crashed", "completed"]
        assert outcome.restarts == 2
        assert sleeps == [pytest.approx(0.05), pytest.approx(0.1)]
        # Attempt 2 resumed from the snapshot at step 2, attempt 3 from 6.
        assert outcome.attempts[1].start_step == 2
        assert outcome.attempts[2].start_step == 6
        assert len(outcome.result.history) == 8
        # Steps 2 and 3 ran twice (snapshot at 2, crash at 3 rolled back to 2).
        assert outcome.steps_replayed == 1
        assert outcome.heartbeats == 3 + (6 - 2) + (8 - 6)

    def test_restart_budget_exhausted(self, tmp_path):
        # A search that dies on its first step of every attempt: the
        # supervisor must give up after max_restarts rebuilds.
        class DoomedSearch:
            config = SearchConfig(steps=4, num_cores=1)

            def step(self, step):
                raise RuntimeError("boom")

            def state_dict(self):
                return {}

        supervisor = SearchSupervisor(
            DoomedSearch,
            CheckpointStore(tmp_path),
            SupervisorConfig(max_restarts=2, backoff_base_s=0.0),
            sleep_fn=lambda s: None,
        )
        with pytest.raises(RestartBudgetExceeded, match="crashed 3 times"):
            supervisor.run()


# ----------------------------------------------------------------------
# Measurement retries (hardware testbed)
# ----------------------------------------------------------------------


def tiny_graph():
    graph = OpGraph("tiny")
    graph.chain([ops.matmul("mm", m=256, k=256, n=256)])
    return graph


class TestMeasurementRetry:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MeasurementPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            MeasurementPolicy(timeout_s=0.0)

    def test_clean_measurement_costs_one_attempt(self):
        bed = HardwareTestbed(TPU_V4, seed=0)
        measurement = bed.measure(tiny_graph())
        assert measurement.attempts == 1
        assert measurement.retries == 0
        assert measurement.time_s > 0
        assert bed.total_retries == 0

    def test_flaky_attempts_are_retried_with_backoff(self):
        sleeps = []
        bed = HardwareTestbed(
            TPU_V4,
            seed=0,
            policy=MeasurementPolicy(max_attempts=4, backoff_base_s=0.01),
            sleep_fn=sleeps.append,
        )
        real = bed.measure_time
        failures = {"left": 2}

        def flaky(graph):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("preempted")
            return real(graph)

        bed.measure_time = flaky
        measurement = bed.measure(tiny_graph())
        assert measurement.attempts == 3
        assert measurement.retries == 2
        assert bed.total_retries == 2
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhausted_retries_raise_measurement_error(self):
        bed = HardwareTestbed(
            TPU_V4, seed=0, policy=MeasurementPolicy(max_attempts=2), sleep_fn=lambda s: None
        )
        bed.measure_time = lambda graph: (_ for _ in ()).throw(RuntimeError("dead"))
        with pytest.raises(MeasurementError, match="after 2 attempts"):
            bed.measure(tiny_graph())

    def test_timeout_counts_and_retries(self):
        # A fake clock that advances 1s per reading: every attempt takes
        # "1s" against a 0.5s deadline and times out.
        ticks = iter(range(100))
        bed = HardwareTestbed(
            TPU_V4,
            seed=0,
            policy=MeasurementPolicy(max_attempts=3, timeout_s=0.5),
            clock=lambda: float(next(ticks)),
            sleep_fn=lambda s: None,
        )
        with pytest.raises(MeasurementError, match="3 timed out"):
            bed.measure(tiny_graph())
        assert bed.total_timeouts == 3
        assert bed.total_retries == 2


# ----------------------------------------------------------------------
# Atomic serialization (core.serialize)
# ----------------------------------------------------------------------


class TestAtomicSerialize:
    def test_save_policy_atomic_round_trip(self, tmp_path):
        space = build_space()
        policy = CategoricalPolicy(space)
        policy.logits[0][:] = np.linspace(-1, 1, policy.logits[0].size)
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        save_policy(policy, path)  # overwrite goes through replace, not append
        restored = load_policy(space, path)
        for a, b in zip(policy.logits, restored.logits):
            np.testing.assert_array_equal(a, b)
        assert list(tmp_path.glob(".*.tmp")) == []


# ----------------------------------------------------------------------
# Resumable multi-trial baselines
# ----------------------------------------------------------------------


def trial_problem():
    space = build_space()

    def evaluate(arch):
        metrics = capacity_cost(arch)
        return 1.0 / metrics["step_time"], metrics

    reward = relu_reward([PerformanceObjective("step_time", 1.0, -0.5)])
    return space, evaluate, reward


class TestMultiTrialResume:
    @pytest.mark.parametrize("kill_at", [7, 13])
    def test_random_search_resume_is_bit_identical(self, tmp_path, kill_at):
        space, evaluate, reward = trial_problem()

        def build():
            return RandomSearch(space, evaluate, reward, num_trials=20, seed=5)

        reference = build().run()
        interrupted = build()
        store = CheckpointStore(tmp_path)
        for _ in range(kill_at):
            interrupted.step()
        store.save(kill_at, interrupted._checkpoint_payload())
        resumed = build().run(store=store)
        np.testing.assert_array_equal(reference.rewards(), resumed.rewards())
        assert reference.cache_hits == resumed.cache_hits
        assert reference.cache_misses == resumed.cache_misses

    def test_evolutionary_search_resume_is_bit_identical(self, tmp_path):
        space, evaluate, reward = trial_problem()
        config = EvolutionConfig(population_size=6, tournament_size=3, num_trials=24)

        def build():
            return EvolutionarySearch(space, evaluate, reward, config=config, seed=9)

        reference = build().run()
        interrupted = build()
        store = CheckpointStore(tmp_path)
        for _ in range(10):  # past the founder phase: population state matters
            interrupted.step()
        store.save(10, interrupted._checkpoint_payload())
        resumed = build().run(store=store)
        np.testing.assert_array_equal(reference.rewards(), resumed.rewards())
        ref_best = list(space.indices_of(reference.best.architecture))
        res_best = list(space.indices_of(resumed.best.architecture))
        assert ref_best == res_best

    def test_wrong_algorithm_checkpoint_rejected(self, tmp_path):
        space, evaluate, reward = trial_problem()
        random_search = RandomSearch(space, evaluate, reward, num_trials=8, seed=1)
        store = CheckpointStore(tmp_path)
        random_search.step()
        store.save(1, random_search._checkpoint_payload())
        evolution = EvolutionarySearch(
            space,
            evaluate,
            reward,
            config=EvolutionConfig(population_size=2, tournament_size=2, num_trials=8),
        )
        with pytest.raises(CheckpointError, match="RandomSearch"):
            evolution.run(store=store)

    def test_cacheless_search_rejects_cached_checkpoint(self, tmp_path):
        space, evaluate, reward = trial_problem()
        cached = RandomSearch(space, evaluate, reward, num_trials=8, seed=1)
        cached.step()
        store = CheckpointStore(tmp_path)
        store.save(1, cached._checkpoint_payload())
        cacheless = RandomSearch(
            space, evaluate, reward, num_trials=8, seed=1, use_cache=False
        )
        with pytest.raises(ValueError, match="use_cache=False"):
            cacheless.run(store=store)


# ----------------------------------------------------------------------
# Resumable front sweep
# ----------------------------------------------------------------------


class TestTraceFrontResume:
    def make_problem(self):
        space = build_space()

        def quality_fn(arch):
            return 1.0 - 0.003 * float(sum(space.indices_of(arch)))

        def perf_fn(arch):
            return {"train_step_time": capacity_cost(arch)["step_time"]}

        config = FrontSearchConfig(
            target_scales=(0.8, 1.2),
            search=SearchConfig(
                steps=15,
                num_cores=2,
                warmup_steps=3,
                record_candidates=False,
                seed=0,
            ),
        )
        return space, quality_fn, perf_fn, config

    def test_resume_at_scale_boundary_matches_uninterrupted(self, tmp_path):
        space, quality_fn, perf_fn, config = self.make_problem()
        reference = trace_front(space, quality_fn, perf_fn, config)

        # Measure how many quality calls the first scale consumes, then
        # crash a checkpointed sweep a few calls into the second scale.
        counting = {"n": 0}

        def counted(arch):
            counting["n"] += 1
            return quality_fn(arch)

        single = FrontSearchConfig(target_scales=(0.8,), search=config.search)
        trace_front(space, counted, perf_fn, single)
        scale_one_calls = counting["n"]

        store = CheckpointStore(tmp_path)
        calls = {"n": 0}

        def crashing(arch):
            calls["n"] += 1
            if calls["n"] > scale_one_calls + 2:
                raise InjectedCrash("injected mid-sweep crash")
            return quality_fn(arch)

        with pytest.raises(InjectedCrash):
            trace_front(space, crashing, perf_fn, config, checkpoint_store=store)
        assert store.latest() is not None and store.latest().step == 1

        resumed = trace_front(space, quality_fn, perf_fn, config, checkpoint_store=store)
        assert len(resumed.points) == len(reference.points)
        for ref_point, res_point in zip(reference.points, resumed.points):
            assert list(space.indices_of(ref_point.architecture)) == list(
                space.indices_of(res_point.architecture)
            )
            assert ref_point.quality == pytest.approx(res_point.quality)
        assert reference.eval_stats.cache_hits == resumed.eval_stats.cache_hits
        assert reference.eval_stats.cache_misses == resumed.eval_stats.cache_misses
