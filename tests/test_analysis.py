"""Tests for Pareto/bucketing/formatting analysis utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bucketize,
    format_series,
    format_table,
    geometric_mean,
    hypervolume_2d,
    pareto_front,
)


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [(0.9, 10.0), (0.8, 12.0), (0.95, 8.0)]  # (quality, cost)
        front = pareto_front(points, quality=lambda p: p[0], cost=lambda p: p[1])
        assert front == [(0.95, 8.0)]

    def test_trade_off_points_kept(self):
        points = [(0.9, 10.0), (0.95, 20.0), (0.85, 5.0)]
        front = pareto_front(points, quality=lambda p: p[0], cost=lambda p: p[1])
        assert set(front) == set(points)

    def test_duplicates_survive(self):
        points = [(0.9, 10.0), (0.9, 10.0)]
        front = pareto_front(points, quality=lambda p: p[0], cost=lambda p: p[1])
        assert len(front) == 2

    def test_empty(self):
        assert pareto_front([], quality=lambda p: p, cost=lambda p: p) == []

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.floats(0.1, 10)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_front_is_mutually_nondominated(self, points):
        front = pareto_front(points, quality=lambda p: p[0], cost=lambda p: p[1])
        assert front  # never empty for non-empty input
        for a in front:
            for b in front:
                if a is b:
                    continue
                strictly_dominates = (
                    b[0] >= a[0] and b[1] <= a[1] and (b[0] > a[0] or b[1] < a[1])
                )
                assert not strictly_dominates


class TestHypervolume:
    def test_single_point(self):
        hv = hypervolume_2d([(0.5, 1.0)], reference=(0.0, 2.0))
        assert hv == pytest.approx(0.5 * 1.0)

    def test_dominating_front_has_larger_volume(self):
        ref = (0.0, 10.0)
        weak = [(0.5, 5.0)]
        strong = [(0.7, 4.0)]
        assert hypervolume_2d(strong, ref) > hypervolume_2d(weak, ref)

    def test_points_outside_reference_ignored(self):
        assert hypervolume_2d([(0.5, 20.0)], reference=(0.0, 10.0)) == 0.0

    def test_two_point_front(self):
        ref = (0.0, 10.0)
        hv = hypervolume_2d([(0.8, 6.0), (0.5, 2.0)], ref)
        # cheap segment [2,6) at q=0.5 plus [6,10) at q=0.8
        assert hv == pytest.approx(0.5 * 4 + 0.8 * 4)


class TestBucketize:
    def test_means_per_bucket(self):
        items = [(0.1, 1.0), (0.15, 3.0), (0.9, 10.0)]
        stats = bucketize(items, key=lambda p: p[0], value=lambda p: p[1], num_buckets=2)
        assert len(stats) == 2
        assert stats[0].mean_value == pytest.approx(2.0)
        assert stats[1].mean_value == pytest.approx(10.0)

    def test_single_value_collapse(self):
        items = [(0.5, 1.0), (0.5, 3.0)]
        stats = bucketize(items, key=lambda p: p[0], value=lambda p: p[1])
        assert len(stats) == 1
        assert stats[0].count == 2

    def test_empty(self):
        assert bucketize([], key=lambda p: p, value=lambda p: p) == []

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            bucketize([(1, 1)], key=lambda p: p[0], value=lambda p: p[1], num_buckets=0)

    def test_counts_cover_all_items(self):
        rng = np.random.default_rng(0)
        items = [(float(rng.uniform()), float(rng.normal())) for _ in range(100)]
        stats = bucketize(items, key=lambda p: p[0], value=lambda p: p[1], num_buckets=5)
        assert sum(s.count for s in stats) == 100


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_min_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestFormatting:
    def test_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_scientific_for_extremes(self):
        out = format_table(["v"], [[1.5e12]])
        assert "e+12" in out

    def test_series(self):
        out = format_series("latency", [(1, 2.0), (2, 4.0)])
        assert "series: latency" in out
        assert out.count("x=") == 2


class TestAsciiScatter:
    def test_basic_render(self):
        from repro.analysis import ascii_scatter

        out = ascii_scatter(
            {"a": [(0.0, 0.0), (1.0, 1.0)], "b": [(0.5, 0.5)]},
            width=20,
            height=6,
        )
        assert "a=a" in out and "b=b" in out
        assert out.count("\n") >= 6

    def test_markers_unique(self):
        from repro.analysis.ascii_plot import _unique_markers

        markers = _unique_markers(["alpha", "apple", "avocado"])
        assert len(set(markers.values())) == 3

    def test_collision_star(self):
        from repro.analysis import ascii_scatter

        out = ascii_scatter(
            {"a": [(0.5, 0.5)], "b": [(0.5, 0.5)]}, width=20, height=6
        )
        assert "*" in out

    def test_constant_axis_handled(self):
        from repro.analysis import ascii_scatter

        out = ascii_scatter({"a": [(1.0, 2.0), (1.0, 2.0)]}, width=20, height=6)
        assert "a=a" in out

    def test_validation(self):
        from repro.analysis import ascii_scatter

        with pytest.raises(ValueError):
            ascii_scatter({}, width=20, height=6)
        with pytest.raises(ValueError):
            ascii_scatter({"a": [(0, 0)]}, width=5, height=2)

    def test_positive_data_keeps_positive_axes(self):
        from repro.analysis import ascii_scatter

        out = ascii_scatter({"a": [(1.0, 0.1), (2.0, 5.0)]}, width=30, height=8)
        # No axis label is negative for all-positive data (the axis
        # separator line of dashes does not count).
        labels = [
            line for line in out.splitlines() if "+" in line or line.strip()[:1].isdigit()
        ]
        assert not any(line.strip().startswith("-") for line in labels)
