"""Tape/graph reuse: replayed graphs must be bit-identical to eager.

The contract under test (DESIGN.md §11): compiling a supernet's
forward+loss once per architecture and replaying it with fresh batches
changes *nothing* about the numbers — losses, qualities, gradients, and
whole search trajectories match the eager rebuild-every-step path
exactly, across optimizer updates, backend choices, and crash/resume.
"""

import os

import numpy as np
import pytest

from repro.core import (
    PerformanceObjective,
    SearchConfig,
    SingleStepSearch,
    relu_reward,
)
from repro.data import CtrTaskConfig, CtrTeacher, SingleStepPipeline
from repro.nn import (
    Adam,
    CosineSchedule,
    ScheduledOptimizer,
    TapeCache,
    Tensor,
    compile_graph,
    mse,
    tape_enabled,
)
from repro.nn.tape import TAPE_ENV, CompiledGraph
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space
from repro.searchspace.cnn import CnnSpaceConfig, cnn_search_space
from repro.supernet import DlrmSuperNetwork, DlrmSupernetConfig
from repro.supernet.vision import VisionSuperNetwork

NUM_TABLES = 2


def build_space():
    return dlrm_search_space(DlrmSpaceConfig(num_tables=NUM_TABLES, num_dense_stacks=2))


def ctr_batches(count, batch_size=16, seed=0):
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=batch_size, seed=seed)
    )
    return [teacher.next_batch() for _ in range(count)]


def snapshot_grads(net):
    return [
        None if p.grad is None else p.grad.copy() for p in net.parameters()
    ]


def train_trace(net, arch, batches, seed_grad=1.0):
    """(losses, qualities, final params) over optimizer-updated steps."""
    optimizer = Adam(net.parameters(), lr=1e-2)
    losses, qualities = [], []
    for batch in batches:
        optimizer.zero_grad()
        loss = net.loss(arch, batch.inputs, batch.labels)
        loss.backward(np.asarray(seed_grad))
        optimizer.step()
        losses.append(loss.item())
        qualities.append(net.quality(arch, batch.inputs, batch.labels))
    return losses, qualities, [p.data.copy() for p in net.parameters()]


class TestCompiledGraphPrimitives:
    def test_replay_binds_fresh_inputs(self):
        w = Tensor(np.array([[2.0], [3.0]]), requires_grad=True)
        graph = compile_graph(
            lambda bufs: Tensor(bufs["x"]) @ w, {"x": np.zeros((1, 2))}
        )
        out = graph.run({"x": np.array([[1.0, 1.0]])})
        assert out.data.item() == 5.0
        out = graph.run({"x": np.array([[2.0, 0.0]])})
        assert out.data.item() == 4.0

    def test_replay_sees_updated_weights(self):
        w = Tensor(np.array([[1.0], [1.0]]), requires_grad=True)
        graph = compile_graph(
            lambda bufs: Tensor(bufs["x"]) @ w, {"x": np.ones((1, 2))}
        )
        assert graph.run({"x": np.ones((1, 2))}).data.item() == 2.0
        w.data[:] = 10.0
        assert graph.run({"x": np.ones((1, 2))}).data.item() == 20.0

    def test_shape_mismatch_rejected(self):
        graph = compile_graph(
            lambda bufs: Tensor(bufs["x"]).sum(), {"x": np.zeros((2, 2))}
        )
        with pytest.raises(ValueError, match="shape"):
            graph.run({"x": np.zeros((3, 2))})

    def test_cached_backward_matches_eager(self):
        x = np.array([[0.5, -1.5], [2.0, 0.25]])
        targets = np.array([[1.0], [0.0]])

        we = Tensor(np.array([[0.3], [-0.7]]), requires_grad=True)
        mse(Tensor(x) @ we, targets).backward()

        wt = Tensor(np.array([[0.3], [-0.7]]), requires_grad=True)
        graph = compile_graph(
            lambda bufs: mse(Tensor(bufs["x"]) @ wt, bufs["t"]),
            {"x": x, "t": targets},
        )
        for _ in range(3):  # replays must not change the result
            wt.zero_grad()
            graph.run({"x": x, "t": targets}).backward()
        np.testing.assert_array_equal(we.grad, wt.grad)

    def test_gradient_buffers_reused_across_steps(self):
        w = Tensor(np.ones((2, 1)), requires_grad=True)
        graph = compile_graph(
            lambda bufs: (Tensor(bufs["x"]) @ w).sum(), {"x": np.ones((3, 2))}
        )
        graph.run({"x": np.ones((3, 2))}).backward()
        first_buf = w.grad
        w.zero_grad()
        graph.run({"x": 2 * np.ones((3, 2))}).backward()
        assert w.grad is first_buf  # same preallocated array, new values
        np.testing.assert_array_equal(w.grad, [[6.0], [6.0]])

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv(TAPE_ENV, "0")
        assert not tape_enabled()
        net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        arch = build_space().sample(np.random.default_rng(0))
        batch = ctr_batches(1)[0]
        net.loss(arch, batch.inputs, batch.labels)
        assert net.tape_stats() == {"hits": 0, "misses": 0, "evictions": 0, "size": 0}


class TestTapeCache:
    def test_hit_miss_eviction_counters(self):
        cache = TapeCache(capacity=2)
        made = []

        def factory(tag):
            def build():
                graph = compile_graph(
                    lambda bufs: Tensor(bufs["x"]).sum(), {"x": np.zeros(1)}
                )
                made.append(tag)
                return graph

            return build

        cache.get_or_build("a", factory("a"))
        cache.get_or_build("a", factory("a2"))
        cache.get_or_build("b", factory("b"))
        cache.get_or_build("c", factory("c"))  # evicts "a"
        cache.get_or_build("a", factory("a3"))  # rebuild
        assert made == ["a", "b", "c", "a3"]
        assert cache.stats() == {"hits": 1, "misses": 4, "evictions": 2, "size": 2}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TapeCache(capacity=0)


class TestSupernetTapeEquivalence:
    def test_dlrm_train_trace_bit_identical(self, monkeypatch):
        space = build_space()
        rng = np.random.default_rng(7)
        archs = [space.sample(rng) for _ in range(3)]
        batches = ctr_batches(9)

        monkeypatch.setenv(TAPE_ENV, "0")
        eager_net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        eager = [
            train_trace(eager_net, arch, batches[i::3], seed_grad=0.25)
            for i, arch in enumerate(archs)
        ]

        monkeypatch.setenv(TAPE_ENV, "1")
        tape_net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        taped = [
            train_trace(tape_net, arch, batches[i::3], seed_grad=0.25)
            for i, arch in enumerate(archs)
        ]

        stats = tape_net.tape_stats()
        assert stats["misses"] == 6  # one loss + one forward graph per arch
        assert stats["hits"] > 0
        for (el, eq, ep), (tl, tq, tp) in zip(eager, taped):
            assert el == tl
            assert eq == tq
            for a, b in zip(ep, tp):
                np.testing.assert_array_equal(a, b)

    def test_vision_train_trace_bit_identical(self, monkeypatch):
        space = cnn_search_space(CnnSpaceConfig(num_blocks=2))
        arch = space.sample(np.random.default_rng(3))
        rng = np.random.default_rng(11)
        batches = [
            (
                {"x": rng.normal(size=(8, 16))},
                rng.integers(0, 4, size=8),
            )
            for _ in range(6)
        ]

        def run(net):
            optimizer = Adam(net.parameters(), lr=1e-2)
            losses = []
            for inputs, labels in batches:
                optimizer.zero_grad()
                loss = net.loss(arch, inputs, labels)
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
                losses.append(net.quality(arch, inputs, labels))
            return losses, [p.data.copy() for p in net.parameters()]

        monkeypatch.setenv(TAPE_ENV, "0")
        eager_vals, eager_params = run(VisionSuperNetwork())
        monkeypatch.setenv(TAPE_ENV, "1")
        tape_net = VisionSuperNetwork()
        tape_vals, tape_params = run(tape_net)

        assert tape_net.tape_stats()["hits"] > 0
        assert eager_vals == tape_vals
        for a, b in zip(eager_params, tape_params):
            np.testing.assert_array_equal(a, b)

    def test_loss_many_unequal_sizes_bypasses_tape(self):
        space = build_space()
        arch = space.sample(np.random.default_rng(1))
        net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        small = ctr_batches(1, batch_size=8)[0]
        large = ctr_batches(1, batch_size=16, seed=5)[0]

        combined = net.loss_many(
            arch,
            [small.inputs, large.inputs],
            [small.labels, large.labels],
        )
        loss_a = net._loss_uncompiled(arch, small.inputs, small.labels)
        loss_b = net._loss_uncompiled(arch, large.inputs, large.labels)
        # stack_mean's left-fold matches the old (a + b) * 0.5 chain.
        expected = (loss_a + loss_b) * 0.5
        assert combined.item() == expected.item()
        # And the per-batch losses are independent nodes, not two views
        # of one compiled graph output.
        net.zero_grad()
        combined.backward()
        assert any(p.grad is not None for p in net.parameters())

    def test_loss_many_equal_sizes_uses_compiled_stacked_pass(self):
        space = build_space()
        arch = space.sample(np.random.default_rng(1))
        net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        b1, b2 = ctr_batches(2)
        net.loss_many(arch, [b1.inputs, b2.inputs], [b1.labels, b2.labels])
        net.loss_many(arch, [b1.inputs, b2.inputs], [b2.labels, b1.labels])
        stats = net.tape_stats()
        assert stats == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}

    def test_quality_many_slices_match_per_batch(self):
        space = build_space()
        arch = space.sample(np.random.default_rng(2))
        net = DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES))
        batches = ctr_batches(3)
        stacked = net.quality_many(
            arch,
            [b.inputs for b in batches],
            [b.labels for b in batches],
        )
        singles = [net.quality(arch, b.inputs, b.labels) for b in batches]
        assert stacked == singles


def capacity_cost(arch):
    cost = 1.0
    for t in range(NUM_TABLES):
        cost += 0.05 * arch[f"emb{t}/width_delta"]
    return {"step_time": max(0.1, cost)}


def build_search(backend, seed=0):
    teacher = CtrTeacher(
        CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16, seed=seed)
    )
    return SingleStepSearch(
        space=build_space(),
        supernet=DlrmSuperNetwork(
            DlrmSupernetConfig(num_tables=NUM_TABLES, seed=seed)
        ),
        pipeline=SingleStepPipeline(teacher.next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=capacity_cost,
        config=SearchConfig(
            steps=6, num_cores=4, warmup_steps=2, seed=seed, backend=backend
        ),
    )


def result_fingerprint(result):
    return (
        [s.mean_reward for s in result.history],
        [s.mean_quality for s in result.history],
        [s.policy_entropy for s in result.history],
        result.final_architecture,
    )


class TestSearchLevelEquivalence:
    def test_tape_vs_eager_search_identical(self, monkeypatch):
        monkeypatch.setenv(TAPE_ENV, "0")
        eager = result_fingerprint(build_search("serial").run())
        monkeypatch.setenv(TAPE_ENV, "1")
        search = build_search("serial")
        taped = result_fingerprint(search.run())
        assert eager == taped
        # A short search samples mostly-unique architectures; what must
        # hold is that the compiled path was exercised at all.
        assert search.supernet.tape_stats()["misses"] > 0

    def test_serial_vs_threads_with_tape(self):
        assert tape_enabled()
        serial = result_fingerprint(build_search("serial").run())
        threaded = result_fingerprint(build_search("threads").run())
        assert serial == threaded


class TestScheduledOptimizerInEngine:
    def test_state_dict_round_trip(self):
        params = [Tensor(np.ones(3), requires_grad=True)]
        sched = ScheduledOptimizer(
            Adam(params, lr=0.1),
            CosineSchedule(total_steps=10, warmup_steps=2),
        )
        for _ in range(4):
            params[0].grad = np.ones(3)
            sched.step()
        state = sched.state_dict()

        fresh_params = [Tensor(np.ones(3), requires_grad=True)]
        fresh = ScheduledOptimizer(
            Adam(fresh_params, lr=0.1),
            CosineSchedule(total_steps=10, warmup_steps=2),
        )
        fresh.load_state_dict(state)
        assert fresh._step == 4
        assert fresh.current_lr == sched.current_lr
        assert fresh.optimizer._t == sched.optimizer._t

    def test_search_with_weight_schedule_checkpoints_schedule_position(self):
        schedule = CosineSchedule(total_steps=20, warmup_steps=4)
        teacher = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16))
        search = SingleStepSearch(
            space=build_space(),
            supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES)),
            pipeline=SingleStepPipeline(teacher.next_batch),
            reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
            performance_fn=capacity_cost,
            config=SearchConfig(
                steps=4, num_cores=2, warmup_steps=1, weight_schedule=schedule
            ),
        )
        for step in range(3):
            search.step(step)
        state = search.state_dict()
        assert state["optimizer"]["step"] == search._optimizer._step > 0

        teacher2 = CtrTeacher(CtrTaskConfig(num_tables=NUM_TABLES, batch_size=16))
        resumed = SingleStepSearch(
            space=build_space(),
            supernet=DlrmSuperNetwork(DlrmSupernetConfig(num_tables=NUM_TABLES)),
            pipeline=SingleStepPipeline(teacher2.next_batch),
            reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
            performance_fn=capacity_cost,
            config=SearchConfig(
                steps=4, num_cores=2, warmup_steps=1, weight_schedule=schedule
            ),
        )
        resumed.load_state_dict(state)
        assert resumed._optimizer._step == search._optimizer._step
        assert resumed._optimizer.current_lr == search._optimizer.current_lr
        a = search.step(3)
        b = resumed.step(3)
        assert (a.mean_reward, a.mean_quality) == (b.mean_reward, b.mean_quality)


class TestPerformanceModelTape:
    def test_training_loss_compiled_and_identical(self, monkeypatch):
        from repro.perfmodel.features import ArchitectureEncoder
        from repro.perfmodel.model import PerformanceModel

        space = build_space()
        encoder = ArchitectureEncoder(space)
        rng = np.random.default_rng(0)
        features = rng.normal(size=(12, encoder.num_features))
        targets = rng.normal(size=(12, 2))

        def losses(model):
            out = []
            optimizer = Adam(model.parameters(), lr=1e-3)
            for start in (0, 4, 8):
                optimizer.zero_grad()
                loss = model.training_loss(
                    features[start : start + 4], targets[start : start + 4]
                )
                loss.backward()
                optimizer.step()
                out.append(loss.item())
            return out

        monkeypatch.setenv(TAPE_ENV, "0")
        eager = losses(PerformanceModel(encoder, hidden_sizes=(16,)))
        monkeypatch.setenv(TAPE_ENV, "1")
        model = PerformanceModel(encoder, hidden_sizes=(16,))
        taped = losses(model)
        assert eager == taped
        assert model.tape_stats()["hits"] == 2
