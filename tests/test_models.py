"""Tests for the model families: MBConv, EfficientNet, CoAtNet, DLRM."""

import numpy as np
import pytest

from repro.graph import UNIT_MXU, UNIT_VPU
from repro.hardware import TPU_V4, TPU_V4I, simulate
from repro.models import (
    COATNET,
    COATNET_H,
    EFFICIENTNET_H,
    EFFICIENTNET_X,
    MbconvSpec,
    baseline_production_dlrm,
    block_params,
    dlrm_h,
    pipeline_times,
    single_block_graph,
)
from repro.models import coatnet, dlrm, efficientnet
from repro.models.timing import DlrmTimingHarness
from repro.searchspace import DlrmSpaceConfig, dlrm_search_space


class TestMbconv:
    def test_mbconv_has_depthwise_on_vpu(self):
        g = single_block_graph(MbconvSpec("mbconv", 32, 32), resolution=28)
        units = {op.op_type: op.unit for op in g.nodes()}
        assert units["depthwise_conv2d"] == UNIT_VPU
        assert units["conv2d"] == UNIT_MXU

    def test_fused_has_no_depthwise(self):
        g = single_block_graph(MbconvSpec("fused_mbconv", 32, 32), resolution=28)
        assert all(op.op_type != "depthwise_conv2d" for op in g.nodes())

    def test_fused_more_flops_than_mbconv(self):
        """Figure 4's premise: fusion trades FLOPs for intensity."""
        mb = single_block_graph(MbconvSpec("mbconv", 64, 64), 28)
        fused = single_block_graph(MbconvSpec("fused_mbconv", 64, 64), 28)
        assert fused.total_flops > mb.total_flops

    def test_fused_higher_operational_intensity(self):
        mb = single_block_graph(MbconvSpec("mbconv", 64, 64), 28)
        fused = single_block_graph(MbconvSpec("fused_mbconv", 64, 64), 28)
        assert (
            fused.total_flops / fused.total_bytes > mb.total_flops / mb.total_bytes
        )

    def test_fmbconv_wins_small_depth_loses_large_depth(self):
        """Figure 4c's crossover: F-MBC(32) faster, F-MBC(128) slower."""
        def latency(block_type, depth):
            spec = MbconvSpec(block_type, depth, depth, se_ratio=0.0)
            g = single_block_graph(spec, resolution=56, batch=64)
            return simulate(g, TPU_V4I).total_time_s

        assert latency("fused_mbconv", 32) < latency("mbconv", 32)
        assert latency("fused_mbconv", 128) > latency("mbconv", 128)

    def test_block_params_positive_and_monotone(self):
        small = block_params(MbconvSpec("mbconv", 32, 32))
        big = block_params(MbconvSpec("mbconv", 64, 64))
        assert 0 < small < big

    def test_invalid_block_type(self):
        with pytest.raises(ValueError):
            MbconvSpec("superconv", 32, 32)

    def test_se_adds_ops(self):
        with_se = single_block_graph(MbconvSpec("mbconv", 32, 32, se_ratio=0.25), 28)
        without = single_block_graph(MbconvSpec("mbconv", 32, 32, se_ratio=0.0), 28)
        assert len(with_se) > len(without)

    def test_skip_only_when_shapes_match(self):
        same = single_block_graph(MbconvSpec("mbconv", 32, 32, stride=1), 28)
        strided = single_block_graph(MbconvSpec("mbconv", 32, 32, stride=2), 28)
        assert any("skip_add" in op.name for op in same.nodes())
        assert not any("skip_add" in op.name for op in strided.nodes())


class TestEfficientNet:
    def test_family_sizes_increase(self):
        params = [efficientnet.num_params(EFFICIENTNET_X[f"b{i}"]) for i in range(8)]
        assert all(a < b for a, b in zip(params, params[1:]))

    def test_b0_param_count_plausible(self):
        """B0 should land in the single-digit-millions range."""
        p = efficientnet.num_params(EFFICIENTNET_X["b0"])
        assert 3e6 < p < 15e6

    def test_h_family_same_for_small_models(self):
        """EfficientNet-H B0-B4 are identical to the baseline (Table 4)."""
        for idx in ("b0", "b1", "b2", "b3", "b4"):
            assert EFFICIENTNET_H[idx].expansions is None

    def test_h_family_differs_for_large_models(self):
        for idx in ("b5", "b6", "b7"):
            assert EFFICIENTNET_H[idx].expansions is not None

    def test_h_faster_on_training_hw_for_b5_plus(self):
        gx = efficientnet.build_graph(EFFICIENTNET_X["b6"], batch=8)
        gh = efficientnet.build_graph(EFFICIENTNET_H["b6"], batch=8)
        tx = simulate(gx, TPU_V4).total_time_s
        th = simulate(gh, TPU_V4).total_time_s
        assert th < tx

    def test_graph_builds_for_all_members(self):
        for idx in ("b0", "b4", "b7"):
            g = efficientnet.build_graph(EFFICIENTNET_X[idx], batch=1)
            assert g.total_flops > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            efficientnet.EfficientNetConfig("bad", 0.0, 1.0, 224)
        with pytest.raises(ValueError):
            efficientnet.EfficientNetConfig("bad", 1.0, 1.0, 224, expansions=(4,))


class TestCoatNet:
    def test_c5_matches_published_size(self):
        p = coatnet.num_params(COATNET["5"])
        assert abs(p / 1e6 - 688) < 30  # paper: 688M

    def test_h5_adds_conv_layers(self):
        assert COATNET_H["5"].conv_layers == COATNET["5"].conv_layers + 4

    def test_h5_resolution_and_activation(self):
        assert COATNET_H["5"].resolution == 160
        assert COATNET_H["5"].activation == "squared_relu"

    def test_h5_roughly_halves_flops(self):
        g5 = coatnet.build_graph(COATNET["5"], batch=8)
        gh5 = coatnet.build_graph(COATNET_H["5"], batch=8)
        ratio = gh5.total_flops / g5.total_flops
        assert 0.40 < ratio < 0.60  # paper: 476/1012 = 0.47

    def test_h5_faster_despite_same_params(self):
        g5 = coatnet.build_graph(COATNET["5"], batch=16)
        gh5 = coatnet.build_graph(COATNET_H["5"], batch=16)
        r5, rh5 = simulate(g5, TPU_V4), simulate(gh5, TPU_V4)
        speedup = r5.total_time_s / rh5.total_time_s
        assert 1.5 < speedup < 2.6  # paper: 1.84x

    def test_family_sizes_increase(self):
        params = [coatnet.num_params(COATNET[str(i)]) for i in range(6)]
        assert all(a < b for a, b in zip(params, params[1:]))

    def test_searched_changes_composable(self):
        cfg = COATNET["2"].with_deeper_conv(2).with_resolution(192).with_activation("relu")
        assert cfg.conv_layers == COATNET["2"].conv_layers + 2
        assert cfg.resolution == 192
        assert cfg.activation == "relu"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            coatnet.CoatNetConfig("bad", 0, (1, 1), (1, 1), (1, 1), (1, 1))


class TestDlrm:
    def test_graph_has_parallel_pipelines(self):
        spec = baseline_production_dlrm(num_tables=4)
        g = dlrm.build_graph(spec)
        result = simulate(g, TPU_V4)
        times = pipeline_times(result)
        assert times["embedding"] > 0 and times["dnn"] > 0
        # Critical path ~ MAX of the pipelines, not their sum.
        assert result.total_time_s < times["embedding"] + times["dnn"]

    def test_baseline_is_mlp_bound(self):
        """The paper's load imbalance: DNN time exceeds embedding time."""
        spec = baseline_production_dlrm()
        times = pipeline_times(simulate(dlrm.build_graph(spec), TPU_V4))
        assert times["dnn"] > times["embedding"]

    def test_dlrm_h_rebalances_and_speeds_up(self):
        """Figure 8: ~10% step-time gain from pipeline rebalancing."""
        base = baseline_production_dlrm()
        searched = dlrm_h(base)
        t_base = pipeline_times(simulate(dlrm.build_graph(base), TPU_V4))
        t_h = pipeline_times(simulate(dlrm.build_graph(searched), TPU_V4))
        gain = t_base["step"] / t_h["step"]
        assert 1.05 < gain < 1.25  # paper: ~1.10
        # The searched model narrows the embedding/DNN gap.
        def imbalance(t):
            return abs(t["dnn"] - t["embedding"]) / t["step"]
        assert imbalance(t_h) < imbalance(t_base)

    def test_dlrm_h_grows_embeddings(self):
        base = baseline_production_dlrm()
        searched = dlrm_h(base)
        assert searched.embedding_param_bytes > base.embedding_param_bytes

    def test_num_params_dominated_by_embeddings(self):
        spec = baseline_production_dlrm()
        total = dlrm.num_params(spec)
        emb = sum(t.vocab * t.width for t in spec.tables)
        assert emb / total > 0.8

    def test_low_rank_reduces_flops(self):
        spec = baseline_production_dlrm(num_tables=2)
        import dataclasses

        factored = dataclasses.replace(
            spec, top=dataclasses.replace(spec.top, low_rank=0.25)
        )
        assert (
            dlrm.build_graph(factored).total_flops
            < dlrm.build_graph(spec).total_flops
        )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            dlrm.TableSpec(vocab=0, width=8)
        with pytest.raises(ValueError):
            dlrm.MlpStackSpec(width=8, depth=1, low_rank=0.0)

    def test_apply_architecture_roundtrip(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=4, num_dense_stacks=2))
        base = baseline_production_dlrm(num_tables=4)
        arch = space.default_architecture()
        candidate = dlrm.apply_architecture(base, arch)
        assert candidate.tables == base.tables
        assert candidate.bottom == base.bottom

    def test_apply_architecture_deltas(self):
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=4, num_dense_stacks=2))
        base = baseline_production_dlrm(num_tables=4)
        arch = space.default_architecture().replaced(
            **{
                "emb0/width_delta": 2,
                "emb0/vocab_scale": 0.5,
                "dense0/width_delta": -2,
                "dense1/depth_delta": 1,
                "dense1/low_rank": 0.5,
            }
        )
        candidate = dlrm.apply_architecture(base, arch)
        assert candidate.tables[0].width == base.tables[0].width + 16
        assert candidate.tables[0].vocab == base.tables[0].vocab // 2
        assert candidate.bottom.width == base.bottom.width - 16
        assert candidate.top.depth == base.top.depth + 1
        assert candidate.top.low_rank == 0.5


class TestDlrmTimingHarness:
    def make(self):
        base = baseline_production_dlrm(num_tables=4)
        space = dlrm_search_space(DlrmSpaceConfig(num_tables=4, num_dense_stacks=2))
        return DlrmTimingHarness(base, seed=1), space

    def test_simulate_and_measure_positive(self):
        harness, space = self.make()
        arch = space.sample(np.random.default_rng(0))
        sim_train, sim_serve = harness.simulate(arch)
        hw_train, hw_serve = harness.measure(arch)
        assert 0 < sim_train < hw_train  # testbed slower than simulator
        assert 0 < sim_serve < hw_serve

    def test_serving_uses_inference_chip_and_small_batch(self):
        harness, space = self.make()
        arch = space.default_architecture()
        train_time, serve_time = harness.simulate(arch)
        assert serve_time < train_time

    def test_model_size_tracks_capacity(self):
        harness, space = self.make()
        base = space.default_architecture()
        bigger = base.replaced(**{"emb0/vocab_scale": 2.0})
        assert harness.model_size(bigger) > harness.model_size(base)

    def test_metrics_dict(self):
        harness, space = self.make()
        metrics = harness.metrics_from_simulator(space.default_architecture())
        assert set(metrics) == {"train_step_time", "serving_latency", "model_size"}
        assert all(v > 0 for v in metrics.values())

    def test_deterministic_measure_stable(self):
        harness, space = self.make()
        arch = space.default_architecture()
        a = harness.measure_deterministic(arch)
        b = harness.measure_deterministic(arch)
        assert a == b
