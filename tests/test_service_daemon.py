"""Daemon tests: wire protocol, end-to-end jobs, kill-the-daemon durability.

The load-bearing acceptance test lives here: SIGKILL a daemon with one
job running and one queued, restart it over the same spool, and both
jobs must reach ``done`` with results bit-identical to uninterrupted
one-shot runs of the same specs (the same fingerprint contract the
crash/resume tests established for the supervisor).

Daemon subprocesses pin ``--backend serial``: the CI matrix re-runs
this file under threads/processes backends, and results are
backend-invariant anyway (``test_backends.py`` proves that), so the
service tests need not fork pools from a threaded daemon.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.service import (
    DaemonConfig,
    JobSpec,
    SchedulerConfig,
    ServiceClient,
    ServiceDaemon,
    one_shot_payload,
)
from repro.service.protocol import (
    ProtocolError,
    QuotaExceededError,
    ResultsNotReadyError,
    ServiceError,
    UnknownJobError,
    UnknownVerbError,
)

TINY = {"steps": 3, "seed": 7}


@pytest.fixture()
def daemon(tmp_path):
    """An in-process daemon on a background thread, drained at teardown."""
    config = DaemonConfig(
        spool=tmp_path / "spool",
        scheduler=SchedulerConfig(
            max_concurrent=2,
            tenant_max_queued=3,
            poll_interval_s=0.005,
            backend="serial",
        ),
        accept_timeout_s=0.05,
    )
    instance = ServiceDaemon(config)
    thread = threading.Thread(target=instance.serve, daemon=True)
    thread.start()
    client = ServiceClient(instance.socket_path, timeout=30.0)
    client.wait_ready(timeout=10.0)
    yield instance, client
    instance.request_drain()
    thread.join(timeout=30.0)
    assert not thread.is_alive()


class TestProtocol:
    def test_ping_reports_stats(self, daemon):
        _, client = daemon
        stats = client.ping()
        assert stats["queued"] == 0 and stats["running"] == 0
        assert stats["pid"] == os.getpid()

    def test_unknown_verb_is_typed(self, daemon):
        _, client = daemon
        with pytest.raises(UnknownVerbError):
            client.request("explode")

    def test_submit_requires_tenant(self, daemon):
        _, client = daemon
        with pytest.raises(ProtocolError, match="tenant"):
            client.request("submit", spec={})

    def test_unknown_job_is_typed(self, daemon):
        _, client = daemon
        with pytest.raises(UnknownJobError):
            client.status("job-999999")

    def test_results_before_done_is_typed(self, daemon):
        _, client = daemon
        record = client.submit("alice", dict(TINY, step_sleep_s=0.05))
        with pytest.raises(ResultsNotReadyError):
            client.results(record["job_id"])
        client.wait(record["job_id"])

    def test_garbage_line_gets_error_response(self, daemon):
        instance, _ = daemon
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5.0)
        sock.connect(str(instance.socket_path))
        sock.sendall(b"not json at all\n")
        reply = json.loads(sock.recv(65536).split(b"\n", 1)[0])
        sock.close()
        assert reply["ok"] is False
        assert reply["error"]["code"] == "protocol_error"

    def test_quota_rejection_travels_the_wire(self, daemon):
        _, client = daemon
        slow = dict(TINY, steps=20, step_sleep_s=0.05)
        for _ in range(5):  # 2 start running, 3 fill alice's queued quota
            client.submit("alice", slow)
        with pytest.raises(QuotaExceededError, match="'alice'"):
            client.submit("alice", slow)
        for record in client.list_jobs(tenant="alice", states=["queued", "running"]):
            try:
                client.cancel(record["job_id"])
            except ServiceError:
                pass

    def test_second_daemon_on_same_socket_refuses(self, daemon):
        instance, _ = daemon
        clone = ServiceDaemon(
            DaemonConfig(spool=instance.spool, scheduler=SchedulerConfig(backend="serial"))
        )
        with pytest.raises(ServiceError, match="already listening"):
            clone.serve()


class TestEndToEnd:
    def test_job_results_match_one_shot_run(self, daemon):
        _, client = daemon
        record = client.submit("alice", TINY)
        payload = client.wait_results(record["job_id"], timeout=120.0)
        reference = one_shot_payload(JobSpec(**TINY), backend="serial")
        assert payload == reference  # bit-identical, fingerprint included
        assert payload["fingerprint"] == reference["fingerprint"]

    def test_jobs_are_isolated_per_run_dir(self, daemon):
        instance, client = daemon
        a = client.submit("alice", TINY)
        b = client.submit("bob", dict(TINY, seed=8))
        client.wait(a["job_id"])
        client.wait(b["job_id"])
        for job in (a, b):
            run_dir = instance.queue.run_dir(job["job_id"])
            assert (run_dir / "results.json").exists()
            assert any((run_dir / "checkpoints").glob("snap-*"))
            # Each job has its own telemetry stream with its own events.
            assert any((run_dir / "telemetry" / "events").glob("events-*.jsonl"))
        assert client.results(a["job_id"]) != client.results(b["job_id"])

    def test_cancel_running_job_parks_cancelled(self, daemon):
        _, client = daemon
        record = client.submit("alice", {"steps": 50, "step_sleep_s": 0.05})
        job_id = record["job_id"]
        deadline = time.monotonic() + 30.0
        while client.status(job_id)["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        client.cancel(job_id)
        final = client.wait(job_id)
        assert final["state"] == "cancelled"
        assert final["progress"] < 50


def start_daemon_subprocess(spool, max_concurrent=1):
    env = dict(os.environ, PYTHONPATH=str(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    ))
    env.pop("REPRO_BACKEND", None)  # daemon flags pin serial explicitly
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--spool", str(spool),
            "--backend", "serial",
            "--max-concurrent", str(max_concurrent),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestDaemonSubprocess:
    def test_serve_smoke(self, tmp_path):
        """CI smoke: serve, submit, poll to done, fetch results, drain."""
        spool = tmp_path / "spool"
        proc = start_daemon_subprocess(spool)
        try:
            client = ServiceClient(spool / "daemon.sock")
            client.wait_ready(timeout=30.0)
            record = client.submit("smoke", TINY)
            payload = client.wait_results(record["job_id"], timeout=120.0)
            assert payload["fingerprint"] == one_shot_payload(
                JobSpec(**TINY), backend="serial"
            )["fingerprint"]
            client.drain()
            out, err = proc.communicate(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert "drained" in out
        assert not (spool / "daemon.sock").exists()  # clean shutdown

    def test_sigterm_drains_and_requeues(self, tmp_path):
        spool = tmp_path / "spool"
        proc = start_daemon_subprocess(spool)
        try:
            client = ServiceClient(spool / "daemon.sock")
            client.wait_ready(timeout=30.0)
            record = client.submit("alice", {"steps": 60, "step_sleep_s": 0.1})
            deadline = time.monotonic() + 30.0
            while client.status(record["job_id"])["progress"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        on_disk = json.loads(
            (spool / "jobs" / f"{record['job_id']}.json").read_text()
        )
        # Parked at a step boundary, back in line for the next daemon.
        assert on_disk["state"] == "queued"
        assert on_disk["progress"] >= 1

    def test_sigkill_durability_bit_identical(self, tmp_path):
        """The acceptance criterion: SIGKILL with a running and a queued
        job; a restarted daemon finishes both; results are bit-identical
        to uninterrupted one-shot runs."""
        spool = tmp_path / "spool"
        slow = {"steps": 6, "seed": 5, "step_sleep_s": 0.25, "checkpoint_every": 1}
        fast = {"steps": 3, "seed": 9}
        proc = start_daemon_subprocess(spool, max_concurrent=1)
        try:
            client = ServiceClient(spool / "daemon.sock")
            client.wait_ready(timeout=30.0)
            running = client.submit("alice", slow)
            queued = client.submit("alice", fast)
            # Let the first job make real progress (checkpoints on disk),
            # while the second sits queued behind max_concurrent=1.
            deadline = time.monotonic() + 60.0
            while client.status(running["job_id"])["progress"] < 2:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert client.status(queued["job_id"])["state"] == "queued"
            proc.kill()  # SIGKILL: no drain, no cleanup
            proc.communicate(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        mid = json.loads((spool / "jobs" / f"{running['job_id']}.json").read_text())
        assert mid["state"] == "running"  # died without transitioning

        restarted = start_daemon_subprocess(spool, max_concurrent=1)
        try:
            client = ServiceClient(spool / "daemon.sock")
            client.wait_ready(timeout=30.0)
            got_running = client.wait_results(running["job_id"], timeout=120.0)
            got_queued = client.wait_results(queued["job_id"], timeout=120.0)
            after = client.status(running["job_id"])
            assert after["recoveries"] == 1
            client.drain()
            restarted.communicate(timeout=30.0)
        finally:
            if restarted.poll() is None:
                restarted.kill()
                restarted.communicate()
        assert got_running == one_shot_payload(JobSpec(**slow), backend="serial")
        assert got_queued == one_shot_payload(JobSpec(**fast), backend="serial")
