"""Tests for the memoized candidate-evaluation runtime."""

import numpy as np
import pytest

from repro.core import (
    ArchMetricsCache,
    EvalRuntime,
    MemoizedEvaluate,
    PerformanceObjective,
    RandomSearch,
    ReinforceController,
    SearchConfig,
    SingleStepSearch,
    SurrogateSuperNetwork,
    arch_key,
    relu_reward,
    trace_front,
)
from repro.core.controller import CategoricalPolicy
from repro.core.pareto_search import FrontSearchConfig
from repro.data import NullSource, SingleStepPipeline
from repro.searchspace import Decision, SearchSpace


def small_space():
    return SearchSpace(
        "small",
        [Decision("a", (0, 1, 2)), Decision("b", ("x", "y")), Decision("c", (4, 8))],
    )


class CountingPerformanceFn:
    """Pure performance function that counts its invocations."""

    def __init__(self):
        self.calls = 0

    def __call__(self, arch):
        self.calls += 1
        return {"step_time": 1.0 + 0.1 * arch["a"], "model_size": float(arch["c"])}


class TestArchMetricsCache:
    def test_hit_after_put(self):
        cache = ArchMetricsCache(capacity=4)
        cache.put((0, 1), {"t": 1.0})
        assert cache.get((0, 1)) == {"t": 1.0}
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counted(self):
        cache = ArchMetricsCache(capacity=4)
        assert cache.get((9, 9)) is None
        assert cache.misses == 1

    def test_eviction_respects_capacity(self):
        cache = ArchMetricsCache(capacity=2)
        cache.put((0,), {"t": 0.0})
        cache.put((1,), {"t": 1.0})
        cache.put((2,), {"t": 2.0})  # evicts (0,)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert (0,) not in cache
        assert (1,) in cache and (2,) in cache

    def test_lru_order_get_refreshes(self):
        cache = ArchMetricsCache(capacity=2)
        cache.put((0,), {"t": 0.0})
        cache.put((1,), {"t": 1.0})
        cache.get((0,))  # (0,) becomes most recent
        cache.put((2,), {"t": 2.0})  # evicts (1,), not (0,)
        assert (0,) in cache and (1,) not in cache

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ArchMetricsCache(capacity=0)

    def test_hit_rate(self):
        cache = ArchMetricsCache(capacity=4)
        cache.put((0,), {})
        cache.get((0,))
        cache.get((1,))
        assert cache.hit_rate == pytest.approx(0.5)


class TestEvalRuntime:
    def test_memoized_metrics_identical_to_uncached(self):
        space = small_space()
        fn = CountingPerformanceFn()
        cached = EvalRuntime(fn, space=space, use_cache=True)
        uncached = EvalRuntime(CountingPerformanceFn(), space=space, use_cache=False)
        rng = np.random.default_rng(0)
        archs = [space.sample(rng) for _ in range(50)]
        for arch in archs:
            assert cached.price(arch) == uncached.price(arch)
        # Far fewer evaluations than pricings: 3*2*2 = 12 possible archs.
        assert fn.calls <= 12 < 50
        assert cached.evaluations == fn.calls

    def test_price_uses_explicit_indices(self):
        space = small_space()
        fn = CountingPerformanceFn()
        runtime = EvalRuntime(fn, use_cache=True)  # no space: indices required
        arch = space.default_architecture()
        indices = space.indices_of(arch)
        first = runtime.price(arch, indices)
        second = runtime.price(arch, indices)
        assert first == second and fn.calls == 1
        with pytest.raises(ValueError, match="indices or a search space"):
            runtime.price(arch)

    def test_cached_metrics_are_copies(self):
        space = small_space()
        runtime = EvalRuntime(CountingPerformanceFn(), space=space)
        arch = space.default_architecture()
        runtime.price(arch)["step_time"] = -1.0  # mutate the returned dict
        assert runtime.price(arch)["step_time"] > 0  # cache unpolluted

    def test_stage_timing_accumulates(self):
        runtime = EvalRuntime(CountingPerformanceFn(), space=small_space())
        with runtime.timed("price"):
            pass
        with runtime.timed("price"):
            pass
        stats = runtime.stats()
        assert stats.stage_calls["price"] == 2
        assert stats.stage_seconds["price"] >= 0.0

    def test_stats_snapshot_and_summary(self):
        space = small_space()
        runtime = EvalRuntime(CountingPerformanceFn(), space=space, cache_capacity=8)
        arch = space.default_architecture()
        runtime.price(arch)
        runtime.price(arch)
        stats = runtime.stats()
        assert stats.cache_enabled
        assert (stats.cache_hits, stats.cache_misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.cache_capacity == 8 and stats.cache_entries == 1
        assert "hits" in stats.summary()

    def test_reset_counters_keeps_cache_contents(self):
        space = small_space()
        fn = CountingPerformanceFn()
        runtime = EvalRuntime(fn, space=space)
        runtime.price(space.default_architecture())
        runtime.reset_counters()
        assert runtime.stats().cache_misses == 0
        runtime.price(space.default_architecture())
        assert fn.calls == 1  # still served from the retained entry
        assert runtime.stats().cache_hits == 1

    def test_arch_key_canonical(self):
        assert arch_key(np.array([2, 0, 1], dtype=np.int64)) == (2, 0, 1)


class TestBatchedSampling:
    def test_batched_matches_per_core_sampling(self):
        """One vectorized draw reproduces the per-core loop, draw for draw."""
        space = small_space()
        policy = CategoricalPolicy(space)
        rng = np.random.default_rng(3)
        for _ in range(5):  # push the policy off uniform
            _, idx = policy.sample(rng)
            policy.reinforce_update([(idx, float(rng.normal()))], 0.4)
        seq_rng = np.random.default_rng(11)
        sequential = [policy.sample(seq_rng) for _ in range(7)]
        batched = policy.sample_batch(np.random.default_rng(11), 7)
        for (arch_s, idx_s), (arch_b, idx_b) in zip(sequential, batched):
            assert arch_s == arch_b
            np.testing.assert_array_equal(idx_s, idx_b)

    def test_controller_sample_many_deterministic(self):
        a = ReinforceController(small_space(), seed=5).sample_many(6)
        b = ReinforceController(small_space(), seed=5).sample_many(6)
        for (arch_a, _), (arch_b, _) in zip(a, b):
            assert arch_a == arch_b

    def test_sample_many_equals_repeated_sample(self):
        """Batched and sequential controller draws share one rng stream."""
        batched = ReinforceController(small_space(), seed=2).sample_many(5)
        sequential_ctrl = ReinforceController(small_space(), seed=2)
        sequential = [sequential_ctrl.sample() for _ in range(5)]
        for (arch_a, _), (arch_b, _) in zip(batched, sequential):
            assert arch_a == arch_b

    def test_count_validated(self):
        with pytest.raises(ValueError):
            CategoricalPolicy(small_space()).sample_batch(np.random.default_rng(0), 0)


class TestEntropyBonusScaling:
    def test_entropy_bonus_invariant_to_shard_size(self):
        """The bonus is a per-update term, not a per-sample one."""
        target = np.array([0, 0, 0])
        updates = {}
        for shard in (1, 4):
            policy = CategoricalPolicy(small_space())
            # zero-advantage samples: only the entropy term moves logits
            policy.reinforce_update(
                [(target, 0.0)] * shard, learning_rate=0.3, entropy_coef=0.5
            )
            updates[shard] = [logit.copy() for logit in policy.logits]
        for a, b in zip(updates[1], updates[4]):
            np.testing.assert_allclose(a, b)

    def test_entropy_gradient_zero_at_uniform(self):
        """Uniform is the entropy maximum: the bonus must not move it."""
        policy = CategoricalPolicy(small_space())
        policy.reinforce_update(
            [(np.array([0, 0, 0]), 0.0)], learning_rate=0.5, entropy_coef=1.0
        )
        for logit in policy.logits:
            np.testing.assert_allclose(logit, logit[0])  # still symmetric

    def test_entropy_bonus_raises_entropy_of_peaked_policy(self):
        policy = CategoricalPolicy(small_space())
        for logit in policy.logits:
            logit[0] = 3.0  # sharply peaked
        before = policy.entropy()
        for _ in range(20):
            policy.reinforce_update(
                [(np.array([0, 0, 0]), 0.0)], learning_rate=0.3, entropy_coef=0.5
            )
        assert policy.entropy() > before

    def test_single_combined_step_from_one_snapshot(self):
        """The applied update equals the analytic combined gradient."""
        policy = CategoricalPolicy(small_space())
        rng = np.random.default_rng(0)
        for logit in policy.logits:
            logit += rng.normal(size=logit.shape)
        probs = [p.copy() for p in policy.probabilities()]
        before = [logit.copy() for logit in policy.logits]
        lr, coef, adv = 0.2, 0.3, 1.7
        target = np.array([1, 0, 1])
        policy.reinforce_update([(target, adv)], learning_rate=lr, entropy_coef=coef)
        for d, (logit, p) in enumerate(zip(policy.logits, probs)):
            onehot = np.zeros_like(p)
            onehot[target[d]] = 1.0
            log_p = np.log(p + 1e-12)
            entropy = -(p * log_p).sum()
            expected = before[d] + lr * (
                adv * (onehot - p) + coef * (-p * (log_p + entropy))
            )
            np.testing.assert_allclose(logit, expected, rtol=1e-12)


def flat_quality(arch):
    return 0.5


def run_search(use_cache, fn, steps=20, seed=0):
    space = small_space()
    return SingleStepSearch(
        space=space,
        supernet=SurrogateSuperNetwork(flat_quality),
        pipeline=SingleStepPipeline(NullSource().next_batch),
        reward_fn=relu_reward([PerformanceObjective("step_time", 1.0, -0.5)]),
        performance_fn=fn,
        config=SearchConfig(
            steps=steps, num_cores=4, warmup_steps=2, seed=seed, use_cache=use_cache
        ),
    ).run()


class TestSearchWithRuntime:
    def test_cache_on_and_off_agree(self):
        """Memoization must not change any search outcome."""
        on = run_search(True, CountingPerformanceFn())
        off = run_search(False, CountingPerformanceFn())
        assert on.final_architecture == off.final_architecture
        assert [s.mean_reward for s in on.history] == [
            s.mean_reward for s in off.history
        ]
        for a, b in zip(on.all_candidates, off.all_candidates):
            assert a.metrics == b.metrics

    def test_cache_saves_evaluations(self):
        fn_on, fn_off = CountingPerformanceFn(), CountingPerformanceFn()
        on = run_search(True, fn_on, steps=40)
        run_search(False, fn_off, steps=40)
        assert fn_off.calls == 40 * 4
        assert fn_on.calls <= 12  # at most one per distinct architecture
        assert on.eval_stats.cache_hits == 40 * 4 - fn_on.calls

    def test_stats_disabled_cache(self):
        result = run_search(False, CountingPerformanceFn())
        assert not result.eval_stats.cache_enabled
        assert result.eval_stats.cache_hits == 0
        assert result.eval_stats.evaluations == 20 * 4

    def test_stage_timings_cover_all_stages(self):
        result = run_search(True, CountingPerformanceFn())
        for stage in ("sample", "score", "price", "policy_update", "weight_update"):
            assert stage in result.eval_stats.stage_seconds
            assert result.eval_stats.stage_calls[stage] > 0

    def test_trace_front_shares_cache_across_sweep(self):
        fn = CountingPerformanceFn()
        config = FrontSearchConfig(
            primary_metric="step_time",
            target_scales=(0.9, 1.1),
            search=SearchConfig(
                steps=15, num_cores=4, warmup_steps=2, record_candidates=False, seed=0
            ),
        )
        result = trace_front(small_space(), flat_quality, fn, config)
        assert result.eval_stats is not None
        assert fn.calls <= 12  # whole sweep priced from one shared cache
        assert result.eval_stats.cache_hits > 0


class TestMemoizedEvaluate:
    def test_multitrial_cache_counts_duplicates(self):
        space = small_space()
        calls = []

        def evaluate(arch):
            calls.append(arch)
            return 0.5, {"latency": 1.0 + 0.1 * arch["a"]}

        reward = relu_reward([PerformanceObjective("latency", 2.0, -1.0)])
        result = RandomSearch(
            space, evaluate, reward, num_trials=100, seed=0
        ).run()
        assert result.num_trials == 100
        assert len(calls) <= 12  # one real trial per distinct arch
        assert result.cache_hits == 100 - len(calls)
        assert result.cache_hits + result.cache_misses == 100

    def test_disabled_cache_calls_through(self):
        space = small_space()
        calls = []

        def evaluate(arch):
            calls.append(arch)
            return 0.5, {"latency": 1.0}

        reward = relu_reward([])
        RandomSearch(
            space, evaluate, reward, num_trials=30, seed=0, use_cache=False
        ).run()
        assert len(calls) == 30

    def test_memoized_evaluate_returns_same_values(self):
        space = small_space()
        memo = MemoizedEvaluate(space, lambda a: (0.1 * a["a"], {"t": float(a["c"])}))
        arch = space.default_architecture()
        assert memo(arch) == memo(arch)
        assert memo.cache.hits == 1


class TestPriceManyEvictionPressure:
    """Asserts batched pricing is sequentially equivalent under eviction.

    With more distinct keys in one shard than the cache has capacity,
    ``price_many`` used to disagree with a sequential ``price`` loop on
    counters and final LRU contents.  The plan/replay implementation
    (see :meth:`ArchMetricsCache.plan`) fixed that: counters,
    evaluations, results, and LRU contents now match the sequential
    order exactly, in every regime.
    """

    SHARD = [0, 1, 2, 0]  # four draws, three distinct keys, one repeat

    @staticmethod
    def _arch(i):
        return {"a": i % 3, "b": "x", "c": 4}

    def _runtime(self, capacity):
        fn = CountingPerformanceFn()
        return EvalRuntime(fn, cache_capacity=capacity), fn

    def _drawn(self):
        return [(self._arch(i), (i,)) for i in self.SHARD]

    def _assert_equivalent(self, capacity):
        batched, batched_fn = self._runtime(capacity=capacity)
        sequential, sequential_fn = self._runtime(capacity=capacity)
        batch_results = batched.price_many(self._drawn())
        loop_results = [
            sequential.price(arch, indices=indices)
            for arch, indices in self._drawn()
        ]
        assert batch_results == loop_results
        b_cache, s_cache = batched.cache, sequential.cache
        assert (b_cache.hits, b_cache.misses, b_cache.evictions) == (
            s_cache.hits,
            s_cache.misses,
            s_cache.evictions,
        )
        assert batched_fn.calls == sequential_fn.calls
        assert batched.evaluations == sequential.evaluations
        assert b_cache.export_state()["entries"] == s_cache.export_state()["entries"]
        return batched, batched_fn

    def test_batched_matches_sequential_under_eviction_pressure(self):
        runtime, fn = self._assert_equivalent(capacity=2)
        cache = runtime.cache
        # By the time the duplicate (0,) arrives it has been evicted, so
        # both orders pay a fourth miss and evaluation.
        assert (cache.hits, cache.misses, cache.evictions) == (0, 4, 2)
        assert fn.calls == 4 and runtime.evaluations == 4
        assert arch_key((1,)) not in cache
        assert arch_key((2,)) in cache and arch_key((0,)) in cache

    def test_plan_predicts_sequential_outcomes_without_mutation(self):
        runtime, _ = self._runtime(capacity=2)
        keys = [arch_key((i,)) for i in self.SHARD]
        assert runtime.cache.plan(keys) == [False, False, False, False]
        # Planning is a pure simulation: nothing was inserted or counted.
        assert len(runtime.cache) == 0
        assert (runtime.cache.hits, runtime.cache.misses) == (0, 0)
        # With room for the whole shard the duplicate is a planned hit.
        roomy, _ = self._runtime(capacity=4)
        assert roomy.cache.plan(keys) == [False, False, False, True]

    def test_orders_agree_when_capacity_covers_shard(self):
        batched, batched_fn = self._runtime(capacity=4)
        sequential, sequential_fn = self._runtime(capacity=4)
        batch_results = batched.price_many(self._drawn())
        loop_results = [
            sequential.price(arch, indices=indices)
            for arch, indices in self._drawn()
        ]
        assert batch_results == loop_results
        for runtime, fn in ((batched, batched_fn), (sequential, sequential_fn)):
            cache = runtime.cache
            assert (cache.hits, cache.misses, cache.evictions) == (1, 3, 0)
            assert fn.calls == 3 and runtime.evaluations == 3
